//! Online (streaming) locality profiling.
//!
//! Section VIII's practicality assumption is that footprint data "can be
//! collected in real time" — an *online* monitor watches the access
//! stream and periodically re-optimizes the partition. This module
//! provides that monitor: [`OnlineProfiler`] consumes one access at a
//! time in `O(1)` amortized, and can snapshot a full [`Footprint`] (and
//! hence a miss-ratio curve) at any moment, covering everything seen so
//! far.
//!
//! A snapshot is exactly equal to the batch [`ReuseProfile`] of the
//! prefix consumed so far — the histograms are maintained incrementally,
//! and the boundary terms (first/last access times) are reconstructed
//! from the live last-seen table at snapshot time. Tests pin down that
//! equality.
//!
//! Profilers are also **mergeable**: [`OnlineProfiler::absorb`] appends
//! another profiler's observations as if they had been observed here,
//! in order, after everything already seen. Because reuse time is a
//! *temporal* gap (not a stack distance), concatenation is exact: the
//! only statistics a chunk split can lose are the reuse pairs that
//! straddle the cut, and those are reconstructed by stitching the left
//! side's last-seen table to the right side's first-seen table. A
//! sharded profiler that splits a stream into contiguous chunks and
//! absorbs the per-chunk profilers in stream order therefore produces
//! byte-identical snapshots to one profiler that saw the whole stream.

use crate::footprint::Footprint;
use crate::reuse::ReuseProfile;
use cps_dstruct::DenseHistogram;
use cps_trace::Block;
use std::collections::HashMap;

/// Incremental reuse/footprint profiler.
///
/// # Examples
///
/// ```
/// use cps_hotl::online::OnlineProfiler;
/// let mut p = OnlineProfiler::new();
/// for i in 0..10_000u64 {
///     p.observe(i % 50);
/// }
/// let fp = p.snapshot_footprint();
/// assert_eq!(fp.distinct, 50);
/// assert!(fp.miss_ratio(40.0) > 0.9); // the loop thrashes below 50
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineProfiler {
    /// Accesses seen so far (`n`).
    time: usize,
    /// Gap histogram over completed reuse pairs.
    gaps: DenseHistogram,
    /// First-access times, 1-indexed (fixed once a datum appears).
    first_times: DenseHistogram,
    /// First access position per datum, 0-indexed — the boundary data
    /// [`OnlineProfiler::absorb`] needs to stitch cross-chunk reuses.
    first_seen: HashMap<Block, usize>,
    /// Most recent access position per live datum.
    last_seen: HashMap<Block, usize>,
}

impl OnlineProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one access. `O(1)` amortized.
    #[inline]
    pub fn observe(&mut self, block: Block) {
        match self.last_seen.insert(block, self.time) {
            None => {
                self.first_times.add(self.time + 1, 1);
                self.first_seen.insert(block, self.time);
            }
            Some(p) => self.gaps.add(self.time - p, 1),
        }
        self.time += 1;
    }

    /// Consumes a slice of accesses.
    pub fn observe_all(&mut self, blocks: &[Block]) {
        for &b in blocks {
            self.observe(b);
        }
    }

    /// Accesses consumed so far.
    pub fn accesses(&self) -> usize {
        self.time
    }

    /// Distinct blocks seen so far.
    pub fn distinct(&self) -> usize {
        self.last_seen.len()
    }

    /// Snapshots the reuse statistics of everything consumed so far —
    /// identical to `ReuseProfile::from_trace` over the same prefix.
    /// `O(m)` for the boundary reconstruction.
    pub fn snapshot_reuse(&self) -> ReuseProfile {
        let n = self.time;
        let mut last_times_rev = DenseHistogram::new();
        for (_, &p) in self.last_seen.iter() {
            last_times_rev.add(n - p, 1);
        }
        ReuseProfile {
            accesses: n as u64,
            distinct: self.last_seen.len() as u64,
            gaps: self.gaps.clone(),
            first_times: self.first_times.clone(),
            last_times_rev,
        }
    }

    /// Snapshots the average footprint of the consumed prefix.
    /// `O(n)` (the footprint closed form).
    pub fn snapshot_footprint(&self) -> Footprint {
        Footprint::from_reuse(&self.snapshot_reuse())
    }

    /// Appends another profiler's observations to this one, exactly as
    /// if `chunk`'s access sequence had been observed here immediately
    /// after everything already seen.
    ///
    /// This is the shard-merge primitive: split a stream into
    /// contiguous chunks, profile each chunk independently (in
    /// parallel), then absorb the chunk profilers **in stream order**
    /// into one accumulator. All internal statistics are integer
    /// histograms and position maps, so the result is byte-identical
    /// to single-threaded profiling of the concatenated stream —
    /// [`Self::snapshot_reuse`] and everything derived from it agree
    /// exactly. `O(m_chunk + gap_range)` per absorb.
    pub fn absorb(&mut self, chunk: &OnlineProfiler) {
        let offset = self.time;
        self.gaps.merge(&chunk.gaps);
        for (&block, &p) in chunk.first_seen.iter() {
            match self.last_seen.get(&block) {
                // The chunk's first touch of `block` closes a reuse
                // pair that straddles the chunk boundary.
                Some(&prev) => self.gaps.add(offset + p - prev, 1),
                None => {
                    self.first_times.add(offset + p + 1, 1);
                    self.first_seen.insert(block, offset + p);
                }
            }
        }
        for (&block, &p) in chunk.last_seen.iter() {
            self.last_seen.insert(block, offset + p);
        }
        self.time += chunk.time;
    }

    /// Resets to the empty state (e.g. at a phase boundary).
    pub fn reset(&mut self) {
        self.time = 0;
        self.gaps = DenseHistogram::new();
        self.first_times = DenseHistogram::new();
        self.first_seen.clear();
        self.last_seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    #[test]
    fn snapshot_equals_batch_profile_at_any_prefix() {
        let trace = WorkloadSpec::Zipfian {
            region: 80,
            alpha: 0.7,
        }
        .generate(3_000, 9);
        let mut online = OnlineProfiler::new();
        let mut consumed = 0;
        for cut in [1usize, 7, 100, 999, 3_000] {
            online.observe_all(&trace.blocks[consumed..cut]);
            consumed = cut;
            let snap = online.snapshot_reuse();
            let batch = ReuseProfile::from_trace(&trace.blocks[..cut]);
            assert_eq!(snap.accesses, batch.accesses, "cut {cut}");
            assert_eq!(snap.distinct, batch.distinct, "cut {cut}");
            assert_eq!(snap.gaps.buckets(), batch.gaps.buckets(), "cut {cut}");
            assert_eq!(
                snap.first_times.buckets(),
                batch.first_times.buckets(),
                "cut {cut}"
            );
            assert_eq!(
                snap.last_times_rev.buckets(),
                batch.last_times_rev.buckets(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn snapshot_footprint_matches_batch() {
        let trace = WorkloadSpec::SequentialLoop { working_set: 30 }.generate(2_000, 1);
        let mut online = OnlineProfiler::new();
        online.observe_all(&trace.blocks);
        let snap = online.snapshot_footprint();
        let batch = Footprint::from_trace(&trace.blocks);
        assert_eq!(snap.curve().samples(), batch.curve().samples());
    }

    #[test]
    fn empty_profiler_snapshots_cleanly() {
        let p = OnlineProfiler::new();
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.distinct(), 0);
        let fp = p.snapshot_footprint();
        assert_eq!(fp.at(0), 0.0);
    }

    #[test]
    fn reset_forgets_everything() {
        let mut p = OnlineProfiler::new();
        p.observe_all(&[1, 2, 3, 1]);
        assert_eq!(p.accesses(), 4);
        p.reset();
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.distinct(), 0);
        p.observe(5);
        let snap = p.snapshot_reuse();
        assert_eq!(snap.accesses, 1);
        assert_eq!(snap.first_times.count(1), 1);
    }

    #[test]
    fn absorb_equals_concatenated_observation() {
        let trace = WorkloadSpec::Zipfian {
            region: 70,
            alpha: 0.9,
        }
        .generate(4_000, 11);
        // Split into uneven contiguous chunks, profile independently,
        // absorb in order — every statistic must match the unsharded
        // profiler byte for byte.
        for cuts in [vec![4_000], vec![1_000, 3_000], vec![7, 100, 2_500, 3_999]] {
            let mut merged = OnlineProfiler::new();
            let mut start = 0;
            for end in cuts.iter().copied().chain(std::iter::once(4_000)) {
                let mut chunk = OnlineProfiler::new();
                chunk.observe_all(&trace.blocks[start..end]);
                merged.absorb(&chunk);
                start = end;
            }
            let whole = ReuseProfile::from_trace(&trace.blocks);
            let snap = merged.snapshot_reuse();
            assert_eq!(snap.accesses, whole.accesses, "cuts {cuts:?}");
            assert_eq!(snap.distinct, whole.distinct, "cuts {cuts:?}");
            assert_eq!(snap.gaps.buckets(), whole.gaps.buckets(), "cuts {cuts:?}");
            assert_eq!(
                snap.first_times.buckets(),
                whole.first_times.buckets(),
                "cuts {cuts:?}"
            );
            assert_eq!(
                snap.last_times_rev.buckets(),
                whole.last_times_rev.buckets(),
                "cuts {cuts:?}"
            );
        }
    }

    #[test]
    fn absorb_into_nonempty_profiler_stitches_boundary_reuses() {
        // a b | b a — both cross-cut reuses must appear as gaps.
        let mut left = OnlineProfiler::new();
        left.observe_all(&[1, 2]);
        let mut right = OnlineProfiler::new();
        right.observe_all(&[2, 1]);
        left.absorb(&right);
        let snap = left.snapshot_reuse();
        let whole = ReuseProfile::from_trace(&[1, 2, 2, 1]);
        assert_eq!(snap.gaps.buckets(), whole.gaps.buckets());
        assert_eq!(snap.distinct, 2);
        assert_eq!(snap.accesses, 4);
    }

    #[test]
    fn absorb_empty_chunk_is_identity() {
        let mut p = OnlineProfiler::new();
        p.observe_all(&[3, 4, 3]);
        let before = p.snapshot_reuse();
        p.absorb(&OnlineProfiler::new());
        let after = p.snapshot_reuse();
        assert_eq!(before.accesses, after.accesses);
        assert_eq!(before.gaps.buckets(), after.gaps.buckets());
        assert_eq!(before.first_times.buckets(), after.first_times.buckets());
    }

    #[test]
    fn online_repartitioning_scenario() {
        // The intended use: watch a program change phase and see the
        // snapshot MRC move. Phase 1: 20-block loop; phase 2: 120-block
        // loop. A monitor with reset-at-boundary sees the change.
        let p1 = WorkloadSpec::SequentialLoop { working_set: 20 }.generate(5_000, 1);
        let p2 = WorkloadSpec::SequentialLoop { working_set: 120 }.generate(5_000, 2);
        let mut monitor = OnlineProfiler::new();
        monitor.observe_all(&p1.blocks);
        let before = monitor.snapshot_footprint();
        assert!(before.miss_ratio(64.0) < 0.05, "phase 1 fits in 64");
        monitor.reset();
        monitor.observe_all(&p2.blocks);
        let after = monitor.snapshot_footprint();
        assert!(after.miss_ratio(64.0) > 0.9, "phase 2 thrashes 64");
    }
}
