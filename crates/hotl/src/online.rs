//! Online (streaming) locality profiling.
//!
//! Section VIII's practicality assumption is that footprint data "can be
//! collected in real time" — an *online* monitor watches the access
//! stream and periodically re-optimizes the partition. This module
//! provides that monitor: [`OnlineProfiler`] consumes one access at a
//! time in `O(1)` amortized, and can snapshot a full [`Footprint`] (and
//! hence a miss-ratio curve) at any moment, covering everything seen so
//! far.
//!
//! A snapshot is exactly equal to the batch [`ReuseProfile`] of the
//! prefix consumed so far — the histograms are maintained incrementally,
//! and the boundary terms (first/last access times) are reconstructed
//! from the live last-seen table at snapshot time. Tests pin down that
//! equality.

use crate::footprint::Footprint;
use crate::reuse::ReuseProfile;
use cps_dstruct::DenseHistogram;
use cps_trace::Block;
use std::collections::HashMap;

/// Incremental reuse/footprint profiler.
///
/// # Examples
///
/// ```
/// use cps_hotl::online::OnlineProfiler;
/// let mut p = OnlineProfiler::new();
/// for i in 0..10_000u64 {
///     p.observe(i % 50);
/// }
/// let fp = p.snapshot_footprint();
/// assert_eq!(fp.distinct, 50);
/// assert!(fp.miss_ratio(40.0) > 0.9); // the loop thrashes below 50
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineProfiler {
    /// Accesses seen so far (`n`).
    time: usize,
    /// Gap histogram over completed reuse pairs.
    gaps: DenseHistogram,
    /// First-access times, 1-indexed (fixed once a datum appears).
    first_times: DenseHistogram,
    /// Most recent access position per live datum.
    last_seen: HashMap<Block, usize>,
}

impl OnlineProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one access. `O(1)` amortized.
    #[inline]
    pub fn observe(&mut self, block: Block) {
        match self.last_seen.insert(block, self.time) {
            None => self.first_times.add(self.time + 1, 1),
            Some(p) => self.gaps.add(self.time - p, 1),
        }
        self.time += 1;
    }

    /// Consumes a slice of accesses.
    pub fn observe_all(&mut self, blocks: &[Block]) {
        for &b in blocks {
            self.observe(b);
        }
    }

    /// Accesses consumed so far.
    pub fn accesses(&self) -> usize {
        self.time
    }

    /// Distinct blocks seen so far.
    pub fn distinct(&self) -> usize {
        self.last_seen.len()
    }

    /// Snapshots the reuse statistics of everything consumed so far —
    /// identical to `ReuseProfile::from_trace` over the same prefix.
    /// `O(m)` for the boundary reconstruction.
    pub fn snapshot_reuse(&self) -> ReuseProfile {
        let n = self.time;
        let mut last_times_rev = DenseHistogram::new();
        for (_, &p) in self.last_seen.iter() {
            last_times_rev.add(n - p, 1);
        }
        ReuseProfile {
            accesses: n as u64,
            distinct: self.last_seen.len() as u64,
            gaps: self.gaps.clone(),
            first_times: self.first_times.clone(),
            last_times_rev,
        }
    }

    /// Snapshots the average footprint of the consumed prefix.
    /// `O(n)` (the footprint closed form).
    pub fn snapshot_footprint(&self) -> Footprint {
        Footprint::from_reuse(&self.snapshot_reuse())
    }

    /// Resets to the empty state (e.g. at a phase boundary).
    pub fn reset(&mut self) {
        self.time = 0;
        self.gaps = DenseHistogram::new();
        self.first_times = DenseHistogram::new();
        self.last_seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    #[test]
    fn snapshot_equals_batch_profile_at_any_prefix() {
        let trace = WorkloadSpec::Zipfian {
            region: 80,
            alpha: 0.7,
        }
        .generate(3_000, 9);
        let mut online = OnlineProfiler::new();
        let mut consumed = 0;
        for cut in [1usize, 7, 100, 999, 3_000] {
            online.observe_all(&trace.blocks[consumed..cut]);
            consumed = cut;
            let snap = online.snapshot_reuse();
            let batch = ReuseProfile::from_trace(&trace.blocks[..cut]);
            assert_eq!(snap.accesses, batch.accesses, "cut {cut}");
            assert_eq!(snap.distinct, batch.distinct, "cut {cut}");
            assert_eq!(snap.gaps.buckets(), batch.gaps.buckets(), "cut {cut}");
            assert_eq!(
                snap.first_times.buckets(),
                batch.first_times.buckets(),
                "cut {cut}"
            );
            assert_eq!(
                snap.last_times_rev.buckets(),
                batch.last_times_rev.buckets(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn snapshot_footprint_matches_batch() {
        let trace = WorkloadSpec::SequentialLoop { working_set: 30 }.generate(2_000, 1);
        let mut online = OnlineProfiler::new();
        online.observe_all(&trace.blocks);
        let snap = online.snapshot_footprint();
        let batch = Footprint::from_trace(&trace.blocks);
        assert_eq!(snap.curve().samples(), batch.curve().samples());
    }

    #[test]
    fn empty_profiler_snapshots_cleanly() {
        let p = OnlineProfiler::new();
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.distinct(), 0);
        let fp = p.snapshot_footprint();
        assert_eq!(fp.at(0), 0.0);
    }

    #[test]
    fn reset_forgets_everything() {
        let mut p = OnlineProfiler::new();
        p.observe_all(&[1, 2, 3, 1]);
        assert_eq!(p.accesses(), 4);
        p.reset();
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.distinct(), 0);
        p.observe(5);
        let snap = p.snapshot_reuse();
        assert_eq!(snap.accesses, 1);
        assert_eq!(snap.first_times.count(1), 1);
    }

    #[test]
    fn online_repartitioning_scenario() {
        // The intended use: watch a program change phase and see the
        // snapshot MRC move. Phase 1: 20-block loop; phase 2: 120-block
        // loop. A monitor with reset-at-boundary sees the change.
        let p1 = WorkloadSpec::SequentialLoop { working_set: 20 }.generate(5_000, 1);
        let p2 = WorkloadSpec::SequentialLoop { working_set: 120 }.generate(5_000, 2);
        let mut monitor = OnlineProfiler::new();
        monitor.observe_all(&p1.blocks);
        let before = monitor.snapshot_footprint();
        assert!(before.miss_ratio(64.0) < 0.05, "phase 1 fits in 64");
        monitor.reset();
        monitor.observe_all(&p2.blocks);
        let after = monitor.snapshot_footprint();
        assert!(after.miss_ratio(64.0) > 0.9, "phase 2 thrashes 64");
    }
}
