//! Profile persistence — the paper's "footprint files".
//!
//! Section VII-A: "For each group, the optimizer reads 4 footprints from
//! 4 files. … The file size can be made smaller by storing in binary
//! rather than ASCII format." This module implements exactly that: a
//! compact little-endian binary format for [`SoloProfile`]s, so a study
//! can be profiled once and re-optimized many times.
//!
//! Format (version 1):
//!
//! ```text
//! magic  "CPSP"            4 bytes
//! version u32              4 bytes
//! name len u32 + utf-8 bytes
//! access_rate f64, accesses u64, distinct u64
//! fp sample count u64, then fp samples f64 ×count
//! mrc sample count u64, then mrc samples f64 ×count
//! ```
//!
//! The footprint curve is stored at a stride that caps the file at
//! ~`2 × MAX_FP_SAMPLES` points — the curve is piecewise linear and
//! oversampled at full trace length anyway (the paper's ASCII files are
//! 242–375 KB; ours land in the same range).

use crate::footprint::Footprint;
use crate::metrics::{MissRatioCurve, SoloProfile};
use cps_dstruct::MonotoneCurve;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CPSP";
const VERSION: u32 = 1;

/// Cap on stored footprint samples; curves longer than this are strided.
pub const MAX_FP_SAMPLES: usize = 32_768;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Serializes a profile to the binary footprint-file format.
pub fn write_profile(w: &mut impl Write, profile: &SoloProfile) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    let name = profile.name.as_bytes();
    write_u32(w, name.len() as u32)?;
    w.write_all(name)?;
    write_f64(w, profile.access_rate)?;
    write_u64(w, profile.accesses)?;
    write_u64(w, profile.footprint.distinct)?;
    // Stride the footprint curve down to at most MAX_FP_SAMPLES points
    // (always keeping the final point so fp(n) = m survives).
    let samples = profile.footprint.curve().samples();
    let stride = samples.len().div_ceil(MAX_FP_SAMPLES).max(1);
    let mut kept: Vec<f64> = samples.iter().step_by(stride).copied().collect();
    if !(samples.len() - 1).is_multiple_of(stride) {
        kept.push(*samples.last().expect("curve non-empty"));
    }
    write_u64(w, stride as u64)?;
    write_u64(w, kept.len() as u64)?;
    for v in &kept {
        write_f64(w, *v)?;
    }
    let mrc = profile.mrc.samples();
    write_u64(w, mrc.len() as u64)?;
    for v in mrc {
        write_f64(w, *v)?;
    }
    Ok(())
}

/// Deserializes a profile written by [`write_profile`].
///
/// A strided footprint is re-expanded by linear interpolation onto its
/// original grid, so window arithmetic (`fp(w·s)`) keeps working at the
/// original scale.
pub fn read_profile(r: &mut impl Read) -> io::Result<SoloProfile> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("not a CPSP profile file"));
    }
    if read_u32(r)? != VERSION {
        return Err(invalid("unsupported CPSP version"));
    }
    let name_len = read_u32(r)? as usize;
    if name_len > 1 << 20 {
        return Err(invalid("unreasonable name length"));
    }
    let mut name_bytes = vec![0u8; name_len];
    r.read_exact(&mut name_bytes)?;
    let name = String::from_utf8(name_bytes).map_err(|_| invalid("name not UTF-8"))?;
    let access_rate = read_f64(r)?;
    let accesses = read_u64(r)?;
    let distinct = read_u64(r)?;
    let stride = read_u64(r)? as usize;
    let count = read_u64(r)? as usize;
    if stride == 0 || count == 0 || count > (1 << 28) {
        return Err(invalid("corrupt footprint header"));
    }
    if accesses > (1 << 28) {
        return Err(invalid("unreasonable access count"));
    }
    // No up-front allocation: a corrupt count must fail at read_exact,
    // not via an allocation bomb.
    let mut kept = Vec::new();
    for _ in 0..count {
        kept.push(read_f64(r)?);
    }
    // Validate before handing to the (panicking) curve constructors: a
    // corrupted file must come back as Err, never as a panic. The
    // tolerances mirror MonotoneCurve::is_non_decreasing and
    // Footprint::from_parts exactly — anything those would reject must
    // be rejected here first.
    if !kept.iter().all(|v| v.is_finite()) {
        return Err(invalid("footprint contains non-finite samples"));
    }
    if !kept.windows(2).all(|w| w[1] >= w[0] - 1e-12) {
        return Err(invalid("footprint is not monotone"));
    }
    if kept[0].abs() >= 1e-9 {
        return Err(invalid("footprint does not start at 0"));
    }
    // Re-expand onto the original grid.
    let full = if stride == 1 {
        kept
    } else {
        let n = accesses as usize;
        let strided = MonotoneCurve::from_samples(kept);
        (0..=n)
            .map(|w| strided.eval(w as f64 / stride as f64))
            .collect()
    };
    let footprint = Footprint::from_parts(MonotoneCurve::from_samples(full), accesses, distinct);
    let mrc_len = read_u64(r)? as usize;
    if mrc_len == 0 || mrc_len > (1 << 28) {
        return Err(invalid("corrupt MRC header"));
    }
    let mut mrc = Vec::new();
    for _ in 0..mrc_len {
        mrc.push(read_f64(r)?);
    }
    if !mrc.iter().all(|v| (0.0..=1.0).contains(v)) {
        return Err(invalid("miss ratios out of [0, 1]"));
    }
    Ok(SoloProfile {
        name,
        access_rate,
        accesses,
        footprint,
        mrc: MissRatioCurve::from_samples(mrc),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    fn sample_profile(len: usize) -> SoloProfile {
        let t = WorkloadSpec::Mixture {
            parts: vec![
                (0.9, WorkloadSpec::SequentialLoop { working_set: 30 }),
                (0.1, WorkloadSpec::UniformRandom { region: 150 }),
            ],
        }
        .generate(len, 5);
        SoloProfile::from_trace("roundtrip", &t.blocks, 1.25, 128)
    }

    #[test]
    fn small_profile_round_trips_exactly() {
        let p = sample_profile(10_000);
        let mut buf = Vec::new();
        write_profile(&mut buf, &p).unwrap();
        let q = read_profile(&mut buf.as_slice()).unwrap();
        assert_eq!(q.name, p.name);
        assert_eq!(q.access_rate, p.access_rate);
        assert_eq!(q.accesses, p.accesses);
        assert_eq!(q.footprint.distinct, p.footprint.distinct);
        assert_eq!(q.mrc.samples(), p.mrc.samples());
        assert_eq!(
            q.footprint.curve().samples(),
            p.footprint.curve().samples(),
            "stride 1 must be lossless"
        );
    }

    #[test]
    fn large_profile_round_trips_within_interpolation_error() {
        let p = sample_profile(100_000);
        let mut buf = Vec::new();
        write_profile(&mut buf, &p).unwrap();
        assert!(
            buf.len() < 2 * MAX_FP_SAMPLES * 8 + 128 * 8 + 1024,
            "file size {} should be bounded",
            buf.len()
        );
        let q = read_profile(&mut buf.as_slice()).unwrap();
        for w in [0usize, 1, 10, 100, 5_000, 50_000, 100_000] {
            let a = p.footprint.at(w);
            let b = q.footprint.at(w);
            assert!((a - b).abs() < 0.02 * a.max(1.0), "fp({w}): {a} vs {b}");
        }
        assert_eq!(q.mrc.samples(), p.mrc.samples());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(read_profile(&mut &b"NOPE"[..]).is_err());
        assert!(read_profile(&mut &b"CPSPxxxx"[..]).is_err());
        let mut truncated = Vec::new();
        write_profile(&mut truncated, &sample_profile(2_000)).unwrap();
        truncated.truncate(truncated.len() / 2);
        assert!(read_profile(&mut truncated.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_profile(&mut buf, &sample_profile(1_000)).unwrap();
        buf[4] = 99; // clobber version
        assert!(read_profile(&mut buf.as_slice()).is_err());
    }
}
