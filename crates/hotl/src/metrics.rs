//! Sampled miss-ratio curves and per-program solo profiles.
//!
//! The optimizer in `cps-core` works on miss ratios sampled at every
//! candidate allocation (the paper's 1024 partition units);
//! [`MissRatioCurve`] is that dense sampling of
//! [`Footprint::miss_ratio`], and [`SoloProfile`] bundles everything the
//! six evaluation schemes need to know about one program: its name,
//! access rate, footprint curve, and sampled MRC.

use crate::footprint::Footprint;
use cps_dstruct::MonotoneCurve;
use cps_trace::Block;

/// A miss-ratio curve sampled at integer cache sizes `0..=max`.
#[derive(Clone, Debug, PartialEq)]
pub struct MissRatioCurve {
    /// `ratios[c]` = miss ratio with `c` cache blocks.
    ratios: Vec<f64>,
}

impl MissRatioCurve {
    /// Samples the HOTL miss ratio at `0..=max_blocks`.
    ///
    /// The result is forced non-increasing (the LRU inclusion property)
    /// by a single right-to-left pass; the adjustment is a numerical
    /// guard, not a model change — footprint concavity already implies
    /// monotonicity up to interpolation error.
    pub fn from_footprint(fp: &Footprint, max_blocks: usize) -> Self {
        let mut ratios: Vec<f64> = (0..=max_blocks).map(|c| fp.miss_ratio(c as f64)).collect();
        for c in (0..max_blocks).rev() {
            ratios[c] = ratios[c].max(ratios[c + 1]);
        }
        MissRatioCurve { ratios }
    }

    /// Wraps a raw sample vector (used by simulator-derived curves).
    ///
    /// # Panics
    /// Panics if empty or if any sample is outside `[0, 1]`.
    pub fn from_samples(ratios: Vec<f64>) -> Self {
        assert!(!ratios.is_empty(), "MRC needs at least one sample");
        assert!(
            ratios.iter().all(|r| (0.0..=1.0).contains(r)),
            "miss ratios must lie in [0, 1]"
        );
        MissRatioCurve { ratios }
    }

    /// Miss ratio at `c` blocks (clamped to the sampled range).
    pub fn at(&self, c: usize) -> f64 {
        self.ratios[c.min(self.ratios.len() - 1)]
    }

    /// Largest sampled cache size.
    pub fn max_blocks(&self) -> usize {
        self.ratios.len() - 1
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.ratios
    }

    /// View as a monotone curve (for convexity analysis etc.).
    pub fn to_curve(&self) -> MonotoneCurve {
        MonotoneCurve::from_samples(self.ratios.clone())
    }

    /// Downsamples to partition-unit granularity: entry `u` is the miss
    /// ratio at `u * blocks_per_unit` blocks.
    ///
    /// With `blocks_per_unit = 1` this is the identity. The paper uses
    /// 8 KB units over 64 B lines (128 lines per unit) purely to shrink
    /// the DP; the same trade-off is exposed here.
    pub fn in_units(&self, blocks_per_unit: usize, units: usize) -> MissRatioCurve {
        assert!(blocks_per_unit > 0, "unit must be at least one block");
        let ratios = (0..=units).map(|u| self.at(u * blocks_per_unit)).collect();
        MissRatioCurve { ratios }
    }

    /// True if the curve fails convexity by more than `tol` anywhere —
    /// the condition under which STTW partitioning loses optimality.
    pub fn is_non_convex(&self, tol: f64) -> bool {
        !self.to_curve().is_convex(tol)
    }
}

/// Everything the co-run schemes need to know about one program.
#[derive(Clone, Debug)]
pub struct SoloProfile {
    /// Program name.
    pub name: String,
    /// Relative access rate (the paper's `ar_i`).
    pub access_rate: f64,
    /// Trace length `n`.
    pub accesses: u64,
    /// Average footprint curve.
    pub footprint: Footprint,
    /// Miss-ratio curve sampled at block granularity up to the shared
    /// cache size.
    pub mrc: MissRatioCurve,
}

impl SoloProfile {
    /// Profiles one trace end-to-end: reuse → footprint → MRC.
    pub fn from_trace(
        name: impl Into<String>,
        trace: &[Block],
        access_rate: f64,
        max_cache_blocks: usize,
    ) -> Self {
        let footprint = Footprint::from_trace(trace);
        let mrc = MissRatioCurve::from_footprint(&footprint, max_cache_blocks);
        SoloProfile {
            name: name.into(),
            access_rate,
            accesses: footprint.accesses,
            footprint,
            mrc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_trace(ws: u64, len: usize) -> Vec<Block> {
        (0..len as u64).map(|i| i % ws).collect()
    }

    #[test]
    fn sampled_curve_is_monotone_and_bounded() {
        let fp = Footprint::from_trace(&loop_trace(32, 2000));
        let mrc = MissRatioCurve::from_footprint(&fp, 64);
        assert!(mrc.to_curve().is_non_increasing());
        assert!(mrc.samples().iter().all(|r| (0.0..=1.0).contains(r)));
        assert_eq!(mrc.max_blocks(), 64);
        assert!((mrc.at(0) - 1.0).abs() < 1e-9, "mr(0) must be 1");
    }

    #[test]
    fn cliff_curve_flagged_non_convex() {
        let fp = Footprint::from_trace(&loop_trace(32, 4000));
        let mrc = MissRatioCurve::from_footprint(&fp, 64);
        assert!(mrc.is_non_convex(1e-3), "loop MRC must be a cliff");
    }

    #[test]
    fn unit_downsampling() {
        let fp = Footprint::from_trace(&loop_trace(20, 2000));
        let mrc = MissRatioCurve::from_footprint(&fp, 100);
        let units = mrc.in_units(10, 10);
        assert_eq!(units.max_blocks(), 10);
        for u in 0..=10 {
            assert_eq!(units.at(u), mrc.at(u * 10));
        }
    }

    #[test]
    fn clamping_beyond_max() {
        let fp = Footprint::from_trace(&loop_trace(8, 500));
        let mrc = MissRatioCurve::from_footprint(&fp, 16);
        assert_eq!(mrc.at(1000), mrc.at(16));
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn rejects_out_of_range_samples() {
        let _ = MissRatioCurve::from_samples(vec![0.5, 1.2]);
    }

    #[test]
    fn solo_profile_bundles_consistently() {
        let trace = loop_trace(16, 1000);
        let p = SoloProfile::from_trace("toy", &trace, 1.5, 32);
        assert_eq!(p.name, "toy");
        assert_eq!(p.accesses, 1000);
        assert_eq!(p.access_rate, 1.5);
        assert_eq!(p.mrc.max_blocks(), 32);
        assert_eq!(p.footprint.distinct, 16);
    }
}
