//! The average footprint `fp(w)` in linear time (paper Eq. 5).
//!
//! `fp(w)` is the mean number of distinct blocks over *all* `n − w + 1`
//! windows of length `w`. Computing it by sliding a window is `O(n·w)`;
//! Xiang et al.'s closed form turns it into counting, for every datum,
//! the windows the datum is *absent* from. A datum is absent from a
//! window exactly when the window falls inside one of its access gaps or
//! outside its first/last access:
//!
//! ```text
//! fp(w) = m − [ Σ_pairs max(gap − w, 0)
//!             + Σ_k max(f_k − w, 0)
//!             + Σ_k max(l̄_k − w, 0) ] / (n − w + 1)
//! ```
//!
//! with `gap = j − i` per reuse pair, `f_k` the 1-indexed first access of
//! datum `k`, and `l̄_k = n − l_k + 1` its reversed last access. The three
//! excess sums come from [`cps_dstruct::DenseHistogram::excess_sums`] in
//! one backward pass each, so the entire curve costs `O(n)`.

use crate::reuse::ReuseProfile;
use cps_dstruct::MonotoneCurve;
use cps_trace::Block;

/// The average footprint curve of one trace.
///
/// # Examples
///
/// A cyclic loop over `k` blocks has `fp(w) ≈ min(w, k)` and a cliff
/// miss-ratio curve at `k`:
///
/// ```
/// use cps_hotl::Footprint;
/// let trace: Vec<u64> = (0..5_000).map(|i| i % 40).collect();
/// let fp = Footprint::from_trace(&trace);
/// assert!((fp.at(20) - 20.0).abs() < 0.5);
/// assert!((fp.at(200) - 40.0).abs() < 0.5);
/// assert!(fp.miss_ratio(30.0) > 0.9); // thrashes below the working set
/// assert!(fp.miss_ratio(45.0) < 0.1); // fits above it
/// ```
#[derive(Clone, Debug)]
pub struct Footprint {
    /// `fp[w]` for `w ∈ 0..=n`, monotone non-decreasing,
    /// `fp[0] = 0`, `fp[n] = m`.
    curve: MonotoneCurve,
    /// Trace length `n`.
    pub accesses: u64,
    /// Distinct blocks `m`.
    pub distinct: u64,
}

impl Footprint {
    /// Builds the footprint curve from a reuse profile in `O(n)`.
    pub fn from_reuse(profile: &ReuseProfile) -> Self {
        let n = profile.accesses as usize;
        let m = profile.distinct as f64;
        let gap_excess = profile.gaps.excess_sums();
        let first_excess = profile.first_times.excess_sums();
        let last_excess = profile.last_times_rev.excess_sums();
        let at = |arr: &[u64], w: usize| arr.get(w).copied().unwrap_or(0);
        let mut ys = Vec::with_capacity(n + 1);
        let mut prev = 0.0f64;
        for w in 0..=n {
            let absent = (at(&gap_excess, w) + at(&first_excess, w) + at(&last_excess, w)) as f64;
            let windows = (n - w + 1) as f64;
            let fp = (m - absent / windows).max(prev); // enforce monotone
            ys.push(fp);
            prev = fp;
        }
        if ys.is_empty() {
            ys.push(0.0);
        }
        Footprint {
            curve: MonotoneCurve::from_samples(ys),
            accesses: profile.accesses,
            distinct: profile.distinct,
        }
    }

    /// Convenience: profile + footprint in one call.
    pub fn from_trace(trace: &[Block]) -> Self {
        Self::from_reuse(&ReuseProfile::from_trace(trace))
    }

    /// Assembles a footprint from an existing curve and its trace
    /// statistics — used by sampled profiling and profile persistence.
    ///
    /// # Panics
    /// Panics if the curve is not non-decreasing or does not start at 0.
    pub fn from_parts(curve: MonotoneCurve, accesses: u64, distinct: u64) -> Self {
        assert!(curve.is_non_decreasing(), "footprint must be monotone");
        assert!(curve.at(0).abs() < 1e-9, "footprint must start at 0");
        Footprint {
            curve,
            accesses,
            distinct,
        }
    }

    /// `fp(w)` at real-valued window length `w` (linear interpolation,
    /// clamped to `[0, n]`).
    pub fn eval(&self, w: f64) -> f64 {
        self.curve.eval(w)
    }

    /// `fp(w)` at integer `w` (clamped).
    pub fn at(&self, w: usize) -> f64 {
        self.curve.at(w)
    }

    /// The underlying monotone curve.
    pub fn curve(&self) -> &MonotoneCurve {
        &self.curve
    }

    /// The *fill time* `ft(c) = fp⁻¹(c)` (paper Eq. 6): the expected
    /// window length needed to touch `c` distinct blocks. `None` when
    /// `c` exceeds the total footprint `m`.
    pub fn fill_time(&self, c: f64) -> Option<f64> {
        self.curve.inverse(c)
    }

    /// The *inter-miss time* at cache size `c` (paper Eq. 7):
    /// `im(c) = ft(c+1) − ft(c)`. `None` when a cache of `c + 1` blocks
    /// can never be filled (`c + 1 > m`) — the program stops missing.
    pub fn inter_miss_time(&self, c: f64) -> Option<f64> {
        let ft_c = self.fill_time(c)?;
        let ft_c1 = self.fill_time(c + 1.0)?;
        Some(ft_c1 - ft_c)
    }

    /// Miss ratio at cache size `c` blocks (paper Eq. 8/10):
    /// `mr(c) = fp(w + 1) − c` where `fp(w) = c`; equivalently
    /// `1 / im(c)`. Programs whose footprint fits (`c ≥ m`) return 0.
    pub fn miss_ratio(&self, c: f64) -> f64 {
        match self.fill_time(c) {
            None => 0.0,
            Some(w) => (self.eval(w + 1.0) - c).clamp(0.0, 1.0),
        }
    }

    /// Extends the curve past its sampled range by linear extrapolation
    /// of the tail slope, until the footprint reaches `target_value` or
    /// the curve reaches `max_len` samples.
    ///
    /// Burst-sampled footprints are truncated at one burst length; for
    /// window lengths beyond that the steady tail slope (the program's
    /// end-of-burst miss rate) is the natural estimate. Without
    /// extrapolation, a cache larger than the observed footprint looks
    /// like a perfect fit (miss ratio 0), which badly misleads the
    /// optimizer — see the `ablation_sampling` experiment.
    ///
    /// The tail slope is measured over the last 10% of the curve
    /// (at least 2 samples). A flat tail (slope ≤ 0) leaves the curve
    /// unchanged.
    pub fn extrapolate_to(&self, target_value: f64, max_len: usize) -> Footprint {
        let ys = self.curve.samples();
        let n = ys.len();
        let last = ys[n - 1];
        if last >= target_value || n < 2 {
            return self.clone();
        }
        let window = (n / 10).max(2).min(n);
        let slope = (ys[n - 1] - ys[n - window]) / (window - 1) as f64;
        if slope <= 1e-12 {
            return self.clone();
        }
        let needed = ((target_value - last) / slope).ceil() as usize;
        let extra = needed.min(max_len.saturating_sub(n));
        let mut extended = ys.to_vec();
        extended.reserve(extra);
        for i in 1..=extra {
            extended.push(last + slope * i as f64);
        }
        Footprint {
            curve: MonotoneCurve::from_samples(extended),
            accesses: self.accesses,
            distinct: self.distinct.max(target_value.ceil() as u64),
        }
    }

    /// Brute-force `fp(w)` by enumerating all windows — the `O(n·w)`
    /// oracle used by tests to validate the closed form.
    pub fn brute_force(trace: &[Block], w: usize) -> f64 {
        let n = trace.len();
        if w == 0 || n == 0 || w > n {
            if w == 0 {
                return 0.0;
            }
            // Window longer than trace: single clamped window (matches
            // fp(n)).
            let t = cps_trace::Trace::new(trace.to_vec());
            return t.distinct() as f64;
        }
        let t = cps_trace::Trace::new(trace.to_vec());
        let mut sum = 0.0;
        for start in 0..=(n - w) {
            sum += t.window_wss(start, w) as f64;
        }
        sum / (n - w + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_all(trace: &[Block]) -> Footprint {
        Footprint::from_trace(trace)
    }

    #[test]
    fn boundary_values() {
        let trace = [0u64, 1, 0, 2, 1, 0];
        let fp = fp_all(&trace);
        assert_eq!(fp.at(0), 0.0);
        assert_eq!(fp.at(6), 3.0); // whole trace: 3 distinct
        assert_eq!(fp.at(1), 1.0); // every single access touches 1 block
    }

    #[test]
    fn matches_brute_force_small() {
        let traces: Vec<Vec<u64>> = vec![
            vec![0, 0, 1, 2, 2, 3, 0, 0, 1, 2, 2, 3], // paper Figure 3
            vec![5],
            vec![1, 1, 1, 1],
            vec![0, 1, 2, 3, 4, 5],
            (0..64).map(|i| (i * 7) % 13).collect(),
        ];
        for trace in traces {
            let fp = fp_all(&trace);
            for w in 0..=trace.len() {
                let oracle = Footprint::brute_force(&trace, w);
                assert!(
                    (fp.at(w) - oracle).abs() < 1e-9,
                    "trace {trace:?} w={w}: {} vs oracle {oracle}",
                    fp.at(w)
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_random() {
        let mut x = 123456789u64;
        for round in 0..4 {
            let mut trace = Vec::new();
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(round);
                trace.push((x >> 45) % 17);
            }
            let fp = fp_all(&trace);
            for w in [0, 1, 2, 3, 5, 10, 50, 100, 199, 200] {
                let oracle = Footprint::brute_force(&trace, w);
                assert!(
                    (fp.at(w) - oracle).abs() < 1e-9,
                    "w={w}: {} vs {oracle}",
                    fp.at(w)
                );
            }
        }
    }

    #[test]
    fn curve_is_monotone_and_concave_for_loop() {
        // fp of a cyclic loop over k blocks is min(w, k) — piecewise
        // linear and concave.
        let k = 10u64;
        let trace: Vec<u64> = (0..200).map(|i| i % k).collect();
        let fp = fp_all(&trace);
        assert!(fp.curve().is_non_decreasing());
        for w in 0..=(k as usize) {
            assert!(
                (fp.at(w) - w as f64).abs() < 0.2,
                "fp({w}) = {} should be ≈ {w}",
                fp.at(w)
            );
        }
        // Beyond the working set the curve is flat at k (modulo edge
        // windows near the trace end).
        assert!((fp.at(50) - k as f64).abs() < 0.1);
    }

    #[test]
    fn fill_time_inverts_footprint() {
        let trace: Vec<u64> = (0..300).map(|i| (i * 11) % 23).collect();
        let fp = fp_all(&trace);
        for c in [0.5, 1.0, 5.0, 10.0, 20.0] {
            let w = fp.fill_time(c).expect("reachable footprint");
            assert!((fp.eval(w) - c).abs() < 1e-9, "ft({c}) round trip");
        }
        assert_eq!(fp.fill_time(24.0), None, "beyond total footprint");
    }

    #[test]
    fn miss_ratio_of_cyclic_loop_is_cliff() {
        let trace: Vec<u64> = (0..4000).map(|i| i % 40).collect();
        let fp = fp_all(&trace);
        // Below the working set: every access misses (mr ≈ 1).
        assert!(
            fp.miss_ratio(20.0) > 0.95,
            "mr(20) = {}",
            fp.miss_ratio(20.0)
        );
        // At/above the working set: no capacity misses.
        assert!(
            fp.miss_ratio(40.0) < 0.05,
            "mr(40) = {}",
            fp.miss_ratio(40.0)
        );
        assert_eq!(fp.miss_ratio(100.0), 0.0);
    }

    #[test]
    fn miss_ratio_bounded() {
        let trace: Vec<u64> = (0..500).map(|i| (i * i) % 97).collect();
        let fp = fp_all(&trace);
        for c in 0..=97 {
            let mr = fp.miss_ratio(c as f64);
            assert!((0.0..=1.0).contains(&mr), "mr({c}) = {mr}");
        }
    }

    #[test]
    fn inter_miss_is_reciprocal_of_miss_ratio() {
        let trace: Vec<u64> = (0..600).map(|i| (i * 13 + 5) % 53).collect();
        let fp = fp_all(&trace);
        for c in [5.0, 10.0, 25.0, 40.0] {
            let mr = fp.miss_ratio(c);
            if mr > 1e-6 {
                let im = fp.inter_miss_time(c).unwrap();
                // mr(c) = fp(w+1) − fp(w) is a one-step slope while
                // im(c) = ft(c+1) − ft(c) is the reciprocal slope in the
                // other axis; they agree where the curve is smooth.
                assert!(
                    (1.0 / im - mr).abs() < 0.1 * mr.max(1.0 / im),
                    "c={c}: 1/im = {} vs mr = {mr}",
                    1.0 / im
                );
            }
        }
    }

    #[test]
    fn empty_trace_footprint() {
        let fp = fp_all(&[]);
        assert_eq!(fp.at(0), 0.0);
        assert_eq!(fp.miss_ratio(1.0), 0.0);
    }

    #[test]
    fn extrapolation_extends_at_tail_slope() {
        // A steadily-growing footprint: uniform accesses over a huge
        // region grow ~linearly; truncate then extrapolate.
        let trace: Vec<u64> = (0..2000u64).map(|i| (i * 2654435761) % 100_000).collect();
        let full = fp_all(&trace);
        let truncated = Footprint::from_parts(
            MonotoneCurve::from_samples(full.curve().samples()[..500].to_vec()),
            full.accesses,
            full.distinct,
        );
        let target = full.at(1500);
        let ext = truncated.extrapolate_to(target, 4000);
        assert!(ext.eval(ext.curve().max_x()) >= target - 1e-6);
        // The extrapolated value at w=1500 tracks the true curve within
        // a few percent (the workload is stationary).
        let err = (ext.eval(1500.0) - full.at(1500)).abs() / full.at(1500);
        assert!(err < 0.05, "extrapolation error {err}");
    }

    #[test]
    fn extrapolation_is_identity_when_saturated() {
        let trace: Vec<u64> = (0..1000).map(|i| i % 20).collect();
        let fp = fp_all(&trace);
        let ext = fp.extrapolate_to(10.0, 10_000); // already above target
        assert_eq!(ext.curve().samples(), fp.curve().samples());
        // Flat tail: target above m but slope ~ 0 → unchanged.
        let ext2 = fp.extrapolate_to(100.0, 10_000);
        assert_eq!(ext2.curve().len(), fp.curve().len());
    }

    #[test]
    fn extrapolation_respects_max_len() {
        let trace: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 50_000).collect();
        let fp = fp_all(&trace);
        let ext = fp.extrapolate_to(1e9, 600);
        assert!(ext.curve().len() <= 600);
        assert!(ext.curve().is_non_decreasing());
    }
}
