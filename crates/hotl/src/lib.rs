//! The Higher-Order Theory of Locality (HOTL).
//!
//! This crate implements Section III and IV of the paper: the metric
//! chain from a raw memory trace to a machine-independent miss-ratio
//! curve, and the composition theory that predicts co-run behaviour from
//! solo profiles:
//!
//! ```text
//! trace ──▶ reuse-time histogram ──▶ average footprint fp(w)
//!       fill time ft = fp⁻¹ ──▶ inter-miss time ──▶ miss ratio mr(c)
//! ```
//!
//! * [`reuse`] — reuse gaps and boundary times ([`reuse::ReuseProfile`]),
//!   Eq. 4 of the paper.
//! * [`footprint`] — the average footprint `fp(w)` for **all** window
//!   lengths in linear time (Eq. 5, via Xiang et al.'s closed form).
//! * [`metrics`] — fill time (Eq. 6), inter-miss time (Eq. 7), miss
//!   ratio (Eq. 8/10), and sampled miss-ratio / miss-count curves.
//! * [`compose`] — stretched-footprint composition for co-run groups
//!   (Eq. 9/11) and the **Natural Cache Partition** (Section V-A).
//! * [`assoc`] — reuse-distance distribution from the MRC and Smith's
//!   statistical set-associativity estimate (Section VIII).
//! * [`sampling`] / [`online`] / [`persist`] — bursty sampled profiling,
//!   streaming profiling, and binary footprint files (the practicality
//!   assumptions of Sections VII-A and VIII).
//! * [`windowed`] — epoch-windowed profiling with exponential decay, the
//!   per-tenant monitor used by the online repartitioning engine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assoc;
pub mod compose;
pub mod footprint;
pub mod hypothesis;
pub mod metrics;
pub mod online;
pub mod persist;
pub mod reuse;
pub mod sampling;
pub mod windowed;

pub use compose::{CoRunModel, NaturalPartition};
pub use footprint::Footprint;
pub use metrics::{MissRatioCurve, SoloProfile};
pub use reuse::ReuseProfile;
pub use sampling::{sample_footprint, sample_reuse, BurstConfig};
pub use windowed::{ProfilerMode, WindowedProfiler};
