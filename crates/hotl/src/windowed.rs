//! Epoch-windowed, exponentially decayed locality profiling.
//!
//! An online repartitioning controller needs a per-tenant miss-ratio
//! curve that tracks *recent* behaviour: a cumulative profile reacts too
//! slowly once a tenant changes phase, while a single-epoch profile is
//! noisy. [`WindowedProfiler`] supports both regimes. It wraps an
//! [`OnlineProfiler`] for the current epoch window and, at each window
//! boundary, folds the window's miss-ratio curve into an exponentially
//! weighted moving average:
//!
//! ```text
//! blended = decay * blended_prev + (1 - decay) * window_mrc
//! ```
//!
//! With `decay = 0` only the latest window matters; as `decay → 1`
//! history dominates. In [`ProfilerMode::Cumulative`] the window is never
//! reset and the blended curve is simply the lifetime curve — the
//! asymptotically exact choice for stationary workloads.
//!
//! Within a window the profiler is exact: [`WindowedProfiler::window_reuse`]
//! equals the batch [`ReuseProfile`] of the accesses observed since the
//! last boundary (property-tested against interleaved streams).

use crate::footprint::Footprint;
use crate::metrics::MissRatioCurve;
use crate::online::OnlineProfiler;
use crate::reuse::ReuseProfile;
use cps_trace::Block;

/// How a [`WindowedProfiler`] weighs history at window boundaries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProfilerMode {
    /// Never reset: the blended curve is the lifetime curve.
    Cumulative,
    /// Reset each window and EWMA-blend curves with weight `decay` on
    /// history (`0.0..1.0`).
    Windowed {
        /// Weight on the previous blended curve; `0` forgets instantly.
        decay: f64,
    },
}

/// Streaming per-tenant profiler with epoch windows and decay.
///
/// # Examples
///
/// ```
/// use cps_hotl::windowed::{ProfilerMode, WindowedProfiler};
/// let mut p = WindowedProfiler::new(64, ProfilerMode::Windowed { decay: 0.5 });
/// for i in 0..5_000u64 {
///     p.observe(i % 20);
/// }
/// let mrc = p.end_window().expect("non-empty window");
/// assert!(mrc.at(20) < 0.05, "20-block loop fits in 20 blocks");
/// assert!(mrc.at(10) > 0.9, "and thrashes below it");
/// ```
#[derive(Clone, Debug)]
pub struct WindowedProfiler {
    mode: ProfilerMode,
    max_blocks: usize,
    window: OnlineProfiler,
    blended: Option<Vec<f64>>,
    windows_ended: usize,
}

impl WindowedProfiler {
    /// Creates a profiler whose curves are sampled at `0..=max_blocks`.
    ///
    /// # Panics
    /// Panics if a windowed `decay` is outside `[0, 1)`.
    pub fn new(max_blocks: usize, mode: ProfilerMode) -> Self {
        if let ProfilerMode::Windowed { decay } = mode {
            assert!(
                (0.0..1.0).contains(&decay),
                "decay must lie in [0, 1), got {decay}"
            );
        }
        WindowedProfiler {
            mode,
            max_blocks,
            window: OnlineProfiler::new(),
            blended: None,
            windows_ended: 0,
        }
    }

    /// The profiler's mode.
    pub fn mode(&self) -> ProfilerMode {
        self.mode
    }

    /// Largest sampled cache size.
    pub fn max_blocks(&self) -> usize {
        self.max_blocks
    }

    /// Consumes one access. `O(1)` amortized.
    #[inline]
    pub fn observe(&mut self, block: Block) {
        self.window.observe(block);
    }

    /// Consumes a slice of accesses.
    pub fn observe_all(&mut self, blocks: &[Block]) {
        self.window.observe_all(blocks);
    }

    /// Absorbs a chunk profiler into the current window, exactly as if
    /// the chunk's accesses had been observed here in order (see
    /// [`OnlineProfiler::absorb`]). This is how a sharded engine merges
    /// per-shard window segments at an epoch barrier: absorb every
    /// shard's chunk **in stream order**, then call
    /// [`Self::end_window`] once on the merged state.
    pub fn absorb_window(&mut self, chunk: &OnlineProfiler) {
        self.window.absorb(chunk);
    }

    /// Accesses observed since the last window boundary (lifetime count
    /// in cumulative mode).
    pub fn window_accesses(&self) -> usize {
        self.window.accesses()
    }

    /// Windows ended so far.
    pub fn windows_ended(&self) -> usize {
        self.windows_ended
    }

    /// Exact reuse statistics of the current window — equal to the batch
    /// [`ReuseProfile`] of the accesses observed since the last boundary.
    pub fn window_reuse(&self) -> ReuseProfile {
        self.window.snapshot_reuse()
    }

    /// Ends the current window: folds its miss-ratio curve into the
    /// blended estimate and (in windowed mode) resets the window.
    ///
    /// Returns the updated blended curve, or `None` if nothing has ever
    /// been observed. An *empty* window leaves the previous blend
    /// untouched — an idle tenant keeps its last known curve rather than
    /// decaying toward a vacuous one.
    pub fn end_window(&mut self) -> Option<MissRatioCurve> {
        if self.window.accesses() > 0 {
            let fp = Footprint::from_reuse(&self.window.snapshot_reuse());
            let current = MissRatioCurve::from_footprint(&fp, self.max_blocks);
            match (self.mode, &mut self.blended) {
                (ProfilerMode::Cumulative, slot) => {
                    *slot = Some(current.samples().to_vec());
                }
                (ProfilerMode::Windowed { .. }, slot @ None) => {
                    *slot = Some(current.samples().to_vec());
                }
                (ProfilerMode::Windowed { decay }, Some(prev)) => {
                    for (p, &c) in prev.iter_mut().zip(current.samples()) {
                        *p = decay * *p + (1.0 - decay) * c;
                    }
                }
            }
            if let ProfilerMode::Windowed { .. } = self.mode {
                self.window.reset();
            }
        }
        self.windows_ended += 1;
        self.mrc()
    }

    /// The current blended miss-ratio curve, if any window has closed
    /// with data (or `None` before the first non-empty `end_window`).
    pub fn mrc(&self) -> Option<MissRatioCurve> {
        self.blended
            .as_ref()
            .map(|s| MissRatioCurve::from_samples(s.clone()))
    }

    /// Forgets everything: window, blend, and window count.
    pub fn reset(&mut self) {
        self.window.reset();
        self.blended = None;
        self.windows_ended = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    #[test]
    fn cumulative_blend_is_lifetime_curve() {
        let trace = WorkloadSpec::Zipfian {
            region: 60,
            alpha: 0.8,
        }
        .generate(4_000, 3);
        let mut p = WindowedProfiler::new(80, ProfilerMode::Cumulative);
        let mut whole = OnlineProfiler::new();
        for chunk in trace.blocks.chunks(1_000) {
            p.observe_all(chunk);
            whole.observe_all(chunk);
            let blended = p.end_window().expect("non-empty");
            let exact = MissRatioCurve::from_footprint(&whole.snapshot_footprint(), 80);
            assert_eq!(blended.samples(), exact.samples());
        }
        assert_eq!(p.windows_ended(), 4);
    }

    #[test]
    fn zero_decay_tracks_only_latest_window() {
        let small = WorkloadSpec::SequentialLoop { working_set: 10 }.generate(3_000, 1);
        let large = WorkloadSpec::SequentialLoop { working_set: 100 }.generate(3_000, 2);
        let mut p = WindowedProfiler::new(128, ProfilerMode::Windowed { decay: 0.0 });
        p.observe_all(&small.blocks);
        let m1 = p.end_window().unwrap();
        assert!(m1.at(64) < 0.05, "phase 1 fits in 64");
        p.observe_all(&large.blocks);
        let m2 = p.end_window().unwrap();
        assert!(m2.at(64) > 0.9, "decay 0 forgets phase 1 immediately");
    }

    #[test]
    fn high_decay_remembers_history() {
        let small = WorkloadSpec::SequentialLoop { working_set: 10 }.generate(3_000, 1);
        let large = WorkloadSpec::SequentialLoop { working_set: 100 }.generate(3_000, 2);
        let mut p = WindowedProfiler::new(128, ProfilerMode::Windowed { decay: 0.9 });
        p.observe_all(&small.blocks);
        p.end_window();
        p.observe_all(&large.blocks);
        let m = p.end_window().unwrap();
        // 0.9 * ~0 + 0.1 * ~1 stays far from the pure phase-2 curve.
        assert!(m.at(64) < 0.2, "history dominates at decay 0.9");
        assert!(m.at(64) > 0.05, "but the new phase is visible");
    }

    #[test]
    fn empty_window_preserves_blend() {
        let trace = WorkloadSpec::SequentialLoop { working_set: 10 }.generate(1_000, 1);
        let mut p = WindowedProfiler::new(32, ProfilerMode::Windowed { decay: 0.5 });
        p.observe_all(&trace.blocks);
        let before = p.end_window().unwrap();
        let after = p.end_window().expect("blend survives an idle window");
        assert_eq!(before.samples(), after.samples());
    }

    #[test]
    fn no_curve_before_first_data() {
        let mut p = WindowedProfiler::new(16, ProfilerMode::Windowed { decay: 0.3 });
        assert!(p.mrc().is_none());
        assert!(p.end_window().is_none(), "empty first window yields None");
        p.observe(1);
        assert!(p.end_window().is_some());
    }

    #[test]
    fn blended_curve_stays_valid() {
        // Convex combinations of monotone [0,1] curves remain so.
        let a = WorkloadSpec::UniformRandom { region: 50 }.generate(2_000, 4);
        let b = WorkloadSpec::SequentialLoop { working_set: 25 }.generate(2_000, 5);
        let mut p = WindowedProfiler::new(64, ProfilerMode::Windowed { decay: 0.6 });
        p.observe_all(&a.blocks);
        p.end_window();
        p.observe_all(&b.blocks);
        let m = p.end_window().unwrap();
        assert!(m.samples().iter().all(|r| (0.0..=1.0).contains(r)));
        for c in 0..m.max_blocks() {
            assert!(m.at(c) + 1e-12 >= m.at(c + 1), "monotone at {c}");
        }
    }

    #[test]
    #[should_panic(expected = "decay must lie in [0, 1)")]
    fn decay_of_one_rejected() {
        let _ = WindowedProfiler::new(8, ProfilerMode::Windowed { decay: 1.0 });
    }

    #[test]
    fn absorbed_windows_blend_identically_to_direct_observation() {
        // Two epochs, each split into 3 chunks and absorbed, must give
        // the same blended curve (bit for bit) as direct observation —
        // the determinism guarantee the sharded engine relies on.
        let e1 = WorkloadSpec::Zipfian {
            region: 90,
            alpha: 0.7,
        }
        .generate(3_000, 21);
        let e2 = WorkloadSpec::SequentialLoop { working_set: 40 }.generate(3_000, 22);
        for mode in [
            ProfilerMode::Windowed { decay: 0.5 },
            ProfilerMode::Cumulative,
        ] {
            let mut direct = WindowedProfiler::new(128, mode);
            let mut sharded = WindowedProfiler::new(128, mode);
            for epoch in [&e1.blocks, &e2.blocks] {
                direct.observe_all(epoch);
                for chunk in epoch.chunks(1_000) {
                    let mut seg = OnlineProfiler::new();
                    seg.observe_all(chunk);
                    sharded.absorb_window(&seg);
                }
                let a = direct.end_window().unwrap();
                let b = sharded.end_window().unwrap();
                assert_eq!(a.samples(), b.samples(), "{mode:?}");
            }
        }
    }
}
