//! Bursty sampled footprint profiling.
//!
//! The paper uses full-trace footprint analysis "to have reproducible
//! results" but points at Wang et al.'s *adaptive bursty footprint*
//! (ABF) profiling — 0.09 s per program instead of a 23× slowdown — as
//! the practical deployment mode (Sections VII-A and VIII). This module
//! implements the bursty idea: profile only periodic *bursts* of the
//! trace and merge their reuse statistics. Each burst is long enough to
//! cover the window lengths the optimizer cares about (a few multiples
//! of the cache's fill time), so within-burst reuse statistics are
//! unbiased for those windows; skipping between bursts just reduces the
//! sample count.
//!
//! The accuracy/cost trade-off is exercised by the
//! `ablation_sampling` experiment and the tests below.

use crate::footprint::Footprint;
use crate::reuse::ReuseProfile;
use cps_dstruct::DenseHistogram;
use cps_trace::Block;
use std::collections::HashMap;

/// Burst-sampling configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurstConfig {
    /// Accesses profiled per burst.
    pub burst_len: usize,
    /// Accesses skipped between bursts.
    pub skip_len: usize,
}

impl BurstConfig {
    /// A burst schedule covering roughly `1/ratio` of the trace with
    /// bursts of `burst_len` accesses.
    ///
    /// # Panics
    /// Panics if `burst_len` is 0 or `ratio` < 1.
    pub fn with_ratio(burst_len: usize, ratio: usize) -> Self {
        assert!(burst_len > 0, "bursts need at least one access");
        assert!(ratio >= 1, "sampling ratio must be at least 1");
        BurstConfig {
            burst_len,
            skip_len: burst_len * (ratio - 1),
        }
    }

    /// Fraction of the trace profiled.
    pub fn coverage(&self) -> f64 {
        self.burst_len as f64 / (self.burst_len + self.skip_len) as f64
    }
}

/// Reuse statistics from burst samples, merged into a single
/// [`ReuseProfile`]-shaped summary.
///
/// Bursts are profiled independently: reuse pairs never span a skip
/// region (a datum seen in an earlier burst counts as a fresh first
/// access), which keeps every recorded gap exact for its burst.
///
/// The merged histograms are valid reuse statistics, but do **not**
/// feed them to [`Footprint::from_reuse`] directly — its window-count
/// normalization assumes one contiguous trace. Use [`sample_footprint`],
/// which normalizes per burst.
pub fn sample_reuse(trace: &[Block], config: BurstConfig) -> ReuseProfile {
    let mut gaps = DenseHistogram::new();
    let mut first_times = DenseHistogram::new();
    let mut last_times_rev = DenseHistogram::new();
    let mut accesses = 0u64;
    let mut distinct = 0u64;
    let period = config.burst_len + config.skip_len;
    let mut start = 0usize;
    while start < trace.len() {
        let end = (start + config.burst_len).min(trace.len());
        let burst = &trace[start..end];
        let n = burst.len();
        let mut last_seen: HashMap<Block, usize> = HashMap::new();
        for (t, &addr) in burst.iter().enumerate() {
            match last_seen.insert(addr, t) {
                None => first_times.add(t + 1, 1),
                Some(p) => gaps.add(t - p, 1),
            }
        }
        for (_, &p) in last_seen.iter() {
            last_times_rev.add(n - p, 1);
        }
        accesses += n as u64;
        distinct += last_seen.len() as u64;
        start += period;
    }
    ReuseProfile {
        accesses,
        distinct,
        gaps,
        first_times,
        last_times_rev,
    }
}

/// Burst-sampled average footprint.
///
/// Each burst is profiled independently; the sampled `fp(w)` is the
/// window-count-weighted mean of the per-burst footprints:
///
/// ```text
/// fp(w) = Σ_b (n_b − w + 1) · fp_b(w)  /  Σ_b (n_b − w + 1)
/// ```
///
/// which is exactly the average WSS over every window that lies wholly
/// inside a burst. The curve is truncated at the shortest burst length —
/// longer windows are never observed whole.
pub fn sample_footprint(trace: &[Block], config: BurstConfig) -> Footprint {
    let period = config.burst_len + config.skip_len;
    let mut bursts: Vec<Footprint> = Vec::new();
    let mut accesses = 0u64;
    let mut start = 0usize;
    while start < trace.len() {
        let end = (start + config.burst_len).min(trace.len());
        let fp = Footprint::from_trace(&trace[start..end]);
        accesses += fp.accesses;
        bursts.push(fp);
        start += period;
    }
    if bursts.is_empty() {
        return Footprint::from_trace(&[]);
    }
    let max_w = bursts
        .iter()
        .map(|b| b.accesses as usize)
        .min()
        .expect("non-empty");
    let mut ys = Vec::with_capacity(max_w + 1);
    let mut prev = 0.0f64;
    for w in 0..=max_w {
        let mut weighted = 0.0;
        let mut windows = 0.0;
        for b in &bursts {
            let n_b = b.accesses as usize;
            let count = (n_b - w + 1) as f64;
            weighted += count * b.at(w);
            windows += count;
        }
        let v = (weighted / windows).max(prev);
        ys.push(v);
        prev = v;
    }
    // The sampled curve saturates where the bursts do; report a
    // curve-consistent distinct count (a lower bound on the program's
    // true total footprint, since no window longer than a burst was
    // observed).
    let distinct = ys.last().copied().unwrap_or(0.0).round() as u64;
    Footprint::from_parts(
        cps_dstruct::MonotoneCurve::from_samples(ys),
        accesses,
        distinct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    #[test]
    fn full_coverage_equals_full_trace_profile() {
        let trace = WorkloadSpec::Zipfian {
            region: 60,
            alpha: 0.8,
        }
        .generate(5_000, 1);
        let cfg = BurstConfig {
            burst_len: trace.len(),
            skip_len: 0,
        };
        let sampled = sample_reuse(&trace.blocks, cfg);
        let full = ReuseProfile::from_trace(&trace.blocks);
        assert_eq!(sampled.accesses, full.accesses);
        assert_eq!(sampled.distinct, full.distinct);
        assert_eq!(sampled.gaps.buckets(), full.gaps.buckets());
    }

    #[test]
    fn coverage_fraction() {
        let cfg = BurstConfig::with_ratio(1_000, 10);
        assert!((cfg.coverage() - 0.1).abs() < 1e-12);
        assert_eq!(cfg.skip_len, 9_000);
    }

    #[test]
    fn sampled_footprint_tracks_full_footprint_in_range() {
        // Stationary workload: 10% bursts reproduce fp(w) for w within
        // a burst.
        let trace = WorkloadSpec::Mixture {
            parts: vec![
                (0.9, WorkloadSpec::SequentialLoop { working_set: 40 }),
                (0.1, WorkloadSpec::UniformRandom { region: 200 }),
            ],
        }
        .generate(200_000, 2);
        let cfg = BurstConfig::with_ratio(4_000, 10);
        let sampled = sample_footprint(&trace.blocks, cfg);
        let full = Footprint::from_trace(&trace.blocks);
        for w in [10usize, 50, 100, 500, 1_000, 2_000] {
            let s = sampled.eval(w as f64);
            let f = full.eval(w as f64);
            assert!(
                (s - f).abs() < 0.05 * f.max(1.0),
                "fp({w}): sampled {s} vs full {f}"
            );
        }
    }

    #[test]
    fn sampled_miss_ratio_usable_for_optimization() {
        let trace = WorkloadSpec::SequentialLoop { working_set: 50 }.generate(100_000, 3);
        let cfg = BurstConfig::with_ratio(2_000, 20); // 5% coverage
        let sampled = sample_footprint(&trace.blocks, cfg);
        // The cliff at 50 blocks survives sampling.
        assert!(sampled.miss_ratio(25.0) > 0.9);
        assert!(sampled.miss_ratio(55.0) < 0.1);
    }

    #[test]
    fn degenerate_burst_longer_than_trace() {
        let trace = WorkloadSpec::UniformRandom { region: 10 }.generate(100, 4);
        let cfg = BurstConfig {
            burst_len: 1_000,
            skip_len: 0,
        };
        let p = sample_reuse(&trace.blocks, cfg);
        assert_eq!(p.accesses, 100);
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn zero_burst_panics() {
        let _ = BurstConfig::with_ratio(0, 2);
    }
}
