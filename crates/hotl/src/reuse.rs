//! Reuse-time measurement (paper Section III, Eq. 4).
//!
//! A *reuse pair* is two consecutive accesses to the same datum; its
//! *reuse time* is the length of the smallest window containing both
//! (`rt(d_i, d_j) = j − i + 1`, Eq. 4). For the footprint formula it is
//! more convenient to histogram the *gap* `j − i = rt − 1`; this module
//! records gaps plus the two boundary quantities the formula needs —
//! first-access times and reversed last-access times.

use cps_dstruct::DenseHistogram;
use cps_trace::Block;
use std::collections::HashMap;

/// Reuse statistics of one trace, sufficient to reconstruct the average
/// footprint for every window length.
#[derive(Clone, Debug)]
pub struct ReuseProfile {
    /// Trace length `n`.
    pub accesses: u64,
    /// Distinct data `m`.
    pub distinct: u64,
    /// Histogram of reuse *gaps* (`j − i`, i.e. reuse time − 1) over all
    /// reuse pairs.
    pub gaps: DenseHistogram,
    /// Histogram of first-access times, 1-indexed (`f_k` in the paper's
    /// footprint formula).
    pub first_times: DenseHistogram,
    /// Histogram of reversed last-access times (`n − l_k + 1`, 1-indexed).
    pub last_times_rev: DenseHistogram,
}

impl ReuseProfile {
    /// Single-pass measurement over a trace. `O(n)` time, `O(m)` space.
    pub fn from_trace(trace: &[Block]) -> Self {
        let n = trace.len();
        let mut last_seen: HashMap<Block, usize> = HashMap::with_capacity(1024);
        let mut gaps = DenseHistogram::new();
        let mut first_times = DenseHistogram::new();
        for (t, &addr) in trace.iter().enumerate() {
            match last_seen.insert(addr, t) {
                None => first_times.add(t + 1, 1), // 1-indexed f_k
                Some(p) => gaps.add(t - p, 1),
            }
        }
        let mut last_times_rev = DenseHistogram::new();
        for (_, &p) in last_seen.iter() {
            last_times_rev.add(n - p, 1); // n − (p+1) + 1
        }
        ReuseProfile {
            accesses: n as u64,
            distinct: last_seen.len() as u64,
            gaps,
            first_times,
            last_times_rev,
        }
    }

    /// Histogram of paper-convention reuse *times* (`rt = gap + 1`),
    /// materialized on demand.
    pub fn reuse_time_histogram(&self) -> DenseHistogram {
        let mut out = DenseHistogram::new();
        for (gap, &count) in self.gaps.buckets().iter().enumerate() {
            if count > 0 {
                out.add(gap + 1, count);
            }
        }
        out
    }

    /// Number of reuse pairs (`n − m`).
    pub fn reuse_pairs(&self) -> u64 {
        self.gaps.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace() {
        let r = ReuseProfile::from_trace(&[]);
        assert_eq!(r.accesses, 0);
        assert_eq!(r.distinct, 0);
        assert_eq!(r.reuse_pairs(), 0);
    }

    #[test]
    fn paper_figure3_trace() {
        // a a x b b y a a x b b y
        let trace = [0u64, 0, 1, 2, 2, 3, 0, 0, 1, 2, 2, 3];
        let r = ReuseProfile::from_trace(&trace);
        assert_eq!(r.accesses, 12);
        assert_eq!(r.distinct, 4);
        assert_eq!(r.reuse_pairs(), 8);
        // Paper figure: reuse distances (times minus one, i.e. gaps)
        // are 1 (x4) and... gaps: a@0->1 (1), b@3->4 (1), a@1->6 (5),
        // a@6->7 (1), x@2->8 (6), b@4->9 (5), b@9->10 (1), y@5->11 (6).
        assert_eq!(r.gaps.count(1), 4);
        assert_eq!(r.gaps.count(5), 2);
        assert_eq!(r.gaps.count(6), 2);
        // Reuse *times* are gaps + 1.
        let rt = r.reuse_time_histogram();
        assert_eq!(rt.count(2), 4);
        assert_eq!(rt.count(6), 2);
        assert_eq!(rt.count(7), 2);
        // First access times (1-indexed): a:1, x:3, b:4, y:6.
        assert_eq!(r.first_times.count(1), 1);
        assert_eq!(r.first_times.count(3), 1);
        assert_eq!(r.first_times.count(4), 1);
        assert_eq!(r.first_times.count(6), 1);
        // Last accesses (1-indexed): a:8, x:9, b:11, y:12 →
        // reversed: 5, 4, 2, 1.
        assert_eq!(r.last_times_rev.count(5), 1);
        assert_eq!(r.last_times_rev.count(4), 1);
        assert_eq!(r.last_times_rev.count(2), 1);
        assert_eq!(r.last_times_rev.count(1), 1);
    }

    #[test]
    fn identity_total_is_m_times_n_plus_1() {
        // Per-datum: Σgaps + f + l̄ = n + 1, so the grand total must be
        // m(n+1) — the identity that makes fp(0) = 0.
        let trace: Vec<u64> = (0..500).map(|i| (i * 13 + i / 7) % 37).collect();
        let r = ReuseProfile::from_trace(&trace);
        let total: u64 = r
            .gaps
            .buckets()
            .iter()
            .enumerate()
            .map(|(v, c)| v as u64 * c)
            .sum::<u64>()
            + r.first_times
                .buckets()
                .iter()
                .enumerate()
                .map(|(v, c)| v as u64 * c)
                .sum::<u64>()
            + r.last_times_rev
                .buckets()
                .iter()
                .enumerate()
                .map(|(v, c)| v as u64 * c)
                .sum::<u64>();
        assert_eq!(total, r.distinct * (r.accesses + 1));
    }

    #[test]
    fn single_access_per_datum_has_no_reuse() {
        let r = ReuseProfile::from_trace(&[10, 20, 30]);
        assert_eq!(r.reuse_pairs(), 0);
        assert_eq!(r.distinct, 3);
        assert_eq!(r.first_times.count(1), 1);
        assert_eq!(r.first_times.count(2), 1);
        assert_eq!(r.first_times.count(3), 1);
    }
}
