//! Statistical associativity modeling (Section VIII, via Smith 1976).
//!
//! The theory models a fully-associative LRU cache, but "the HOTL theory
//! can derive the reuse distance, which can be used to statistically
//! estimate the effect of associativity \[Smith\]". Both halves live here:
//!
//! 1. **Reuse-distance distribution from the MRC.** An access misses a
//!    fully-associative LRU cache of size `c` iff its stack distance
//!    exceeds `c`, so the CCDF of the stack distance *is* the miss-ratio
//!    curve: `P(d > c) = mr(c)`, and `P(d = c) = mr(c−1) − mr(c)`.
//!
//! 2. **Smith's set-associative estimate.** In a cache with `s` sets of
//!    `a` ways, an access at stack distance `d` hits iff fewer than `a`
//!    of its `d − 1` intervening distinct blocks land in its own set.
//!    With uniform set mapping the conflict count is
//!    `Binomial(d − 1, 1/s)`, so
//!    `P(hit | d) = P(Binomial(d − 1, 1/s) ≤ a − 1)`, and the
//!    set-associative miss ratio is the distance-weighted complement
//!    plus the compulsory tail.
//!
//! The `assoc_check` ablation and the tests below validate the estimate
//! against the exact set-associative simulator.

use crate::metrics::MissRatioCurve;

/// The stack-distance probability mass `P(d = c)` for `c ∈ 1..=max`,
/// derived from a (fully-associative) miss-ratio curve; index 0 holds
/// `P(d > max)` — the tail mass including compulsory misses.
///
/// The first returned element is the tail, the rest the per-distance
/// masses; they sum to `mr(0) = 1`.
pub fn distance_distribution(mrc: &MissRatioCurve) -> (f64, Vec<f64>) {
    let max = mrc.max_blocks();
    let mut mass = Vec::with_capacity(max);
    for c in 1..=max {
        mass.push((mrc.at(c - 1) - mrc.at(c)).max(0.0));
    }
    (mrc.at(max), mass)
}

/// Smith's estimate of the miss ratio of an `s`-set, `a`-way LRU cache,
/// given the fully-associative miss-ratio curve of the same program.
///
/// # Panics
/// Panics if `sets` or `ways` is zero.
pub fn smith_set_assoc_miss_ratio(mrc: &MissRatioCurve, sets: usize, ways: usize) -> f64 {
    assert!(sets > 0, "need at least one set");
    assert!(ways > 0, "need at least one way");
    let (tail, mass) = distance_distribution(mrc);
    if sets == 1 {
        // Degenerates to fully associative at capacity = ways.
        return mrc.at(ways);
    }
    let p = 1.0 / sets as f64;
    let q = 1.0 - p;
    // Walk distances d = 1, 2, …; maintain the Binomial(d−1, p) pmf over
    // conflict counts 0..ways (everything ≥ ways is an assured miss).
    // pmf[k] = P(exactly k conflicts among the d−1 intervening blocks).
    let mut pmf = vec![0.0f64; ways + 1];
    pmf[0] = 1.0; // d = 1: zero intervening blocks
    let mut overflow = 0.0f64; // P(conflicts ≥ ways)
    let mut miss = tail; // distances beyond the curve: assume miss
    for (d_minus_1, &m) in mass.iter().enumerate() {
        let _ = d_minus_1;
        // P(hit | d) = P(conflicts ≤ ways − 1) = 1 − overflow − pmf[ways].
        let hit = 1.0 - overflow - pmf[ways];
        miss += m * (1.0 - hit.clamp(0.0, 1.0));
        // Advance the binomial: one more intervening block.
        let top = pmf[ways];
        for k in (1..=ways).rev() {
            pmf[k] = pmf[k] * q + pmf[k - 1] * p;
        }
        pmf[0] *= q;
        overflow += top * p;
    }
    miss.clamp(0.0, 1.0)
}

/// Convenience: Smith estimate for a cache of (at least) `capacity`
/// blocks at the given associativity, rounding the set count up (the
/// same convention as `cps_cachesim::SetAssocCache::with_capacity`).
pub fn smith_for_capacity(mrc: &MissRatioCurve, capacity: usize, ways: usize) -> f64 {
    let sets = capacity.div_ceil(ways).max(1);
    smith_set_assoc_miss_ratio(mrc, sets, ways)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::Footprint;
    use cps_trace::WorkloadSpec;

    fn mrc_of(spec: WorkloadSpec, len: usize, max_blocks: usize) -> MissRatioCurve {
        let t = spec.generate(len, 11);
        MissRatioCurve::from_footprint(&Footprint::from_trace(&t.blocks), max_blocks)
    }

    #[test]
    fn distance_distribution_sums_to_one() {
        let mrc = mrc_of(
            WorkloadSpec::Zipfian {
                region: 100,
                alpha: 0.8,
            },
            20_000,
            128,
        );
        let (tail, mass) = distance_distribution(&mrc);
        let total: f64 = tail + mass.iter().sum::<f64>();
        assert!((total - mrc.at(0)).abs() < 1e-9, "total {total}");
        assert!(mass.iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn single_set_degenerates_to_fully_associative() {
        let mrc = mrc_of(
            WorkloadSpec::SequentialLoop { working_set: 50 },
            10_000,
            128,
        );
        for ways in [4usize, 16, 64] {
            let smith = smith_set_assoc_miss_ratio(&mrc, 1, ways);
            assert!(
                (smith - mrc.at(ways)).abs() < 1e-9,
                "ways {ways}: {smith} vs {}",
                mrc.at(ways)
            );
        }
    }

    #[test]
    fn infinite_associativity_limit() {
        // With ways = capacity (one set), Smith equals FA by the
        // degenerate rule; with very many sets of high ways the estimate
        // approaches the FA value at the same capacity.
        let mrc = mrc_of(
            WorkloadSpec::Zipfian {
                region: 300,
                alpha: 0.7,
            },
            40_000,
            512,
        );
        let fa = mrc.at(256);
        let smith16 = smith_for_capacity(&mrc, 256, 16);
        assert!(
            (smith16 - fa).abs() < 0.05,
            "16-way estimate {smith16} vs FA {fa}"
        );
        // Lower associativity can only miss more (conflicts).
        let smith2 = smith_for_capacity(&mrc, 256, 2);
        assert!(smith2 >= smith16 - 1e-9);
    }

    #[test]
    fn estimate_tracks_simulator() {
        // The headline validation: Smith estimate vs the exact
        // set-associative simulator, at several associativities.
        let spec = WorkloadSpec::Mixture {
            parts: vec![
                (0.8, WorkloadSpec::SequentialLoop { working_set: 60 }),
                (
                    0.2,
                    WorkloadSpec::Zipfian {
                        region: 400,
                        alpha: 0.6,
                    },
                ),
            ],
        };
        let t = spec.generate(60_000, 5);
        let mrc = MissRatioCurve::from_footprint(&Footprint::from_trace(&t.blocks), 512);
        // Smith's independence assumption over-counts conflicts for
        // strongly structured traces, so the estimate is pessimistic at
        // low associativity; tolerance reflects that known behaviour.
        for (ways, tol) in [(2usize, 0.12), (4, 0.06), (8, 0.04), (16, 0.04)] {
            let mut sim = cps_cachesim::SetAssocCache::with_capacity(256, ways);
            let measured = sim.simulate(&t.blocks).miss_ratio();
            let estimated = smith_for_capacity(&mrc, 256, ways);
            assert!(
                (measured - estimated).abs() < tol,
                "{ways}-way: estimated {estimated} vs measured {measured}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let mrc = MissRatioCurve::from_samples(vec![1.0, 0.0]);
        let _ = smith_set_assoc_miss_ratio(&mrc, 0, 1);
    }
}
