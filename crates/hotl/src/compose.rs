//! Footprint composition and the Natural Cache Partition
//! (paper Sections IV and V-A).
//!
//! When non-data-sharing programs interleave, each program's footprint is
//! *stretched* horizontally by its share of the merged access stream
//! (Eq. 9):
//!
//! ```text
//! fp(w) = Σ_i fp_i(w · s_i),    s_i = ar_i / Σ_j ar_j
//! ```
//!
//! The **natural window** `w*` of a shared cache of size `C` satisfies
//! `fp(w*) = C`; each program's expected steady-state occupancy is then
//! `c_i = fp_i(w*·s_i)` — the **Natural Cache Partition** (Figure 4). The
//! group miss ratio of the shared cache is `fp(w*+1) − C` (Eq. 10/11),
//! and under the Natural Partition Assumption each program's miss ratio
//! in the shared cache equals its solo miss ratio at `c_i`. This is the
//! reduction that makes optimal partitioning an upper bound for all
//! partition-sharing.

use crate::metrics::SoloProfile;

/// The natural cache partition of a co-run group.
#[derive(Clone, Debug)]
pub struct NaturalPartition {
    /// Steady-state occupancy of each program, in blocks (fractional).
    /// Sums to the cache size when the cache fills, or to the group's
    /// total footprint when it does not.
    pub occupancy: Vec<f64>,
    /// The natural window `w*` (merged-trace accesses), `None` when the
    /// group's total footprint fits in the cache (the cache never fills
    /// and nobody misses in steady state).
    pub window: Option<f64>,
}

/// Composition model for one co-run group.
///
/// # Examples
///
/// ```
/// use cps_hotl::{CoRunModel, SoloProfile};
/// use cps_trace::WorkloadSpec;
///
/// let mk = |name: &str, ws: u64, seed: u64| {
///     let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(20_000, seed);
///     SoloProfile::from_trace(name, &t.blocks, 1.0, 128)
/// };
/// let (a, b) = (mk("a", 80, 1), mk("b", 80, 2));
/// let model = CoRunModel::new(vec![&a, &b]);
/// // Two identical 80-block loops split a 100-block cache evenly...
/// let np = model.natural_partition(100.0);
/// assert!((np.occupancy[0] - np.occupancy[1]).abs() < 1e-6);
/// // ...and thrash it (neither loop fits in its 50-block share).
/// assert!(model.shared_group_miss_ratio(100.0) > 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct CoRunModel<'a> {
    members: Vec<&'a SoloProfile>,
    /// Normalized access-rate shares `s_i` (sum to 1).
    shares: Vec<f64>,
}

impl<'a> CoRunModel<'a> {
    /// Builds the model from solo profiles; shares are the normalized
    /// access rates.
    ///
    /// # Panics
    /// Panics if `members` is empty or any access rate is non-positive.
    pub fn new(members: Vec<&'a SoloProfile>) -> Self {
        assert!(!members.is_empty(), "co-run group needs members");
        let total: f64 = members.iter().map(|p| p.access_rate).sum();
        assert!(
            total > 0.0 && members.iter().all(|p| p.access_rate > 0.0),
            "access rates must be positive"
        );
        let shares = members.iter().map(|p| p.access_rate / total).collect();
        CoRunModel { members, shares }
    }

    /// The group members.
    pub fn members(&self) -> &[&'a SoloProfile] {
        &self.members
    }

    /// Normalized access-rate shares (sum to 1).
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// The composed footprint `Σ_i fp_i(w · s_i)` at merged window
    /// length `w` (Eq. 9, generalized to any group size).
    pub fn total_footprint(&self, w: f64) -> f64 {
        self.members
            .iter()
            .zip(&self.shares)
            .map(|(p, &s)| p.footprint.eval(w * s))
            .sum()
    }

    /// Total distinct data across the group.
    pub fn total_distinct(&self) -> f64 {
        self.members
            .iter()
            .map(|p| p.footprint.distinct as f64)
            .sum()
    }

    /// Upper bound of the meaningful window range: past this point every
    /// member's stretched footprint has saturated.
    fn window_limit(&self) -> f64 {
        self.members
            .iter()
            .zip(&self.shares)
            .map(|(p, &s)| p.accesses as f64 / s)
            .fold(1.0, f64::max)
    }

    /// Solves `total_footprint(w*) = cache_blocks` by bisection.
    ///
    /// Returns `None` when the group's total footprint never reaches the
    /// cache size (the cache does not fill).
    pub fn natural_window(&self, cache_blocks: f64) -> Option<f64> {
        let limit = self.window_limit();
        if self.total_footprint(limit) < cache_blocks {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, limit);
        // ~60 bisection steps: absolute error below 2^-60 · limit.
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.total_footprint(mid) < cache_blocks {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// The Natural Cache Partition for a shared cache of `cache_blocks`.
    pub fn natural_partition(&self, cache_blocks: f64) -> NaturalPartition {
        match self.natural_window(cache_blocks) {
            Some(w) => NaturalPartition {
                occupancy: self
                    .members
                    .iter()
                    .zip(&self.shares)
                    .map(|(p, &s)| p.footprint.eval(w * s))
                    .collect(),
                window: Some(w),
            },
            None => NaturalPartition {
                occupancy: self
                    .members
                    .iter()
                    .map(|p| p.footprint.distinct as f64)
                    .collect(),
                window: None,
            },
        }
    }

    /// Predicted miss ratio of each member in the shared cache:
    /// `(fp_i((w*+1)·s_i) − fp_i(w*·s_i)) / s_i`, which under NPA equals
    /// the member's solo miss ratio at its natural occupancy.
    pub fn member_shared_miss_ratios(&self, cache_blocks: f64) -> Vec<f64> {
        match self.natural_window(cache_blocks) {
            None => vec![0.0; self.members.len()],
            Some(w) => self
                .members
                .iter()
                .zip(&self.shares)
                .map(|(p, &s)| {
                    let delta = p.footprint.eval((w + 1.0) * s) - p.footprint.eval(w * s);
                    (delta / s).clamp(0.0, 1.0)
                })
                .collect(),
        }
    }

    /// Predicted group miss ratio of the shared cache (Eq. 11):
    /// `fp(w*+1) − C`, i.e. the access-share-weighted mean of the member
    /// miss ratios.
    pub fn shared_group_miss_ratio(&self, cache_blocks: f64) -> f64 {
        match self.natural_window(cache_blocks) {
            None => 0.0,
            Some(w) => (self.total_footprint(w + 1.0) - cache_blocks).clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    fn profile(name: &str, ws: u64, rate: f64, len: usize) -> SoloProfile {
        let trace = WorkloadSpec::SequentialLoop { working_set: ws }.generate(len, 1);
        SoloProfile::from_trace(name, &trace.blocks, rate, 256)
    }

    #[test]
    fn identical_programs_split_evenly() {
        let a = profile("a", 100, 1.0, 20_000);
        let b = profile("b", 100, 1.0, 20_000);
        let model = CoRunModel::new(vec![&a, &b]);
        let np = model.natural_partition(120.0);
        assert!(np.window.is_some());
        assert!((np.occupancy[0] - np.occupancy[1]).abs() < 1e-6);
        assert!((np.occupancy.iter().sum::<f64>() - 120.0).abs() < 1e-6);
    }

    #[test]
    fn higher_rate_gets_more_cache_under_pressure() {
        // Two identical 100-block loops, one running 3x faster: in any
        // window the fast one touches 3x the blocks until it saturates.
        let a = profile("fast", 100, 3.0, 30_000);
        let b = profile("slow", 100, 1.0, 30_000);
        let model = CoRunModel::new(vec![&a, &b]);
        let np = model.natural_partition(80.0);
        assert!(
            np.occupancy[0] > 2.5 * np.occupancy[1],
            "occupancies {:?}",
            np.occupancy
        );
    }

    #[test]
    fn cache_bigger_than_total_footprint_never_fills() {
        let a = profile("a", 20, 1.0, 5_000);
        let b = profile("b", 30, 1.0, 5_000);
        let model = CoRunModel::new(vec![&a, &b]);
        assert_eq!(model.natural_window(100.0), None);
        let np = model.natural_partition(100.0);
        assert_eq!(np.window, None);
        assert_eq!(np.occupancy, vec![20.0, 30.0]);
        assert_eq!(model.shared_group_miss_ratio(100.0), 0.0);
        assert_eq!(model.member_shared_miss_ratios(100.0), vec![0.0, 0.0]);
    }

    #[test]
    fn group_miss_ratio_is_share_weighted_member_mean() {
        let a = profile("a", 150, 2.0, 30_000);
        let b = profile("b", 60, 1.0, 30_000);
        let model = CoRunModel::new(vec![&a, &b]);
        let cache = 120.0;
        let members = model.member_shared_miss_ratios(cache);
        let weighted: f64 = members.iter().zip(model.shares()).map(|(m, s)| m * s).sum();
        let group = model.shared_group_miss_ratio(cache);
        assert!(
            (weighted - group).abs() < 1e-6,
            "weighted {weighted} vs group {group}"
        );
    }

    #[test]
    fn natural_window_solves_fixed_point() {
        let a = profile("a", 200, 1.0, 40_000);
        let b = profile("b", 120, 1.5, 40_000);
        let model = CoRunModel::new(vec![&a, &b]);
        let cache = 180.0;
        let w = model.natural_window(cache).expect("cache fills");
        assert!(
            (model.total_footprint(w) - cache).abs() < 1e-3,
            "fp(w*) = {} should equal {cache}",
            model.total_footprint(w)
        );
    }

    #[test]
    fn thrashing_group_has_high_miss_ratio() {
        // Two 200-block loops sharing 100 blocks: everyone misses.
        let a = profile("a", 200, 1.0, 40_000);
        let b = profile("b", 200, 1.0, 40_000);
        let model = CoRunModel::new(vec![&a, &b]);
        let group = model.shared_group_miss_ratio(100.0);
        assert!(group > 0.9, "group mr {group}");
    }

    #[test]
    #[should_panic(expected = "needs members")]
    fn empty_group_panics() {
        let _ = CoRunModel::new(vec![]);
    }

    #[test]
    fn singleton_group_reduces_to_solo() {
        let a = profile("a", 100, 1.0, 30_000);
        let model = CoRunModel::new(vec![&a]);
        for cache in [25.0, 50.0, 99.0] {
            let shared = model.member_shared_miss_ratios(cache)[0];
            let solo = a.footprint.miss_ratio(cache);
            assert!(
                (shared - solo).abs() < 1e-6,
                "cache {cache}: shared {shared} vs solo {solo}"
            );
        }
    }
}
