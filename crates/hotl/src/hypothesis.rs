//! Direct test of the reuse-window hypothesis
//! (Section VIII, "HOTL Theory Correctness").
//!
//! "The HOTL theory assumes the reuse window hypothesis, which means
//! that the footprint distribution in reuse windows is the same as the
//! footprint distribution in all windows. When the hypothesis holds, the
//! HOTL prediction is accurate for fully associative LRU cache."
//!
//! The paper inherits the hypothesis' validation from Xiang et al.; this
//! module lets the repo check it *directly* on any trace: sample reuse
//! windows (windows bracketed by a reuse pair), measure their working-set
//! sizes, and compare per window length against the all-windows average
//! footprint `fp(w)`. Where the two diverge, the mr(c) derivation is
//! biased — which is exactly what the NPA validation experiments observe
//! on deliberately phased workloads.

use crate::footprint::Footprint;
use cps_trace::{Block, Trace};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// One window-length bucket of the comparison.
#[derive(Clone, Copy, Debug)]
pub struct HypothesisBucket {
    /// Window length (the reuse time, paper convention: gap + 1).
    pub window: usize,
    /// Number of reuse windows of this length in the trace.
    pub count: u64,
    /// Number of them actually measured (sampled).
    pub sampled: usize,
    /// Mean WSS over the sampled reuse windows.
    pub reuse_window_wss: f64,
    /// The all-windows average footprint `fp(window)`.
    pub all_window_fp: f64,
}

impl HypothesisBucket {
    /// Relative divergence between reuse-window and all-window
    /// footprints (positive = reuse windows are denser).
    pub fn relative_error(&self) -> f64 {
        if self.all_window_fp <= 0.0 {
            0.0
        } else {
            (self.reuse_window_wss - self.all_window_fp) / self.all_window_fp
        }
    }
}

/// Result of a hypothesis check.
#[derive(Clone, Debug)]
pub struct HypothesisReport {
    /// Buckets in ascending window length.
    pub buckets: Vec<HypothesisBucket>,
}

impl HypothesisReport {
    /// Reuse-pair-weighted mean absolute relative error — the headline
    /// "does the hypothesis hold" number.
    pub fn weighted_mean_abs_error(&self) -> f64 {
        let total: u64 = self.buckets.iter().map(|b| b.count).sum();
        if total == 0 {
            return 0.0;
        }
        self.buckets
            .iter()
            .map(|b| b.count as f64 * b.relative_error().abs())
            .sum::<f64>()
            / total as f64
    }

    /// Largest absolute relative error across buckets.
    ///
    /// Note: very short reuse windows are *systematically* sparser than
    /// average windows (their two endpoints are the same datum, so WSS
    /// ≤ w − 1 while fp(w) ≈ w for small w) — an O(1/w) boundary bias,
    /// not a hypothesis violation. Use
    /// [`HypothesisReport::max_abs_error_above`] to exclude it.
    pub fn max_abs_error(&self) -> f64 {
        self.max_abs_error_above(0)
    }

    /// Largest absolute relative error over buckets with window length
    /// at least `min_window`.
    pub fn max_abs_error_above(&self, min_window: usize) -> f64 {
        self.buckets
            .iter()
            .filter(|b| b.window >= min_window)
            .map(|b| b.relative_error().abs())
            .fold(0.0, f64::max)
    }
}

/// Checks the reuse-window hypothesis on a trace.
///
/// Reuse windows are grouped by length into log-spaced buckets (powers
/// of `2^(1/2)`); at most `samples_per_bucket` windows per bucket are
/// measured (WSS by direct scan), with deterministic sampling from
/// `seed`. Cost is `O(samples · window_length)` for the scans plus one
/// footprint pass.
pub fn check_reuse_window_hypothesis(
    trace: &Trace,
    samples_per_bucket: usize,
    seed: u64,
) -> HypothesisReport {
    assert!(
        samples_per_bucket > 0,
        "need at least one sample per bucket"
    );
    let fp = Footprint::from_trace(&trace.blocks);
    // Collect reuse pairs as (start, window_length).
    let mut last_seen: HashMap<Block, usize> = HashMap::new();
    let mut buckets: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
    let mut counts: HashMap<usize, u64> = HashMap::new();
    for (t, &addr) in trace.blocks.iter().enumerate() {
        if let Some(p) = last_seen.insert(addr, t) {
            let window = t - p + 1; // paper convention: inclusive length
            let bucket = bucket_of(window);
            *counts.entry(bucket).or_insert(0) += 1;
            buckets.entry(bucket).or_default().push((p, window));
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut keys: Vec<usize> = buckets.keys().copied().collect();
    keys.sort_unstable();
    for bucket in keys {
        let pairs = buckets.get_mut(&bucket).expect("bucket exists");
        pairs.shuffle(&mut rng);
        let take = pairs.len().min(samples_per_bucket);
        let mut wss_sum = 0.0;
        let mut fp_sum = 0.0;
        for &(start, window) in pairs.iter().take(take) {
            wss_sum += trace.window_wss(start, window) as f64;
            fp_sum += fp.at(window);
        }
        out.push(HypothesisBucket {
            window: bucket,
            count: counts[&bucket],
            sampled: take,
            reuse_window_wss: wss_sum / take as f64,
            all_window_fp: fp_sum / take as f64,
        });
    }
    HypothesisReport { buckets: out }
}

/// Log-spaced bucket representative for a window length (√2 spacing).
fn bucket_of(window: usize) -> usize {
    if window <= 4 {
        return window;
    }
    // Round down to the nearest power of √2.
    let lg2 = (window as f64).log2();
    let step = (lg2 * 2.0).floor() / 2.0;
    (2f64.powf(step).round() as usize).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    #[test]
    fn bucketing_is_monotone_and_coarse() {
        let mut prev = 0;
        for w in 1..10_000 {
            let b = bucket_of(w);
            assert!(b <= w, "bucket {b} above window {w}");
            assert!(b >= prev.min(w), "buckets must not regress");
            prev = prev.max(b);
        }
    }

    #[test]
    fn hypothesis_holds_for_stationary_random_access() {
        // Uniform random access: every window of a given length looks
        // alike, so reuse windows are typical windows.
        let trace = WorkloadSpec::Zipfian {
            region: 150,
            alpha: 0.5,
        }
        .generate(60_000, 3);
        let report = check_reuse_window_hypothesis(&trace, 40, 1);
        assert!(!report.buckets.is_empty());
        let err = report.weighted_mean_abs_error();
        assert!(err < 0.1, "stationary workload should satisfy it: {err}");
    }

    #[test]
    fn hypothesis_holds_for_cyclic_loop() {
        let trace = WorkloadSpec::SequentialLoop { working_set: 64 }.generate(40_000, 1);
        let report = check_reuse_window_hypothesis(&trace, 30, 2);
        // A loop's reuse windows all have length ws+… and exactly ws
        // distinct blocks; fp agrees.
        assert!(
            report.weighted_mean_abs_error() < 0.05,
            "err {}",
            report.weighted_mean_abs_error()
        );
    }

    #[test]
    fn hypothesis_degrades_under_phases() {
        // A phased program: reuse windows concentrate inside phases
        // (dense), while long all-windows straddle both phases. The
        // divergence should be visibly larger than the stationary case.
        let phased = WorkloadSpec::Phased {
            phases: vec![
                (WorkloadSpec::SequentialLoop { working_set: 10 }, 3_000),
                (WorkloadSpec::UniformRandom { region: 500 }, 3_000),
            ],
        }
        .generate(60_000, 4);
        let stationary = WorkloadSpec::UniformRandom { region: 255 }.generate(60_000, 5);
        let rp = check_reuse_window_hypothesis(&phased, 30, 6);
        let rs = check_reuse_window_hypothesis(&stationary, 30, 6);
        // Exclude the short-window boundary bias (see max_abs_error
        // docs) so the comparison isolates the phase effect.
        let (ep, es) = (rp.max_abs_error_above(64), rs.max_abs_error_above(64));
        assert!(
            ep > 2.0 * es,
            "phased max err {ep} should exceed stationary {es}"
        );
    }

    #[test]
    fn report_handles_tiny_traces() {
        let trace = Trace::new(vec![1, 1]);
        let report = check_reuse_window_hypothesis(&trace, 5, 0);
        assert_eq!(report.buckets.len(), 1);
        assert_eq!(report.buckets[0].window, 2);
        assert_eq!(report.buckets[0].count, 1);
        // A distance-1 reuse window contains exactly 1 distinct datum.
        assert!((report.buckets[0].reuse_window_wss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_reuse_no_buckets() {
        let trace = Trace::new(vec![1, 2, 3, 4]);
        let report = check_reuse_window_hypothesis(&trace, 5, 0);
        assert!(report.buckets.is_empty());
        assert_eq!(report.weighted_mean_abs_error(), 0.0);
        assert_eq!(report.max_abs_error(), 0.0);
    }
}
