//! Property-based tests for the locality theory.

use cps_hotl::{CoRunModel, Footprint, MissRatioCurve, ReuseProfile, SoloProfile};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..30, 1..400)
}

proptest! {
    #[test]
    fn footprint_identities(trace in trace_strategy()) {
        let fp = Footprint::from_trace(&trace);
        let n = trace.len();
        let m = {
            let mut s: Vec<u64> = trace.clone();
            s.sort_unstable();
            s.dedup();
            s.len() as f64
        };
        prop_assert!(fp.at(0).abs() < 1e-9, "fp(0) = {}", fp.at(0));
        prop_assert!((fp.at(1) - 1.0).abs() < 1e-9, "fp(1) = {}", fp.at(1));
        prop_assert!((fp.at(n) - m).abs() < 1e-6, "fp(n) = {} vs m = {m}", fp.at(n));
        prop_assert!(fp.curve().is_non_decreasing());
        // Growth is at most one block per access.
        for w in 0..n {
            prop_assert!(fp.at(w + 1) - fp.at(w) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn footprint_matches_bruteforce_spot_checks(trace in prop::collection::vec(0u64..12, 1..80), w in 0usize..80) {
        let w = w.min(trace.len());
        let fp = Footprint::from_trace(&trace);
        let oracle = Footprint::brute_force(&trace, w);
        prop_assert!((fp.at(w) - oracle).abs() < 1e-9, "fp({w}) = {} vs {oracle}", fp.at(w));
    }

    #[test]
    fn miss_ratio_within_bounds_everywhere(trace in trace_strategy()) {
        let fp = Footprint::from_trace(&trace);
        for c in 0..40 {
            let mr = fp.miss_ratio(c as f64);
            prop_assert!((0.0..=1.0).contains(&mr), "mr({c}) = {mr}");
        }
    }

    #[test]
    fn fill_time_round_trips(trace in trace_strategy(), q in 0.0f64..1.0) {
        let fp = Footprint::from_trace(&trace);
        let m = fp.at(trace.len());
        let target = q * m;
        if let Some(w) = fp.fill_time(target) {
            prop_assert!((fp.eval(w) - target).abs() < 1e-6);
        } else {
            prop_assert!(target > m);
        }
    }

    #[test]
    fn reuse_profile_identity(trace in trace_strategy()) {
        // Per-datum identity: Σ gaps + first + reversed-last = n + 1,
        // so totals must equal m(n + 1).
        let r = ReuseProfile::from_trace(&trace);
        let weighted = |h: &cps_dstruct::DenseHistogram| -> u64 {
            h.buckets().iter().enumerate().map(|(v, c)| v as u64 * c).sum()
        };
        let total = weighted(&r.gaps) + weighted(&r.first_times) + weighted(&r.last_times_rev);
        prop_assert_eq!(total, r.distinct * (r.accesses + 1));
        prop_assert_eq!(r.gaps.total(), r.accesses - r.distinct);
    }

    #[test]
    fn sampled_mrc_is_valid_curve(trace in prop::collection::vec(0u64..50, 50..400), burst in 10usize..60, ratio in 1usize..6) {
        let cfg = cps_hotl::BurstConfig::with_ratio(burst, ratio);
        let fp = cps_hotl::sample_footprint(&trace, cfg);
        prop_assert!(fp.curve().is_non_decreasing());
        prop_assert!(fp.at(0).abs() < 1e-9);
        let mrc = MissRatioCurve::from_footprint(&fp, 64);
        prop_assert!(mrc.to_curve().is_non_increasing());
        prop_assert!(mrc.samples().iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn composition_weighted_identity(
        wsa in 5u64..40, wsb in 5u64..40,
        ra in 1u32..5, rb in 1u32..5,
        cache in 10usize..60,
    ) {
        // Group miss ratio == share-weighted member miss ratios, for any
        // pair of loop programs and cache size.
        let ta: Vec<u64> = (0..4000).map(|i| i % wsa).collect();
        let tb: Vec<u64> = (0..4000).map(|i| i % wsb).collect();
        let a = SoloProfile::from_trace("a", &ta, ra as f64, 64);
        let b = SoloProfile::from_trace("b", &tb, rb as f64, 64);
        let model = CoRunModel::new(vec![&a, &b]);
        let members = model.member_shared_miss_ratios(cache as f64);
        let weighted: f64 = members.iter().zip(model.shares()).map(|(m, s)| m * s).sum();
        let group = model.shared_group_miss_ratio(cache as f64);
        prop_assert!((weighted - group).abs() < 1e-6, "weighted {weighted} vs group {group}");
    }

    #[test]
    fn natural_partition_sums_to_cache_or_footprint(
        wsa in 5u64..40, wsb in 5u64..40, cache in 10usize..100,
    ) {
        let ta: Vec<u64> = (0..4000).map(|i| i % wsa).collect();
        let tb: Vec<u64> = (0..4000).map(|i| (i * 7) % wsb).collect();
        let a = SoloProfile::from_trace("a", &ta, 1.0, 128);
        let b = SoloProfile::from_trace("b", &tb, 1.0, 128);
        let model = CoRunModel::new(vec![&a, &b]);
        let np = model.natural_partition(cache as f64);
        let total: f64 = np.occupancy.iter().sum();
        match np.window {
            Some(_) => prop_assert!((total - cache as f64).abs() < 1e-3,
                "filled cache: occupancies sum to {total} vs {cache}"),
            None => prop_assert!(total <= cache as f64 + 1e-6,
                "unfilled cache: {total} > {cache}"),
        }
        for occ in &np.occupancy {
            prop_assert!(*occ >= -1e-9);
        }
    }

    #[test]
    fn persist_reader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        // Arbitrary input must produce Err, never a panic or a bogus Ok
        // (an Ok would require a valid magic + version + structure).
        if let Ok(p) = cps_hotl::persist::read_profile(&mut bytes.as_slice()) {
            // Astronomically unlikely, but if it parses it must be
            // structurally sound.
            prop_assert!(p.mrc.samples().iter().all(|r| (0.0..=1.0).contains(r)));
        }
    }

    #[test]
    fn persist_reader_never_panics_on_corrupted_valid_file(
        trace in prop::collection::vec(0u64..20, 10..100),
        flip in 0usize..200,
        value in any::<u8>(),
    ) {
        let p = SoloProfile::from_trace("c", &trace, 1.0, 32);
        let mut buf = Vec::new();
        cps_hotl::persist::write_profile(&mut buf, &p).unwrap();
        let idx = flip % buf.len();
        buf[idx] = value;
        // Single-byte corruption anywhere must yield Err or a
        // structurally valid Ok — never a panic (the reader validates
        // curves before handing them to the panicking constructors).
        if let Ok(q) = cps_hotl::persist::read_profile(&mut buf.as_slice()) {
            prop_assert!(q.mrc.samples().iter().all(|r| (0.0..=1.0).contains(r)));
            prop_assert!(q.footprint.curve().is_non_decreasing());
        }
    }

    #[test]
    fn windowed_snapshot_equals_batch_profile_per_tenant(
        blocks_a in prop::collection::vec(0u64..25, 2..300),
        blocks_b in prop::collection::vec(0u64..40, 2..300),
        rate_a in 1u32..5,
        rate_b in 1u32..5,
        cut_frac in 0.1f64..0.9,
    ) {
        // An interleaved two-tenant stream demultiplexed into per-tenant
        // WindowedProfilers must reproduce, tenant by tenant, the batch
        // ReuseProfile of that tenant's subsequence — both inside the
        // first window and inside the window after a boundary.
        use cps_hotl::windowed::{ProfilerMode, WindowedProfiler};
        use cps_trace::interleave::interleave_proportional;
        use cps_trace::Trace;

        let ta = Trace::new(blocks_a);
        let tb = Trace::new(blocks_b);
        let total = ta.len() + tb.len();
        let co = interleave_proportional(&[&ta, &tb], &[rate_a as f64, rate_b as f64], total);
        let cut = ((co.len() as f64 * cut_frac) as usize).max(1).min(co.len());

        let mut profs = [
            WindowedProfiler::new(32, ProfilerMode::Windowed { decay: 0.5 }),
            WindowedProfiler::new(32, ProfilerMode::Windowed { decay: 0.5 }),
        ];
        let mut subseq: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        let assert_snapshots_match = |profs: &[WindowedProfiler; 2], subseq: &[Vec<u64>; 2], at: &str|
            -> Result<(), TestCaseError> {
            for t in 0..2 {
                let snap = profs[t].window_reuse();
                let batch = ReuseProfile::from_trace(&subseq[t]);
                prop_assert_eq!(snap.accesses, batch.accesses, "{} tenant {}", at, t);
                prop_assert_eq!(snap.distinct, batch.distinct, "{} tenant {}", at, t);
                prop_assert_eq!(snap.gaps.buckets(), batch.gaps.buckets(), "{} tenant {}", at, t);
                prop_assert_eq!(
                    snap.first_times.buckets(), batch.first_times.buckets(),
                    "{} tenant {}", at, t
                );
                prop_assert_eq!(
                    snap.last_times_rev.buckets(), batch.last_times_rev.buckets(),
                    "{} tenant {}", at, t
                );
            }
            Ok(())
        };

        for acc in &co.accesses[..cut] {
            profs[acc.program as usize].observe(acc.block);
            subseq[acc.program as usize].push(acc.block);
        }
        assert_snapshots_match(&profs, &subseq, "window 1")?;

        // Cross a window boundary: windowed mode starts a fresh exact window.
        for p in &mut profs {
            p.end_window();
        }
        subseq = [Vec::new(), Vec::new()];
        for acc in &co.accesses[cut..] {
            profs[acc.program as usize].observe(acc.block);
            subseq[acc.program as usize].push(acc.block);
        }
        assert_snapshots_match(&profs, &subseq, "window 2")?;
    }

    #[test]
    fn persistence_round_trip(trace in prop::collection::vec(0u64..40, 10..300), rate in 0.1f64..4.0) {
        let p = SoloProfile::from_trace("prop", &trace, rate, 48);
        let mut buf = Vec::new();
        cps_hotl::persist::write_profile(&mut buf, &p).unwrap();
        let q = cps_hotl::persist::read_profile(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(q.accesses, p.accesses);
        prop_assert_eq!(q.mrc.samples(), p.mrc.samples());
        prop_assert_eq!(q.footprint.curve().samples(), p.footprint.curve().samples());
    }
}
