//! Property-based tests for the workload generators and interleaver.

use cps_trace::{interleave_proportional, Trace, WorkloadSpec};
use proptest::prelude::*;

/// Strategy over leaf workload specs with small parameters.
fn leaf_workload() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        (1u64..100).prop_map(|working_set| WorkloadSpec::SequentialLoop { working_set }),
        (1u64..100).prop_map(|region| WorkloadSpec::UniformRandom { region }),
        ((1u64..100), (0.0f64..2.0))
            .prop_map(|(region, alpha)| WorkloadSpec::Zipfian { region, alpha }),
        (1u64..100).prop_map(|region| WorkloadSpec::PointerChase { region }),
        ((1u64..12), (1u64..12)).prop_map(|(rows, cols)| WorkloadSpec::Stencil { rows, cols }),
        ((2u64..100), (1u64..50), (1u64..200)).prop_map(|(region, window, dwell)| {
            WorkloadSpec::WorkingSetWalk {
                region,
                window,
                dwell,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn generation_is_deterministic_and_sized(
        spec in leaf_workload(),
        len in 1usize..500,
        seed in 0u64..1000,
    ) {
        let a = spec.generate(len, seed);
        let b = spec.generate(len, seed);
        prop_assert_eq!(&a, &b, "same seed, same trace");
        prop_assert_eq!(a.len(), len);
    }

    #[test]
    fn footprint_hint_upper_bounds_distinct(
        spec in leaf_workload(),
        len in 1usize..500,
        seed in 0u64..100,
    ) {
        let t = spec.generate(len, seed);
        prop_assert!(
            t.distinct() as u64 <= spec.footprint_hint(),
            "{spec:?}: distinct {} > hint {}",
            t.distinct(),
            spec.footprint_hint()
        );
    }

    #[test]
    fn phased_composition_determinism(
        a in leaf_workload(),
        b in leaf_workload(),
        la in 1u64..50,
        lb in 1u64..50,
        len in 1usize..300,
    ) {
        let spec = WorkloadSpec::Phased { phases: vec![(a, la), (b, lb)] };
        prop_assert_eq!(spec.generate(len, 5), spec.generate(len, 5));
    }

    #[test]
    fn mixture_stays_in_disjoint_subspaces(
        a in leaf_workload(),
        b in leaf_workload(),
        len in 10usize..300,
    ) {
        let spec = WorkloadSpec::Mixture { parts: vec![(1.0, a), (1.0, b)] };
        let t = spec.generate(len, 9);
        // Component 0 lives below 1<<40, component 1 above.
        for &blk in t.iter() {
            let hi = blk >> 40;
            prop_assert!(hi == 0 || hi == 1, "unexpected namespace {hi}");
        }
    }

    #[test]
    fn interleave_preserves_order_and_counts(
        la in 1usize..100,
        lb in 1usize..100,
        ra in 1u32..10,
        rb in 1u32..10,
    ) {
        let a = Trace::new((0..la as u64).collect());
        let b = Trace::new((1000..1000 + lb as u64).collect());
        let co = interleave_proportional(&[&a, &b], &[ra as f64, rb as f64], la + lb);
        prop_assert_eq!(co.len(), la + lb, "everything gets emitted");
        // Per-program subsequences preserve original order.
        let sub_a: Vec<u64> = co.accesses.iter()
            .filter(|x| x.program == 0)
            .map(|x| x.block & 0xFFFF_FFFF)
            .collect();
        prop_assert_eq!(sub_a, a.blocks.clone());
        let sub_b: Vec<u64> = co.accesses.iter()
            .filter(|x| x.program == 1)
            .map(|x| x.block & 0xFFFF_FFFF)
            .collect();
        prop_assert_eq!(sub_b, b.blocks.clone());
    }

    #[test]
    fn interleave_rate_proportionality(
        ra in 1u32..8,
        rb in 1u32..8,
        prefix in 10usize..200,
    ) {
        // With long enough traces, every prefix is rate-proportional to
        // within one access per program.
        let a = Trace::new(vec![1; 4000]);
        let b = Trace::new(vec![2; 4000]);
        let rates = [ra as f64, rb as f64];
        let co = interleave_proportional(&[&a, &b], &rates, prefix);
        let count_a = co.accesses.iter().filter(|x| x.program == 0).count() as f64;
        let expect_a = prefix as f64 * rates[0] / (rates[0] + rates[1]);
        prop_assert!(
            (count_a - expect_a).abs() <= 1.0 + 1e-9,
            "prefix {prefix}: {count_a} vs {expect_a}"
        );
    }
}
