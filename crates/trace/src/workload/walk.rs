//! Drifting-working-set workload.
//!
//! A window of `window` blocks sits inside a larger `region`; the stream
//! draws uniform accesses from the window for `dwell` accesses, then
//! slides the window forward by half its size (wrapping around the
//! region). The short-term working set is `window`, the long-term
//! footprint is `region`, giving a soft knee between the two — the shape
//! of iterative solvers whose active block drifts (`dealII`-like).

use super::AccessStream;
use crate::model::Block;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Stream for [`super::WorkloadSpec::WorkingSetWalk`].
#[derive(Clone, Debug)]
pub struct WalkStream {
    region: u64,
    window: u64,
    dwell: u64,
    base: u64,
    in_phase: u64,
    rng: ChaCha8Rng,
}

impl WalkStream {
    /// Creates the walk; `window` is clamped to `region`, all parameters
    /// to at least 1.
    pub fn new(region: u64, window: u64, dwell: u64, rng: ChaCha8Rng) -> Self {
        let region = region.max(1);
        WalkStream {
            region,
            window: window.clamp(1, region),
            dwell: dwell.max(1),
            base: 0,
            in_phase: 0,
            rng,
        }
    }
}

impl AccessStream for WalkStream {
    fn next_block(&mut self) -> Block {
        if self.in_phase == self.dwell {
            self.in_phase = 0;
            self.base = (self.base + (self.window / 2).max(1)) % self.region;
        }
        self.in_phase += 1;
        let off = self.rng.gen_range(0..self.window);
        (self.base + off) % self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dwell_confines_accesses_to_window() {
        let mut s = WalkStream::new(1000, 50, 200, ChaCha8Rng::seed_from_u64(5));
        for _ in 0..200 {
            let b = s.next_block();
            assert!(b < 50, "first dwell must stay in initial window, got {b}");
        }
        // After the dwell the window has moved.
        let mut seen_outside = false;
        for _ in 0..200 {
            if s.next_block() >= 50 {
                seen_outside = true;
            }
        }
        assert!(seen_outside);
    }

    #[test]
    fn long_run_covers_region() {
        let mut s = WalkStream::new(64, 16, 32, ChaCha8Rng::seed_from_u64(6));
        let mut seen = [false; 64];
        for _ in 0..64 * 64 {
            seen[s.next_block() as usize] = true;
        }
        assert!(
            seen.iter().all(|&x| x),
            "walk should eventually cover region"
        );
    }

    #[test]
    fn degenerate_parameters_clamped() {
        let mut s = WalkStream::new(0, 0, 0, ChaCha8Rng::seed_from_u64(7));
        assert_eq!(s.next_block(), 0);
    }
}
