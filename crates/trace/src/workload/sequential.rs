//! Cyclic sequential sweep — the canonical LRU-adversarial workload.
//!
//! A loop over `ws` blocks gives LRU zero hits for any capacity below
//! `ws` and (after warm-up) a perfect hit rate at or above it. Its
//! miss-ratio curve is a cliff, the textbook violation of the convexity
//! assumption behind STTW partitioning — which is exactly why the paper's
//! DP is needed.

use super::AccessStream;
use crate::model::Block;

/// Stream for [`super::WorkloadSpec::SequentialLoop`].
#[derive(Clone, Debug)]
pub struct SequentialStream {
    working_set: u64,
    next: u64,
}

impl SequentialStream {
    /// Creates a sweep over `working_set` blocks (minimum 1).
    pub fn new(working_set: u64) -> Self {
        SequentialStream {
            working_set: working_set.max(1),
            next: 0,
        }
    }
}

impl AccessStream for SequentialStream {
    fn next_block(&mut self) -> Block {
        let out = self.next;
        self.next = (self.next + 1) % self.working_set;
        out
    }
}

/// Stream for [`super::WorkloadSpec::Strided`]: blocks
/// `0, s, 2s, …` modulo `region`, wrapping to an offset lane when a
/// full pass ends (so the whole region is eventually covered even when
/// `stride` divides `region`).
///
/// Temporally this is another cyclic loop (same MRC cliff), but
/// *spatially* the addresses are `stride` apart — the pattern that
/// breaks set-mapping uniformity in set-associative caches and thereby
/// stresses Smith's statistical associativity model.
#[derive(Clone, Debug)]
pub struct StridedStream {
    region: u64,
    stride: u64,
    lane: u64,
    pos: u64,
}

impl StridedStream {
    /// Creates a strided sweep (both parameters clamped to ≥ 1; `stride`
    /// clamped to ≤ `region`).
    pub fn new(region: u64, stride: u64) -> Self {
        let region = region.max(1);
        StridedStream {
            region,
            stride: stride.clamp(1, region),
            lane: 0,
            pos: 0,
        }
    }
}

impl AccessStream for StridedStream {
    fn next_block(&mut self) -> Block {
        let out = (self.pos + self.lane) % self.region;
        self.pos += self.stride;
        if self.pos >= self.region {
            self.pos = 0;
            // Next lane covers the blocks this pass skipped.
            self.lane = (self.lane + 1) % self.stride;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_at_working_set() {
        let mut s = SequentialStream::new(3);
        let got: Vec<u64> = (0..7).map(|_| s.next_block()).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zero_working_set_clamped_to_one() {
        let mut s = SequentialStream::new(0);
        assert_eq!(s.next_block(), 0);
        assert_eq!(s.next_block(), 0);
    }

    #[test]
    fn strided_visits_lane_by_lane() {
        let mut s = StridedStream::new(8, 4);
        let got: Vec<u64> = (0..8).map(|_| s.next_block()).collect();
        // Lane 0: 0, 4; lane 1: 1, 5; lane 2: 2, 6; lane 3: 3, 7.
        assert_eq!(got, vec![0, 4, 1, 5, 2, 6, 3, 7]);
        // Then it cycles.
        assert_eq!(s.next_block(), 0);
    }

    #[test]
    fn strided_covers_whole_region() {
        let mut s = StridedStream::new(12, 5);
        let mut seen = vec![false; 12];
        for _ in 0..240 {
            seen[s.next_block() as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "coverage: {seen:?}");
    }

    #[test]
    fn strided_stride_one_is_sequential() {
        let mut a = StridedStream::new(5, 1);
        let mut b = SequentialStream::new(5);
        for _ in 0..12 {
            assert_eq!(a.next_block(), b.next_block());
        }
    }
}
