//! Parametric synthetic workloads.
//!
//! Each workload is a deterministic function of its parameters and a seed,
//! exposed in two forms: a one-shot [`WorkloadSpec::generate`] that
//! materializes a [`Trace`], and a stateful [`AccessStream`] for composite
//! workloads ([`WorkloadSpec::Phased`], [`WorkloadSpec::Mixture`]) and for
//! on-line co-run interleaving.
//!
//! The family is chosen to span the miss-ratio-curve shapes the paper's
//! evaluation depends on:
//!
//! | Workload | MRC shape |
//! |---|---|
//! | [`WorkloadSpec::SequentialLoop`] | cliff at the working-set size (thrashes below, hits above) — the canonical **non-convex** MRC that breaks STTW |
//! | [`WorkloadSpec::Strided`] | same cliff, but spatially strided — stresses set-mapping uniformity |
//! | [`WorkloadSpec::UniformRandom`] | linear ramp `1 − c/region` |
//! | [`WorkloadSpec::Zipfian`] | smooth convex decay |
//! | [`WorkloadSpec::PointerChase`] | cliff (like the loop, but data-dependent order) |
//! | [`WorkloadSpec::Stencil`] | staircase with knees at row and plane sizes |
//! | [`WorkloadSpec::WorkingSetWalk`] | soft knee around the window size |
//! | [`WorkloadSpec::Phased`] | time-varying (Figure 1's cores 3/4) |
//! | [`WorkloadSpec::Mixture`] | weighted blend of the above |

mod chase;
mod composite;
mod random;
mod sequential;
mod stencil;
mod walk;

pub use chase::PointerChaseStream;
pub use composite::{MixtureStream, PhasedStream};
pub use random::{UniformStream, ZipfStream};
pub use sequential::{SequentialStream, StridedStream};
pub use stencil::StencilStream;
pub use walk::WalkStream;

use crate::model::{Block, Trace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A stateful, infinite stream of block accesses.
///
/// Streams are deterministic given the spec and seed they were built from.
pub trait AccessStream: Send {
    /// Produces the next accessed block.
    fn next_block(&mut self) -> Block;

    /// Fills `out` with the next `n` accesses (convenience wrapper).
    fn fill(&mut self, n: usize, out: &mut Vec<Block>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_block());
        }
    }
}

/// A declarative workload description.
///
/// # Examples
///
/// ```
/// use cps_trace::WorkloadSpec;
/// let spec = WorkloadSpec::SequentialLoop { working_set: 64 };
/// let t = spec.generate(1000, 42);
/// assert_eq!(t.len(), 1000);
/// assert_eq!(t.distinct(), 64);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Cyclic sequential sweep over `working_set` blocks:
    /// `0, 1, …, ws−1, 0, 1, …`. Thrashes LRU below `ws`, hits above.
    SequentialLoop {
        /// Number of distinct blocks in the loop.
        working_set: u64,
    },
    /// Strided sweep: blocks `0, stride, 2·stride, …` modulo `region`,
    /// switching lanes between passes. Temporally a loop (same cliff
    /// MRC), spatially non-contiguous — the set-conflict stressor.
    Strided {
        /// Total region swept.
        region: u64,
        /// Distance between consecutive accesses.
        stride: u64,
    },
    /// Independent uniform accesses over `region` blocks.
    UniformRandom {
        /// Size of the address region.
        region: u64,
    },
    /// Zipf-distributed accesses over `region` blocks with exponent
    /// `alpha` (popularity `∝ 1/rank^alpha`).
    Zipfian {
        /// Size of the address region.
        region: u64,
        /// Skew exponent; 0 degenerates to uniform.
        alpha: f64,
    },
    /// Traversal of one random cyclic permutation of `region` blocks.
    PointerChase {
        /// Number of blocks in the chain.
        region: u64,
    },
    /// Row-major 3-point vertical stencil sweep over a `rows × cols`
    /// grid: visiting `(r, c)` touches rows `r−1`, `r`, `r+1` at column
    /// `c`. Reuses within a row pass and across adjacent rows.
    Stencil {
        /// Grid rows.
        rows: u64,
        /// Grid columns.
        cols: u64,
    },
    /// A working set of size `window` that drifts through `region`: the
    /// stream dwells for `dwell` uniform accesses, then advances the
    /// window by half its size (wrapping).
    WorkingSetWalk {
        /// Total address region the window drifts through.
        region: u64,
        /// Active window size.
        window: u64,
        /// Accesses before the window advances.
        dwell: u64,
    },
    /// Runs each sub-workload for its given number of accesses, cycling.
    /// Sub-workloads share one address space so phases can reuse each
    /// other's data (Figure 1 style).
    Phased {
        /// `(workload, accesses per phase)` pairs, cycled in order.
        phases: Vec<(WorkloadSpec, u64)>,
    },
    /// Per-access weighted choice among sub-workloads; each sub-workload
    /// is placed in its own disjoint address sub-space.
    Mixture {
        /// `(weight, workload)` pairs; weights need not sum to 1.
        parts: Vec<(f64, WorkloadSpec)>,
    },
}

impl WorkloadSpec {
    /// Instantiates the stateful stream for this spec.
    ///
    /// Equal `(spec, seed)` pairs produce identical streams.
    pub fn stream(&self, seed: u64) -> Box<dyn AccessStream> {
        let rng = ChaCha8Rng::seed_from_u64(seed);
        match self {
            WorkloadSpec::SequentialLoop { working_set } => {
                Box::new(SequentialStream::new(*working_set))
            }
            WorkloadSpec::Strided { region, stride } => {
                Box::new(StridedStream::new(*region, *stride))
            }
            WorkloadSpec::UniformRandom { region } => Box::new(UniformStream::new(*region, rng)),
            WorkloadSpec::Zipfian { region, alpha } => {
                Box::new(ZipfStream::new(*region, *alpha, rng))
            }
            WorkloadSpec::PointerChase { region } => {
                Box::new(PointerChaseStream::new(*region, rng))
            }
            WorkloadSpec::Stencil { rows, cols } => Box::new(StencilStream::new(*rows, *cols)),
            WorkloadSpec::WorkingSetWalk {
                region,
                window,
                dwell,
            } => Box::new(WalkStream::new(*region, *window, *dwell, rng)),
            WorkloadSpec::Phased { phases } => {
                let subs: Vec<(Box<dyn AccessStream>, u64)> = phases
                    .iter()
                    .enumerate()
                    .map(|(i, (spec, len))| (spec.stream(seed ^ (i as u64) << 32), *len))
                    .collect();
                Box::new(PhasedStream::new(subs))
            }
            WorkloadSpec::Mixture { parts } => {
                let subs: Vec<(f64, Box<dyn AccessStream>, u64)> = parts
                    .iter()
                    .enumerate()
                    .map(|(i, (w, spec))| {
                        // Disjoint sub-spaces: offset by component index.
                        (
                            *w,
                            spec.stream(seed.wrapping_add(0x9E37 * i as u64 + 1)),
                            (i as u64) << 40,
                        )
                    })
                    .collect();
                Box::new(MixtureStream::new(subs, rng))
            }
        }
    }

    /// Materializes `len` accesses as a [`Trace`].
    pub fn generate(&self, len: usize, seed: u64) -> Trace {
        let mut stream = self.stream(seed);
        let mut blocks = Vec::with_capacity(len);
        for _ in 0..len {
            blocks.push(stream.next_block());
        }
        Trace::new(blocks)
    }

    /// Approximate number of distinct blocks the workload will touch
    /// (upper bound for composite workloads).
    pub fn footprint_hint(&self) -> u64 {
        match self {
            WorkloadSpec::SequentialLoop { working_set } => *working_set,
            WorkloadSpec::Strided { region, .. } => *region,
            WorkloadSpec::UniformRandom { region } => *region,
            WorkloadSpec::Zipfian { region, .. } => *region,
            WorkloadSpec::PointerChase { region } => *region,
            WorkloadSpec::Stencil { rows, cols } => rows * cols,
            WorkloadSpec::WorkingSetWalk { region, .. } => *region,
            WorkloadSpec::Phased { phases } => phases
                .iter()
                .map(|(s, _)| s.footprint_hint())
                .max()
                .unwrap_or(0),
            WorkloadSpec::Mixture { parts } => parts.iter().map(|(_, s)| s.footprint_hint()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::Zipfian {
            region: 100,
            alpha: 0.8,
        };
        let a = spec.generate(500, 7);
        let b = spec.generate(500, 7);
        let c = spec.generate(500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn sequential_loop_footprint_exact() {
        let spec = WorkloadSpec::SequentialLoop { working_set: 32 };
        let t = spec.generate(100, 0);
        assert_eq!(t.distinct(), 32);
        assert_eq!(t.blocks[0], 0);
        assert_eq!(t.blocks[32], 0);
        assert_eq!(t.blocks[33], 1);
    }

    #[test]
    fn phased_shares_address_space() {
        let spec = WorkloadSpec::Phased {
            phases: vec![
                (WorkloadSpec::SequentialLoop { working_set: 3 }, 6),
                (WorkloadSpec::SequentialLoop { working_set: 1 }, 4),
            ],
        };
        let t = spec.generate(20, 1);
        // Phase 1: 0 1 2 0 1 2; Phase 2: 0 0 0 0; cycle.
        assert_eq!(
            t.blocks,
            vec![0, 1, 2, 0, 1, 2, 0, 0, 0, 0, 0, 1, 2, 0, 1, 2, 0, 0, 0, 0]
        );
        assert_eq!(t.distinct(), 3);
    }

    #[test]
    fn mixture_uses_disjoint_subspaces() {
        let spec = WorkloadSpec::Mixture {
            parts: vec![
                (1.0, WorkloadSpec::SequentialLoop { working_set: 4 }),
                (1.0, WorkloadSpec::SequentialLoop { working_set: 4 }),
            ],
        };
        let t = spec.generate(2000, 3);
        // Two disjoint 4-block loops: 8 distinct total.
        assert_eq!(t.distinct(), 8);
        assert!(t.blocks.iter().any(|&b| b >= 1 << 40));
        assert!(t.blocks.iter().any(|&b| b < 4));
    }

    #[test]
    fn footprint_hints() {
        assert_eq!(
            WorkloadSpec::Stencil { rows: 8, cols: 16 }.footprint_hint(),
            128
        );
        let mix = WorkloadSpec::Mixture {
            parts: vec![
                (0.5, WorkloadSpec::UniformRandom { region: 10 }),
                (0.5, WorkloadSpec::SequentialLoop { working_set: 20 }),
            ],
        };
        assert_eq!(mix.footprint_hint(), 30);
    }

    #[test]
    fn streams_are_resumable() {
        let spec = WorkloadSpec::UniformRandom { region: 50 };
        let mut s = spec.stream(9);
        let mut first = Vec::new();
        s.fill(100, &mut first);
        let mut rest = Vec::new();
        s.fill(100, &mut rest);
        let full = spec.generate(200, 9);
        assert_eq!(&full.blocks[..100], &first[..]);
        assert_eq!(&full.blocks[100..], &rest[..]);
    }
}
