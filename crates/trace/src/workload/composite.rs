//! Composite workloads: phase alternation and probabilistic mixtures.
//!
//! [`PhasedStream`] is the paper's Figure 1 mechanism — a program whose
//! working set alternates over time, the one case where partition-sharing
//! can genuinely beat pure partitioning (when phases of co-run programs
//! interlock). [`MixtureStream`] blends reference streams statistically,
//! which is how the spec-like profiles compose a low-miss loop core with
//! a long random tail.

use super::AccessStream;
use crate::model::Block;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Cycles through sub-streams, running each for a fixed access budget.
///
/// Sub-streams share the address space: a phase that touches block `b`
/// touches the *same* block `b` as any other phase.
pub struct PhasedStream {
    phases: Vec<(Box<dyn AccessStream>, u64)>,
    current: usize,
    used: u64,
}

impl PhasedStream {
    /// Creates the cycle from `(stream, accesses per phase)` pairs.
    ///
    /// # Panics
    /// Panics if `phases` is empty or any phase length is 0.
    pub fn new(phases: Vec<(Box<dyn AccessStream>, u64)>) -> Self {
        assert!(!phases.is_empty(), "PhasedStream needs at least one phase");
        assert!(
            phases.iter().all(|(_, len)| *len > 0),
            "phase lengths must be positive"
        );
        PhasedStream {
            phases,
            current: 0,
            used: 0,
        }
    }
}

impl AccessStream for PhasedStream {
    fn next_block(&mut self) -> Block {
        if self.used == self.phases[self.current].1 {
            self.used = 0;
            self.current = (self.current + 1) % self.phases.len();
        }
        self.used += 1;
        self.phases[self.current].0.next_block()
    }
}

/// Per-access weighted choice among sub-streams, each offset into its own
/// address sub-space.
pub struct MixtureStream {
    /// `(cumulative weight, stream, address offset)`.
    parts: Vec<(f64, Box<dyn AccessStream>, u64)>,
    total_weight: f64,
    rng: ChaCha8Rng,
}

impl MixtureStream {
    /// Creates the mixture from `(weight, stream, address offset)` parts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or all weights are ≤ 0.
    pub fn new(parts: Vec<(f64, Box<dyn AccessStream>, u64)>, rng: ChaCha8Rng) -> Self {
        assert!(!parts.is_empty(), "MixtureStream needs at least one part");
        let mut acc = 0.0;
        let parts: Vec<_> = parts
            .into_iter()
            .map(|(w, s, off)| {
                acc += w.max(0.0);
                (acc, s, off)
            })
            .collect();
        assert!(acc > 0.0, "MixtureStream needs positive total weight");
        MixtureStream {
            parts,
            total_weight: acc,
            rng,
        }
    }
}

impl AccessStream for MixtureStream {
    fn next_block(&mut self) -> Block {
        let u: f64 = self.rng.gen_range(0.0..self.total_weight);
        let idx = self.parts.partition_point(|(cum, _, _)| *cum <= u);
        let idx = idx.min(self.parts.len() - 1);
        let (_, stream, offset) = &mut self.parts[idx];
        stream.next_block() + *offset
    }
}

#[cfg(test)]
mod tests {
    use super::super::sequential::SequentialStream;
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn phased_switches_on_budget() {
        let a = Box::new(SequentialStream::new(2));
        let b = Box::new(SequentialStream::new(10));
        let mut p = PhasedStream::new(vec![(a, 3), (b, 2)]);
        let got: Vec<u64> = (0..10).map(|_| p.next_block()).collect();
        // a: 0 1 0 | b: 0 1 | a: 1 0 1 | b: 2 3
        assert_eq!(got, vec![0, 1, 0, 0, 1, 1, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn phased_empty_panics() {
        let _ = PhasedStream::new(vec![]);
    }

    #[test]
    fn mixture_respects_weights() {
        let a = Box::new(SequentialStream::new(1)); // emits 0 + offset 0
        let b = Box::new(SequentialStream::new(1)); // emits 0 + offset 100
        let mut m = MixtureStream::new(
            vec![(0.9, a, 0), (0.1, b, 100)],
            ChaCha8Rng::seed_from_u64(42),
        );
        let n = 10_000;
        let heavy = (0..n).filter(|_| m.next_block() < 100).count();
        let frac = heavy as f64 / n as f64;
        assert!((0.87..0.93).contains(&frac), "weight-0.9 fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn mixture_zero_weight_panics() {
        let a = Box::new(SequentialStream::new(1));
        let _ = MixtureStream::new(vec![(0.0, a, 0)], ChaCha8Rng::seed_from_u64(0));
    }
}
