//! 3-point vertical stencil sweep over a 2-D grid.
//!
//! Visiting cell `(r, c)` in row-major order touches `(r−1, c)`, `(r, c)`,
//! `(r+1, c)` (clamped at the boundary). The resulting miss-ratio curve is
//! a staircase: one knee when three rows fit in cache (cross-row reuse
//! captured) and another when the whole grid fits — a multi-knee,
//! non-convex shape typical of scientific codes like `zeusmp` or `wrf`.

use super::AccessStream;
use crate::model::Block;

/// Stream for [`super::WorkloadSpec::Stencil`].
#[derive(Clone, Debug)]
pub struct StencilStream {
    rows: u64,
    cols: u64,
    /// Linearized sweep position within one grid pass.
    pos: u64,
    /// Which of the 3 stencil touches of the current cell is next.
    touch: u8,
}

impl StencilStream {
    /// Sweep over a `rows × cols` grid (each dimension minimum 1).
    pub fn new(rows: u64, cols: u64) -> Self {
        StencilStream {
            rows: rows.max(1),
            cols: cols.max(1),
            pos: 0,
            touch: 0,
        }
    }
}

impl AccessStream for StencilStream {
    fn next_block(&mut self) -> Block {
        let r = self.pos / self.cols;
        let c = self.pos % self.cols;
        let touched_row = match self.touch {
            0 => r.saturating_sub(1),
            1 => r,
            _ => (r + 1).min(self.rows - 1),
        };
        let block = touched_row * self.cols + c;
        self.touch += 1;
        if self.touch == 3 {
            self.touch = 0;
            self.pos = (self.pos + 1) % (self.rows * self.cols);
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touches_three_rows_per_cell() {
        let mut s = StencilStream::new(4, 3);
        // Cell (1,0): rows 0,1,2 at col 0 → blocks 0, 3, 6.
        let mut all = Vec::new();
        for _ in 0..(4 * 3 * 3) {
            all.push(s.next_block());
        }
        assert_eq!(&all[9..12], &[0, 3, 6]);
        // Footprint = whole grid.
        let distinct: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert_eq!(distinct.len(), 12);
    }

    #[test]
    fn boundary_rows_clamped() {
        let mut s = StencilStream::new(2, 1);
        // Cell (0,0): rows clamp to 0,0? No: r-1 saturates to 0, r+1 min to 1.
        assert_eq!(s.next_block(), 0);
        assert_eq!(s.next_block(), 0);
        assert_eq!(s.next_block(), 1);
        // Cell (1,0): rows 0, 1, 1 (clamped).
        assert_eq!(s.next_block(), 0);
        assert_eq!(s.next_block(), 1);
        assert_eq!(s.next_block(), 1);
    }

    #[test]
    fn wraps_to_grid_start() {
        let mut s = StencilStream::new(1, 2);
        let first_pass: Vec<u64> = (0..6).map(|_| s.next_block()).collect();
        let second_pass: Vec<u64> = (0..6).map(|_| s.next_block()).collect();
        assert_eq!(first_pass, second_pass);
    }
}
