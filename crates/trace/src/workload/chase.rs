//! Pointer-chase workload: traversal of one random cyclic permutation.
//!
//! Like the sequential loop, a full-cycle chase has a cliff miss-ratio
//! curve at the chain length; unlike the loop, consecutive addresses are
//! uncorrelated, which exercises the analysis code with non-streaming
//! access order (and would defeat any stride prefetcher in a hardware
//! analogue).

use super::AccessStream;
use crate::model::Block;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

/// Stream for [`super::WorkloadSpec::PointerChase`].
#[derive(Clone, Debug)]
pub struct PointerChaseStream {
    /// `next[i]` = successor of block `i` in the cycle.
    next: Vec<u32>,
    cur: u32,
}

impl PointerChaseStream {
    /// Builds one random cyclic permutation of `region` blocks
    /// (minimum 1, clamped to `u32` range).
    pub fn new(region: u64, mut rng: ChaCha8Rng) -> Self {
        let n = region.clamp(1, u32::MAX as u64 - 1) as u32;
        // A random cycle via a shuffled visiting order.
        let mut order: Vec<u32> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut next = vec![0u32; n as usize];
        for w in 0..n as usize {
            let from = order[w];
            let to = order[(w + 1) % n as usize];
            next[from as usize] = to;
        }
        PointerChaseStream {
            next,
            cur: order[0],
        }
    }
}

impl AccessStream for PointerChaseStream {
    fn next_block(&mut self) -> Block {
        let out = self.cur;
        self.cur = self.next[self.cur as usize];
        out as Block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn visits_every_block_once_per_cycle() {
        let n = 64u64;
        let mut s = PointerChaseStream::new(n, ChaCha8Rng::seed_from_u64(11));
        let mut seen = vec![false; n as usize];
        for _ in 0..n {
            let b = s.next_block() as usize;
            assert!(!seen[b], "block {b} repeated within one cycle");
            seen[b] = true;
        }
        assert!(seen.iter().all(|&x| x));
        // Second cycle revisits in the same order.
        let first_again = s.next_block();
        let mut s2 = PointerChaseStream::new(n, ChaCha8Rng::seed_from_u64(11));
        assert_eq!(first_again, s2.next_block());
    }

    #[test]
    fn single_block_chain() {
        let mut s = PointerChaseStream::new(1, ChaCha8Rng::seed_from_u64(0));
        assert_eq!(s.next_block(), 0);
        assert_eq!(s.next_block(), 0);
    }
}
