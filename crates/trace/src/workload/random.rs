//! Uniform and Zipfian random-access workloads.
//!
//! Uniform access over a region yields the linear miss-ratio curve
//! `mr(c) ≈ 1 − c/region`; Zipfian access yields a smooth convex decay —
//! the friendly case where STTW and the DP agree. The Zipf sampler
//! precomputes the popularity CDF once and draws by binary search, so
//! per-access cost is `O(log region)` with no allocation.

use super::AccessStream;
use crate::model::Block;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Stream for [`super::WorkloadSpec::UniformRandom`].
#[derive(Clone, Debug)]
pub struct UniformStream {
    region: u64,
    rng: ChaCha8Rng,
}

impl UniformStream {
    /// Uniform accesses over `region` blocks (minimum 1).
    pub fn new(region: u64, rng: ChaCha8Rng) -> Self {
        UniformStream {
            region: region.max(1),
            rng,
        }
    }
}

impl AccessStream for UniformStream {
    fn next_block(&mut self) -> Block {
        self.rng.gen_range(0..self.region)
    }
}

/// Stream for [`super::WorkloadSpec::Zipfian`].
#[derive(Clone, Debug)]
pub struct ZipfStream {
    /// Cumulative popularity; `cdf[i]` = P(rank ≤ i).
    cdf: Vec<f64>,
    rng: ChaCha8Rng,
}

impl ZipfStream {
    /// Zipf(`alpha`) accesses over `region` blocks. `alpha = 0` is
    /// uniform; larger values concentrate on low ranks.
    pub fn new(region: u64, alpha: f64, rng: ChaCha8Rng) -> Self {
        let region = region.max(1) as usize;
        let mut cdf = Vec::with_capacity(region);
        let mut acc = 0.0f64;
        for rank in 1..=region {
            acc += (rank as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfStream { cdf, rng }
    }
}

impl AccessStream for ZipfStream {
    fn next_block(&mut self) -> Block {
        let u: f64 = self.rng.gen();
        // First index with cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as Block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_stays_in_region() {
        let mut s = UniformStream::new(10, rng(1));
        for _ in 0..1000 {
            assert!(s.next_block() < 10);
        }
    }

    #[test]
    fn uniform_covers_region() {
        let mut s = UniformStream::new(8, rng(2));
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[s.next_block() as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all blocks should appear");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut s = ZipfStream::new(1000, 1.0, rng(3));
        let mut low = 0;
        let n = 20_000;
        for _ in 0..n {
            if s.next_block() < 10 {
                low += 1;
            }
        }
        // With alpha=1 over 1000 items, the top-10 mass is
        // H(10)/H(1000) ≈ 2.93/7.49 ≈ 39%.
        let frac = low as f64 / n as f64;
        assert!(
            (0.30..0.50).contains(&frac),
            "top-10 fraction {frac} out of expected band"
        );
    }

    #[test]
    fn zipf_zero_alpha_is_roughly_uniform() {
        let mut s = ZipfStream::new(4, 0.0, rng(4));
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[s.next_block() as usize] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_single_block_region() {
        let mut s = ZipfStream::new(1, 1.2, rng(5));
        assert_eq!(s.next_block(), 0);
    }
}
