//! The 16-program study set standing in for SPEC CPU2006.
//!
//! The paper profiles 16 SPEC programs (perlbench, bzip2, mcf, zeusmp,
//! namd, dealII, soplex, povray, hmmer, sjeng, h264ref, tonto, lbm,
//! omnetpp, wrf, sphinx3) and co-runs every 4-subset. We cannot ship SPEC
//! traces, so each program is replaced by a synthetic profile whose
//! miss-ratio curve has the qualitative shape the paper's evaluation
//! relies on:
//!
//! * **magnitude spread** — equal-partition miss ratios spanning ~3 orders
//!   of magnitude (paper Figure 5 spans ~0.0001 to ~0.06);
//! * **streaming gainers** — `lbm`/`sphinx3`-like programs whose miss
//!   ratio drops only at large sizes, which gain from free-for-all
//!   sharing;
//! * **flat-tail losers** — `perlbench`/`sjeng`/`namd`-like programs with
//!   a small core and an uncacheable tail, which lose from sharing;
//! * **working-set cliffs** — non-convex MRCs (sequential loops, phase
//!   alternation) that violate the STTW convexity assumption for a
//!   sizable fraction of groups (paper: 34%).
//!
//! Most profiles follow one template: a heavily-weighted small *hot core*
//! (sets the hit floor) mixed with a lightly-weighted *tail* workload over
//! a larger region (sets the MRC shape and magnitude). The default scale
//! targets a shared cache of **1024 blocks** (the paper's 1024 partition
//! units).

use crate::model::Trace;
use crate::workload::WorkloadSpec;

/// A named co-run program: workload, relative access rate, trace length.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// Program name (`<spec-program>`-like).
    pub name: &'static str,
    /// The generating workload.
    pub workload: WorkloadSpec,
    /// Relative access rate (accesses per unit time); the paper measures
    /// this as trace length over solo run time. Used for footprint
    /// stretching in co-run composition.
    pub access_rate: f64,
    /// Number of accesses to generate.
    pub trace_len: usize,
    /// Generator seed (fixed per program for reproducibility).
    pub seed: u64,
}

impl ProgramSpec {
    /// Materializes the program's trace.
    pub fn trace(&self) -> Trace {
        self.workload.generate(self.trace_len, self.seed)
    }
}

/// Convenience constructor for the hot-core + tail mixture template.
fn core_tail(core: WorkloadSpec, tail_weight: f64, tail: WorkloadSpec) -> WorkloadSpec {
    WorkloadSpec::Mixture {
        parts: vec![(1.0 - tail_weight, core), (tail_weight, tail)],
    }
}

fn lp(working_set: u64) -> WorkloadSpec {
    WorkloadSpec::SequentialLoop { working_set }
}

fn zipf(region: u64, alpha: f64) -> WorkloadSpec {
    WorkloadSpec::Zipfian { region, alpha }
}

/// The 16-program study set at the default scale (1024-block cache),
/// with the default trace length of 400k accesses per program.
pub fn study_programs() -> Vec<ProgramSpec> {
    study_programs_scaled(400_000)
}

/// The study set with a custom trace length (shorter for quick tests,
/// longer for tighter statistics). Workload parameters are unchanged.
pub fn study_programs_scaled(trace_len: usize) -> Vec<ProgramSpec> {
    let mut id = 0u64;
    let mut mk = |name: &'static str, workload: WorkloadSpec, access_rate: f64| {
        id += 1;
        ProgramSpec {
            name,
            workload,
            access_rate,
            trace_len,
            seed: 0xC0DE_0000 + id,
        }
    };
    vec![
        // --- streaming / high-miss gainers -------------------------------
        // lbm: streaming sweep with a cliff just below the full cache.
        mk("lbm-like", core_tail(lp(44), 0.065, lp(640)), 1.7),
        // sphinx3: zipf core + large loop tail.
        mk(
            "sphinx3-like",
            core_tail(zipf(150, 0.9), 0.05, lp(800)),
            1.4,
        ),
        // mcf: huge flat-ish random tail, slow convex decay.
        mk("mcf-like", core_tail(lp(36), 0.08, zipf(2800, 0.35)), 0.9),
        // zeusmp: stencil staircase (knees at 3 rows and whole grid).
        mk(
            "zeusmp-like",
            core_tail(lp(60), 0.12, WorkloadSpec::Stencil { rows: 36, cols: 24 }),
            1.1,
        ),
        // --- mid-range ----------------------------------------------------
        // soplex: drifting working set over a large matrix.
        mk(
            "soplex-like",
            core_tail(
                lp(52),
                0.04,
                WorkloadSpec::WorkingSetWalk {
                    region: 2000,
                    window: 500,
                    dwell: 4000,
                },
            ),
            1.0,
        ),
        // omnetpp: heap-shaped zipf tail.
        mk(
            "omnetpp-like",
            core_tail(lp(48), 0.035, zipf(1800, 0.55)),
            0.9,
        ),
        // h264ref: phase alternation between a small and a large frame.
        mk(
            "h264ref-like",
            WorkloadSpec::Phased {
                phases: vec![(lp(96), 40_000), (core_tail(lp(96), 0.05, lp(520)), 20_000)],
            },
            1.3,
        ),
        // wrf: stencil tail over a mid-size grid.
        mk(
            "wrf-like",
            core_tail(lp(64), 0.03, WorkloadSpec::Stencil { rows: 30, cols: 20 }),
            1.0,
        ),
        // dealII: drifting solver block.
        mk(
            "dealII-like",
            core_tail(
                zipf(80, 1.0),
                0.04,
                WorkloadSpec::WorkingSetWalk {
                    region: 1200,
                    window: 260,
                    dwell: 3000,
                },
            ),
            1.0,
        ),
        // bzip2: two nested working sets → a double cliff.
        mk(
            "bzip2-like",
            WorkloadSpec::Mixture {
                parts: vec![(0.968, lp(42)), (0.02, lp(150)), (0.012, lp(380))],
            },
            1.1,
        ),
        // --- low-miss programs --------------------------------------------
        // perlbench: small core + uncacheable uniform tail (flat MRC →
        // extra cache is wasted on it; loses from sharing).
        mk(
            "perlbench-like",
            core_tail(
                zipf(120, 1.05),
                0.006,
                WorkloadSpec::UniformRandom { region: 2200 },
            ),
            1.2,
        ),
        // hmmer: low miss ratio but a reachable knee → gains.
        mk("hmmer-like", core_tail(lp(58), 0.004, lp(300)), 1.5),
        // tonto: like hmmer with a farther knee.
        mk("tonto-like", core_tail(lp(75), 0.003, lp(420)), 0.9),
        // sjeng: tiny miss ratio, uncacheable tail → loses.
        mk(
            "sjeng-like",
            core_tail(
                zipf(130, 1.0),
                0.0015,
                WorkloadSpec::UniformRandom { region: 4000 },
            ),
            1.0,
        ),
        // namd: nearly perfect locality; optimal partitioning almost
        // always takes cache away from it.
        mk(
            "namd-like",
            core_tail(lp(98), 0.0006, WorkloadSpec::UniformRandom { region: 2600 }),
            1.0,
        ),
        // povray: fully cacheable tiny footprint.
        mk("povray-like", zipf(56, 1.3), 1.3),
    ]
}

/// Default shared-cache size, in blocks, matching the 1024 partition
/// units of the paper's 8 MB / 8 KB-unit configuration.
pub const DEFAULT_CACHE_BLOCKS: usize = 1024;

/// A deliberately adversarial 8-program set dominated by synchronized
/// phase behaviour — the regime where the paper's random-phase
/// assumption (Section VIII) is violated by construction.
///
/// Three anti-phase pairs (each partner runs its big working set while
/// the other runs its small one), with different phase lengths, plus a
/// streamer and a small stationary program. Used by the `stress_study`
/// experiment to quantify NPA degradation and the phase-aware
/// partitioner's recovery.
pub fn stress_programs(trace_len: usize) -> Vec<ProgramSpec> {
    let anti_phase = |big_ws: u64, phase: u64, first_big: bool| {
        let big = WorkloadSpec::SequentialLoop {
            working_set: big_ws,
        };
        let small = WorkloadSpec::SequentialLoop { working_set: 8 };
        let phases = if first_big {
            vec![(big, phase), (small, phase)]
        } else {
            vec![(small, phase), (big, phase)]
        };
        WorkloadSpec::Phased { phases }
    };
    let mut id = 100u64;
    let mut mk = |name: &'static str, workload: WorkloadSpec| {
        id += 1;
        ProgramSpec {
            name,
            workload,
            access_rate: 1.0, // equal rates keep co-run phases aligned
            trace_len,
            seed: 0xFADE_0000 + id,
        }
    };
    vec![
        mk("phaseA-hi", anti_phase(500, 3_000, true)),
        mk("phaseA-lo", anti_phase(500, 3_000, false)),
        mk("phaseB-hi", anti_phase(700, 8_000, true)),
        mk("phaseB-lo", anti_phase(700, 8_000, false)),
        mk("phaseC-hi", anti_phase(300, 1_500, true)),
        mk("phaseC-lo", anti_phase(300, 1_500, false)),
        mk(
            "stream",
            WorkloadSpec::SequentialLoop { working_set: 5_000 },
        ),
        mk(
            "steady",
            WorkloadSpec::Zipfian {
                region: 120,
                alpha: 0.9,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_programs_with_unique_names() {
        let ps = study_programs();
        assert_eq!(ps.len(), 16);
        let names: std::collections::HashSet<_> = ps.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 16);
        assert!(ps.iter().all(|p| p.name.ends_with("-like")));
    }

    #[test]
    fn traces_are_reproducible_and_sized() {
        let ps = study_programs_scaled(5_000);
        for p in &ps {
            let a = p.trace();
            assert_eq!(a.len(), 5_000, "{}", p.name);
            let b = p.trace();
            assert_eq!(a, b, "{} must be deterministic", p.name);
        }
    }

    #[test]
    fn footprints_span_cache_scale() {
        let ps = study_programs_scaled(60_000);
        let mut small = 0;
        let mut large = 0;
        for p in &ps {
            let m = p.trace().distinct();
            if m <= DEFAULT_CACHE_BLOCKS / 4 {
                small += 1;
            }
            if m >= DEFAULT_CACHE_BLOCKS / 2 {
                large += 1;
            }
        }
        assert!(small >= 2, "need programs that fit in a quarter share");
        assert!(large >= 4, "need programs that pressure the cache");
    }

    #[test]
    fn stress_programs_are_anti_phase_pairs() {
        let ps = stress_programs(24_000);
        assert_eq!(ps.len(), 8);
        // Each pair's phases are complementary: while -hi runs its big
        // working set, -lo runs its small one. Check via the traces: in
        // the first phase window, -hi touches many distinct blocks and
        // -lo touches few.
        for (hi, lo, phase) in [(0usize, 1usize, 3_000usize), (2, 3, 8_000), (4, 5, 1_500)] {
            let thi = ps[hi].trace();
            let tlo = ps[lo].trace();
            let hi_first = thi.window_wss(0, phase);
            let lo_first = tlo.window_wss(0, phase);
            assert!(
                hi_first > 10 * lo_first.max(1),
                "pair ({hi},{lo}): first-phase WSS {hi_first} vs {lo_first}"
            );
            // And the relationship flips in the second phase.
            let hi_second = thi.window_wss(phase, phase);
            let lo_second = tlo.window_wss(phase, phase);
            assert!(
                lo_second > 10 * hi_second.max(1),
                "pair ({hi},{lo}): second-phase WSS {hi_second} vs {lo_second}"
            );
        }
        // Equal access rates keep co-run phases aligned.
        assert!(ps.iter().all(|p| p.access_rate == 1.0));
    }

    #[test]
    fn access_rates_are_positive_and_diverse() {
        let ps = study_programs();
        assert!(ps.iter().all(|p| p.access_rate > 0.0));
        let max = ps.iter().map(|p| p.access_rate).fold(0.0, f64::max);
        let min = ps.iter().map(|p| p.access_rate).fold(f64::MAX, f64::min);
        assert!(max / min >= 1.5, "rates should differ across programs");
    }
}
