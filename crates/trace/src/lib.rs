//! Synthetic memory-trace substrate.
//!
//! The paper evaluates on full memory traces of 16 SPEC CPU2006 programs.
//! Those traces are proprietary-input, hardware-profiled artifacts we do
//! not have, so this crate provides the closest synthetic equivalent: a
//! family of parametric *workloads* whose miss-ratio-curve shapes span the
//! same qualitative space (streaming, working-set cliffs, Zipfian heaps,
//! phase alternation), a set of 16 named "spec-like" profiles standing in
//! for the paper's program set, and trace interleaving for co-run
//! simulation.
//!
//! * [`model`] — block addresses, traces, and basic trace statistics.
//! * [`workload`] — the [`workload::WorkloadSpec`] family of generators.
//! * [`spec_like`] — the 16-program study set (Section VII-A stand-in).
//! * [`interleave`] — rate-proportional co-run trace interleaving.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod interleave;
pub mod model;
pub mod spec_like;
pub mod workload;

pub use interleave::{
    interleave_proportional, ChunkRouter, CoAccess, CoTrace, InterleavedStream, StreamChunks,
};
pub use model::{Block, Trace, TraceStats};
pub use spec_like::{study_programs, ProgramSpec};
pub use workload::{AccessStream, WorkloadSpec};
