//! Trace representation and basic statistics.
//!
//! A *trace* is the sequence of cache-block addresses one program touches.
//! All locality analysis in `cps-hotl` and all simulation in `cps-cachesim`
//! consume this representation. Block identifiers are abstract `u64`s — the
//! paper's 64-byte cache lines, here at whatever granularity the workload
//! generator chose.

use std::collections::HashSet;

/// A cache-block address (abstract identifier; no byte granularity
/// implied).
pub type Block = u64;

/// A single program's memory access trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Accessed blocks, in program order.
    pub blocks: Vec<Block>,
}

impl Trace {
    /// Creates a trace from a block sequence.
    pub fn new(blocks: Vec<Block>) -> Self {
        Trace { blocks }
    }

    /// Creates an empty trace with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            blocks: Vec::with_capacity(cap),
        }
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of distinct blocks (the total footprint).
    pub fn distinct(&self) -> usize {
        let mut seen: HashSet<Block> = HashSet::with_capacity(1024);
        for &b in &self.blocks {
            seen.insert(b);
        }
        seen.len()
    }

    /// Returns a copy with every block offset by `delta` — used to give
    /// co-run programs disjoint address spaces.
    pub fn offset(&self, delta: u64) -> Trace {
        Trace {
            blocks: self.blocks.iter().map(|&b| b + delta).collect(),
        }
    }

    /// Working-set size of the window starting at `start` (0-based,
    /// inclusive) of length `len`: the number of distinct blocks in it.
    ///
    /// This is the paper's `WSS(i, w)`; `cps-hotl` computes the *average*
    /// over all windows in linear time, and tests use this direct version
    /// as the oracle.
    pub fn window_wss(&self, start: usize, len: usize) -> usize {
        let end = (start + len).min(self.blocks.len());
        let mut seen: HashSet<Block> = HashSet::new();
        for &b in &self.blocks[start..end] {
            seen.insert(b);
        }
        seen.len()
    }

    /// Summary statistics for the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            accesses: self.blocks.len() as u64,
            distinct: self.distinct() as u64,
        }
    }
}

impl From<Vec<Block>> for Trace {
    fn from(blocks: Vec<Block>) -> Self {
        Trace { blocks }
    }
}

impl std::ops::Deref for Trace {
    type Target = [Block];
    fn deref(&self) -> &[Block] {
        &self.blocks
    }
}

/// Basic whole-trace statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceStats {
    /// Trace length `n`.
    pub accesses: u64,
    /// Distinct blocks `m` (total footprint).
    pub distinct: u64,
}

impl TraceStats {
    /// Compulsory (cold) miss ratio `m / n`; 0 for an empty trace.
    pub fn cold_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.distinct as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_counts_unique_blocks() {
        let t = Trace::new(vec![1, 2, 1, 3, 2, 1]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.distinct(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::default();
        assert!(t.is_empty());
        let s = t.stats();
        assert_eq!(s.accesses, 0);
        assert_eq!(s.cold_miss_ratio(), 0.0);
    }

    #[test]
    fn offset_shifts_all_blocks() {
        let t = Trace::new(vec![0, 5, 2]);
        assert_eq!(t.offset(100).blocks, vec![100, 105, 102]);
    }

    #[test]
    fn window_wss_basic() {
        // Paper Figure 3 trace: a a x b b y a a x b b y
        let t = Trace::new(vec![0, 0, 1, 2, 2, 3, 0, 0, 1, 2, 2, 3]);
        assert_eq!(t.window_wss(0, 2), 1); // "a a"
        assert_eq!(t.window_wss(1, 6), 4); // "a x b b y a"
        assert_eq!(t.window_wss(3, 2), 1); // "b b"
        assert_eq!(t.window_wss(0, 12), 4);
        assert_eq!(t.window_wss(10, 100), 2); // clamped at trace end
    }

    #[test]
    fn deref_gives_slice_access() {
        let t = Trace::new(vec![4, 5, 6]);
        assert_eq!(t[1], 5);
        assert_eq!(t.iter().copied().max(), Some(6));
    }
}
