//! Co-run trace interleaving.
//!
//! Shared-cache simulation needs a single merged access stream from the
//! co-run programs. The paper's composition theory assumes accesses
//! interleave in proportion to each program's *access rate* (Section IV);
//! [`interleave_proportional`] implements exactly that with a
//! largest-deficit (Bresenham-style) scheduler, which is deterministic
//! and keeps every prefix of the merged trace rate-proportional to within
//! one access. Programs' address spaces are disjoint by construction
//! (each program's blocks are namespaced by its index).

use crate::model::{Block, Trace};

/// One access of a merged co-run trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoAccess {
    /// Index of the program that issued the access.
    pub program: u8,
    /// The (namespaced) block address.
    pub block: Block,
}

/// A merged co-run trace.
#[derive(Clone, Debug, Default)]
pub struct CoTrace {
    /// Accesses in interleaved order.
    pub accesses: Vec<CoAccess>,
    /// Per-program access counts actually emitted.
    pub per_program: Vec<u64>,
}

impl CoTrace {
    /// Total number of merged accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if no accesses were merged.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// Bits reserved for namespacing program addresses in a merged trace.
pub const PROGRAM_SHIFT: u32 = 48;

/// Namespaces a program-local block into the merged address space.
pub fn namespaced(program: usize, block: Block) -> Block {
    ((program as u64) << PROGRAM_SHIFT) | block
}

/// Merges per-program traces proportionally to `rates`.
///
/// At every step the program with the largest *deficit* — expected
/// accesses so far minus emitted accesses — issues next. A program whose
/// trace is exhausted simply stops (the others continue), matching how a
/// short co-runner finishes early on real hardware.
///
/// The merged trace ends when `total_len` accesses have been emitted or
/// every trace is exhausted, whichever is first.
///
/// # Panics
/// Panics if `traces` and `rates` have different lengths, if any rate is
/// not positive, or if more than 256 programs are given.
pub fn interleave_proportional(traces: &[&Trace], rates: &[f64], total_len: usize) -> CoTrace {
    assert_eq!(traces.len(), rates.len(), "one rate per trace");
    assert!(traces.len() <= 256, "at most 256 co-run programs");
    assert!(
        rates.iter().all(|&r| r > 0.0 && r.is_finite()),
        "rates must be positive and finite"
    );
    let k = traces.len();
    let rate_sum: f64 = rates.iter().sum();
    let mut emitted = vec![0usize; k];
    let mut accesses = Vec::with_capacity(total_len.min(1 << 24));
    for step in 0..total_len {
        // Largest deficit among programs with accesses left.
        let mut best: Option<(f64, usize)> = None;
        for i in 0..k {
            if emitted[i] >= traces[i].len() {
                continue;
            }
            let expected = (step + 1) as f64 * rates[i] / rate_sum;
            let deficit = expected - emitted[i] as f64;
            match best {
                Some((d, _)) if d >= deficit => {}
                _ => best = Some((deficit, i)),
            }
        }
        let Some((_, i)) = best else {
            break; // all traces exhausted
        };
        let block = traces[i].blocks[emitted[i]];
        accesses.push(CoAccess {
            program: i as u8,
            block: namespaced(i, block),
        });
        emitted[i] += 1;
    }
    CoTrace {
        per_program: emitted.iter().map(|&e| e as u64).collect(),
        accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(blocks: Vec<Block>) -> Trace {
        Trace::new(blocks)
    }

    #[test]
    fn equal_rates_round_robin_like() {
        let a = t(vec![1, 2, 3]);
        let b = t(vec![10, 20, 30]);
        let co = interleave_proportional(&[&a, &b], &[1.0, 1.0], 6);
        assert_eq!(co.len(), 6);
        assert_eq!(co.per_program, vec![3, 3]);
        // Each prefix of length 2k has k from each.
        for k in 1..=3 {
            let cnt = co.accesses[..2 * k]
                .iter()
                .filter(|x| x.program == 0)
                .count();
            assert_eq!(cnt, k);
        }
    }

    #[test]
    fn rates_respected_in_prefixes() {
        let a = t((0..300).collect());
        let b = t((0..300).collect());
        let co = interleave_proportional(&[&a, &b], &[3.0, 1.0], 400);
        let a_count = co.accesses.iter().filter(|x| x.program == 0).count();
        assert_eq!(a_count, 300);
        // The 3:1 ratio holds in every prefix within one access.
        let mut seen0 = 0.0;
        for (i, acc) in co.accesses.iter().enumerate().take(399) {
            if acc.program == 0 {
                seen0 += 1.0;
            }
            let expected = (i + 1) as f64 * 0.75;
            assert!(
                (seen0 - expected).abs() <= 1.0 + 1e-9,
                "prefix {i}: {seen0} vs {expected}"
            );
        }
    }

    #[test]
    fn exhausted_trace_lets_others_continue() {
        let a = t(vec![1]);
        let b = t(vec![10, 20, 30, 40]);
        let co = interleave_proportional(&[&a, &b], &[10.0, 1.0], 10);
        assert_eq!(co.per_program, vec![1, 4]);
        assert_eq!(co.len(), 5);
    }

    #[test]
    fn namespacing_keeps_programs_disjoint() {
        let a = t(vec![5]);
        let b = t(vec![5]);
        let co = interleave_proportional(&[&a, &b], &[1.0, 1.0], 2);
        assert_ne!(co.accesses[0].block, co.accesses[1].block);
        assert_eq!(co.accesses[0].block & 0xFFFF, 5);
        assert_eq!(co.accesses[1].block & 0xFFFF, 5);
    }

    #[test]
    fn empty_input_gives_empty_cotrace() {
        let a = t(vec![]);
        let co = interleave_proportional(&[&a], &[1.0], 5);
        assert!(co.is_empty());
        assert_eq!(co.per_program, vec![0]);
    }

    #[test]
    #[should_panic(expected = "one rate per trace")]
    fn mismatched_rates_panic() {
        let a = t(vec![1]);
        let _ = interleave_proportional(&[&a], &[1.0, 2.0], 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let a = t(vec![1]);
        let _ = interleave_proportional(&[&a], &[0.0], 1);
    }
}
