//! Co-run trace interleaving.
//!
//! Shared-cache simulation needs a single merged access stream from the
//! co-run programs. The paper's composition theory assumes accesses
//! interleave in proportion to each program's *access rate* (Section IV);
//! [`interleave_proportional`] implements exactly that with a
//! largest-deficit (Bresenham-style) scheduler, which is deterministic
//! and keeps every prefix of the merged trace rate-proportional to within
//! one access. Programs' address spaces are disjoint by construction
//! (each program's blocks are namespaced by its index).

use crate::model::{Block, Trace};
use crate::workload::AccessStream;

/// One access of a merged co-run trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoAccess {
    /// Index of the program that issued the access.
    pub program: u8,
    /// The (namespaced) block address.
    pub block: Block,
}

/// A merged co-run trace.
#[derive(Clone, Debug, Default)]
pub struct CoTrace {
    /// Accesses in interleaved order.
    pub accesses: Vec<CoAccess>,
    /// Per-program access counts actually emitted.
    pub per_program: Vec<u64>,
}

impl CoTrace {
    /// Total number of merged accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if no accesses were merged.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Iterates the merged trace as `(tenant, block)` pairs — the shape
    /// online consumers (the repartitioning engine) ingest.
    pub fn tenant_accesses(&self) -> impl Iterator<Item = (usize, Block)> + '_ {
        self.accesses.iter().map(|a| (a.program as usize, a.block))
    }
}

/// Bits reserved for namespacing program addresses in a merged trace.
pub const PROGRAM_SHIFT: u32 = 48;

/// Namespaces a program-local block into the merged address space.
pub fn namespaced(program: usize, block: Block) -> Block {
    ((program as u64) << PROGRAM_SHIFT) | block
}

/// Merges per-program traces proportionally to `rates`.
///
/// At every step the program with the largest *deficit* — expected
/// accesses so far minus emitted accesses — issues next. A program whose
/// trace is exhausted simply stops (the others continue), matching how a
/// short co-runner finishes early on real hardware.
///
/// The merged trace ends when `total_len` accesses have been emitted or
/// every trace is exhausted, whichever is first.
///
/// # Panics
/// Panics if `traces` and `rates` have different lengths, if any rate is
/// not positive, or if more than 256 programs are given.
pub fn interleave_proportional(traces: &[&Trace], rates: &[f64], total_len: usize) -> CoTrace {
    assert_eq!(traces.len(), rates.len(), "one rate per trace");
    assert!(traces.len() <= 256, "at most 256 co-run programs");
    assert!(
        rates.iter().all(|&r| r > 0.0 && r.is_finite()),
        "rates must be positive and finite"
    );
    let k = traces.len();
    let rate_sum: f64 = rates.iter().sum();
    let mut emitted = vec![0usize; k];
    let mut accesses = Vec::with_capacity(total_len.min(1 << 24));
    for step in 0..total_len {
        // Largest deficit among programs with accesses left.
        let mut best: Option<(f64, usize)> = None;
        for i in 0..k {
            if emitted[i] >= traces[i].len() {
                continue;
            }
            let expected = (step + 1) as f64 * rates[i] / rate_sum;
            let deficit = expected - emitted[i] as f64;
            match best {
                Some((d, _)) if d >= deficit => {}
                _ => best = Some((deficit, i)),
            }
        }
        let Some((_, i)) = best else {
            break; // all traces exhausted
        };
        let block = traces[i].blocks[emitted[i]];
        accesses.push(CoAccess {
            program: i as u8,
            block: namespaced(i, block),
        });
        emitted[i] += 1;
    }
    CoTrace {
        per_program: emitted.iter().map(|&e| e as u64).collect(),
        accesses,
    }
}

/// A lazy, unbounded proportional interleaver over live access streams.
///
/// The batch [`interleave_proportional`] materializes a merged trace;
/// this adapter produces the same largest-deficit schedule one access at
/// a time over stateful [`AccessStream`]s, which never exhaust. It is the
/// feed for online consumers that should not hold the whole co-run trace
/// in memory — each `next()` picks the tenant with the largest deficit,
/// pulls one block from its stream, and namespaces it.
///
/// # Examples
///
/// ```
/// use cps_trace::{InterleavedStream, WorkloadSpec};
/// let streams = vec![
///     WorkloadSpec::SequentialLoop { working_set: 4 }.stream(1),
///     WorkloadSpec::SequentialLoop { working_set: 8 }.stream(2),
/// ];
/// let mut s = InterleavedStream::new(streams, vec![1.0, 3.0]);
/// let first: Vec<(usize, u64)> = s.by_ref().take(8).collect();
/// let from_tenant0 = first.iter().filter(|(t, _)| *t == 0).count();
/// assert_eq!(from_tenant0, 2); // 1:3 rate split holds in the prefix
/// ```
pub struct InterleavedStream {
    streams: Vec<Box<dyn AccessStream>>,
    rates: Vec<f64>,
    rate_sum: f64,
    emitted: Vec<u64>,
    step: u64,
}

impl InterleavedStream {
    /// Builds an interleaver over `streams` with relative `rates`.
    ///
    /// # Panics
    /// Panics if the lengths differ, any rate is not positive and
    /// finite, no streams are given, or more than 256 are.
    pub fn new(streams: Vec<Box<dyn AccessStream>>, rates: Vec<f64>) -> Self {
        assert_eq!(streams.len(), rates.len(), "one rate per stream");
        assert!(!streams.is_empty(), "at least one stream");
        assert!(streams.len() <= 256, "at most 256 co-run programs");
        assert!(
            rates.iter().all(|&r| r > 0.0 && r.is_finite()),
            "rates must be positive and finite"
        );
        let rate_sum = rates.iter().sum();
        let emitted = vec![0u64; streams.len()];
        InterleavedStream {
            streams,
            rates,
            rate_sum,
            emitted,
            step: 0,
        }
    }

    /// Number of tenant streams.
    pub fn tenants(&self) -> usize {
        self.streams.len()
    }

    /// Accesses emitted so far per tenant.
    pub fn per_tenant_emitted(&self) -> &[u64] {
        &self.emitted
    }

    /// Re-chunks the stream into fixed-size batches of `(tenant, block)`
    /// pairs — the feeding shape for epoch-batched consumers such as a
    /// sharded repartitioning engine, which splits each batch across its
    /// shard threads. Chunks partition the underlying schedule: the
    /// concatenation of the yielded chunks is exactly the access-by-
    /// access stream. The chunk iterator is as unbounded as the stream;
    /// bound it with `Iterator::take`.
    ///
    /// # Panics
    /// Panics if `chunk_len` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use cps_trace::{InterleavedStream, WorkloadSpec};
    /// let streams = vec![WorkloadSpec::SequentialLoop { working_set: 4 }.stream(1)];
    /// let mut epochs = InterleavedStream::new(streams, vec![1.0]).chunks(1_000);
    /// let epoch = epochs.next().unwrap();
    /// assert_eq!(epoch.len(), 1_000);
    /// ```
    pub fn chunks(self, chunk_len: usize) -> StreamChunks {
        assert!(chunk_len > 0, "chunks need at least one access");
        StreamChunks {
            stream: self,
            chunk_len,
        }
    }
}

/// The contiguous-chunk shard-routing rule, streamable.
///
/// An epoch of `epoch_len` accesses split across `shards` workers gives
/// shard `i` the contiguous slice `[i·E/N, (i+1)·E/N)` of epoch
/// positions (integer division; `E = epoch_len`, `N = shards`). A
/// batching consumer materializes the epoch and slices it; a *pipelined*
/// consumer cannot wait for the epoch to fill, so this router answers
/// "which shard owns the next access?" one position at a time — without
/// materializing anything — and is guaranteed to agree with the
/// materialized slicing (duplicate boundaries, i.e. empty chunks when
/// `shards > epoch_len`, resolve to the *last* shard whose slice starts
/// there, exactly like slicing does).
///
/// A final epoch shorter than `epoch_len` keeps the full-epoch
/// boundaries: positions are routed as if the epoch were going to fill,
/// and the absent tail simply never arrives. [`ChunkRouter::bounds`]
/// mirrors that rule for batching consumers by clamping each slice to
/// the realized length, so buffered and pipelined consumers chunk every
/// epoch — full or partial — identically.
///
/// # Examples
///
/// ```
/// use cps_trace::ChunkRouter;
/// let mut r = ChunkRouter::new(6, 2);
/// let shards: Vec<usize> = (0..8).map(|_| r.next_shard()).collect();
/// // Positions 0..3 -> shard 0, 3..6 -> shard 1, then a new epoch.
/// assert_eq!(shards, vec![0, 0, 0, 1, 1, 1, 0, 0]);
/// ```
#[derive(Clone, Debug)]
pub struct ChunkRouter {
    epoch_len: usize,
    shards: usize,
    pos: usize,
}

impl ChunkRouter {
    /// Builds a router for epochs of `epoch_len` accesses over `shards`
    /// workers, starting at position 0.
    ///
    /// # Panics
    /// Panics if `epoch_len` or `shards` is zero.
    pub fn new(epoch_len: usize, shards: usize) -> Self {
        assert!(epoch_len > 0, "epochs need at least one access");
        assert!(shards > 0, "need at least one shard");
        ChunkRouter {
            epoch_len,
            shards,
            pos: 0,
        }
    }

    /// The shard owning epoch position `pos` under the contiguous-chunk
    /// rule: the largest `i` with `i·E/N ≤ pos`, i.e. the shard whose
    /// (possibly empty) slice `[i·E/N, (i+1)·E/N)` contains `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= epoch_len`.
    pub fn shard_of(epoch_len: usize, shards: usize, pos: usize) -> usize {
        assert!(pos < epoch_len, "position {pos} outside epoch {epoch_len}");
        // Largest i with i·E < (pos+1)·N  ⇔  i = ⌈(pos+1)·N/E⌉ − 1.
        ((pos + 1) * shards).div_ceil(epoch_len) - 1
    }

    /// Routes the next access: returns its shard and advances the
    /// position, wrapping at the epoch boundary.
    pub fn next_shard(&mut self) -> usize {
        let s = Self::shard_of(self.epoch_len, self.shards, self.pos);
        self.pos = (self.pos + 1) % self.epoch_len;
        s
    }

    /// Position within the current epoch of the *next* access.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Rewinds to position 0 — the start of a fresh epoch. Call when an
    /// epoch closes early (a partial final epoch).
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// The chunk index ranges of one epoch of realized length `len`
    /// (`len ≤ epoch_len`; pass `epoch_len` for a full epoch): shard
    /// `i`'s slice is `[i·E/N, (i+1)·E/N)` clamped to `len`. The ranges
    /// tile `0..len` and agree position-by-position with
    /// [`ChunkRouter::shard_of`].
    pub fn bounds(
        epoch_len: usize,
        shards: usize,
        len: usize,
    ) -> impl Iterator<Item = std::ops::Range<usize>> {
        debug_assert!(len <= epoch_len, "epoch cannot exceed its length");
        (0..shards).map(move |i| {
            let start = (i * epoch_len / shards).min(len);
            let end = ((i + 1) * epoch_len / shards).min(len);
            start..end
        })
    }
}

/// Fixed-size batches of an [`InterleavedStream`]; see
/// [`InterleavedStream::chunks`].
pub struct StreamChunks {
    stream: InterleavedStream,
    chunk_len: usize,
}

impl StreamChunks {
    /// The underlying interleaver (e.g. for `per_tenant_emitted`).
    pub fn stream(&self) -> &InterleavedStream {
        &self.stream
    }
}

impl Iterator for StreamChunks {
    type Item = Vec<(usize, Block)>;

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.stream.by_ref().take(self.chunk_len).collect())
    }
}

impl Iterator for InterleavedStream {
    type Item = (usize, Block);

    fn next(&mut self) -> Option<(usize, Block)> {
        // Largest deficit: expected accesses so far minus emitted.
        // Streams are infinite, so some tenant always issues.
        let mut best = (f64::NEG_INFINITY, 0usize);
        for i in 0..self.streams.len() {
            let expected = (self.step + 1) as f64 * self.rates[i] / self.rate_sum;
            let deficit = expected - self.emitted[i] as f64;
            if deficit > best.0 {
                best = (deficit, i);
            }
        }
        let i = best.1;
        let block = self.streams[i].next_block();
        self.emitted[i] += 1;
        self.step += 1;
        Some((i, namespaced(i, block)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn t(blocks: Vec<Block>) -> Trace {
        Trace::new(blocks)
    }

    #[test]
    fn equal_rates_round_robin_like() {
        let a = t(vec![1, 2, 3]);
        let b = t(vec![10, 20, 30]);
        let co = interleave_proportional(&[&a, &b], &[1.0, 1.0], 6);
        assert_eq!(co.len(), 6);
        assert_eq!(co.per_program, vec![3, 3]);
        // Each prefix of length 2k has k from each.
        for k in 1..=3 {
            let cnt = co.accesses[..2 * k]
                .iter()
                .filter(|x| x.program == 0)
                .count();
            assert_eq!(cnt, k);
        }
    }

    #[test]
    fn rates_respected_in_prefixes() {
        let a = t((0..300).collect());
        let b = t((0..300).collect());
        let co = interleave_proportional(&[&a, &b], &[3.0, 1.0], 400);
        let a_count = co.accesses.iter().filter(|x| x.program == 0).count();
        assert_eq!(a_count, 300);
        // The 3:1 ratio holds in every prefix within one access.
        let mut seen0 = 0.0;
        for (i, acc) in co.accesses.iter().enumerate().take(399) {
            if acc.program == 0 {
                seen0 += 1.0;
            }
            let expected = (i + 1) as f64 * 0.75;
            assert!(
                (seen0 - expected).abs() <= 1.0 + 1e-9,
                "prefix {i}: {seen0} vs {expected}"
            );
        }
    }

    #[test]
    fn exhausted_trace_lets_others_continue() {
        let a = t(vec![1]);
        let b = t(vec![10, 20, 30, 40]);
        let co = interleave_proportional(&[&a, &b], &[10.0, 1.0], 10);
        assert_eq!(co.per_program, vec![1, 4]);
        assert_eq!(co.len(), 5);
    }

    #[test]
    fn namespacing_keeps_programs_disjoint() {
        let a = t(vec![5]);
        let b = t(vec![5]);
        let co = interleave_proportional(&[&a, &b], &[1.0, 1.0], 2);
        assert_ne!(co.accesses[0].block, co.accesses[1].block);
        assert_eq!(co.accesses[0].block & 0xFFFF, 5);
        assert_eq!(co.accesses[1].block & 0xFFFF, 5);
    }

    #[test]
    fn empty_input_gives_empty_cotrace() {
        let a = t(vec![]);
        let co = interleave_proportional(&[&a], &[1.0], 5);
        assert!(co.is_empty());
        assert_eq!(co.per_program, vec![0]);
    }

    #[test]
    #[should_panic(expected = "one rate per trace")]
    fn mismatched_rates_panic() {
        let a = t(vec![1]);
        let _ = interleave_proportional(&[&a], &[1.0, 2.0], 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let a = t(vec![1]);
        let _ = interleave_proportional(&[&a], &[0.0], 1);
    }

    #[test]
    fn streaming_interleaver_matches_batch_schedule() {
        // Same rates, same per-tenant sequences → the lazy interleaver
        // must reproduce the batch largest-deficit schedule exactly.
        let specs = [
            WorkloadSpec::SequentialLoop { working_set: 6 },
            WorkloadSpec::UniformRandom { region: 40 },
            WorkloadSpec::Zipfian {
                region: 30,
                alpha: 0.8,
            },
        ];
        let rates = [2.0, 1.0, 3.0];
        let total = 600;
        let traces: Vec<Trace> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.generate(total, i as u64 + 1))
            .collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        let batch = interleave_proportional(&refs, &rates, total);
        let streams = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.stream(i as u64 + 1))
            .collect();
        let mut lazy = InterleavedStream::new(streams, rates.to_vec());
        for (k, co) in batch.accesses.iter().enumerate() {
            let (tenant, block) = lazy.next().expect("infinite stream");
            assert_eq!(tenant, co.program as usize, "step {k}");
            assert_eq!(block, co.block, "step {k}");
        }
        assert_eq!(
            lazy.per_tenant_emitted(),
            batch.per_program.as_slice(),
            "per-tenant counts agree"
        );
    }

    #[test]
    fn streaming_interleaver_namespaces_tenants() {
        let streams = vec![
            WorkloadSpec::SequentialLoop { working_set: 3 }.stream(0),
            WorkloadSpec::SequentialLoop { working_set: 3 }.stream(0),
        ];
        let s = InterleavedStream::new(streams, vec![1.0, 1.0]);
        for (tenant, block) in s.take(50) {
            assert_eq!((block >> PROGRAM_SHIFT) as usize, tenant);
        }
    }

    #[test]
    fn cotrace_tenant_accesses_adapter() {
        let a = t(vec![1, 2]);
        let b = t(vec![10]);
        let co = interleave_proportional(&[&a, &b], &[2.0, 1.0], 3);
        let pairs: Vec<(usize, Block)> = co.tenant_accesses().collect();
        assert_eq!(pairs.len(), 3);
        for (p, acc) in pairs.iter().zip(&co.accesses) {
            assert_eq!(p.0, acc.program as usize);
            assert_eq!(p.1, acc.block);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_streaming_interleaver_panics() {
        let _ = InterleavedStream::new(Vec::new(), Vec::new());
    }

    #[test]
    fn chunks_partition_the_schedule_exactly() {
        let mk = || {
            InterleavedStream::new(
                vec![
                    WorkloadSpec::SequentialLoop { working_set: 6 }.stream(1),
                    WorkloadSpec::UniformRandom { region: 40 }.stream(2),
                ],
                vec![2.0, 1.0],
            )
        };
        let flat: Vec<(usize, Block)> = mk().take(700).collect();
        let chunked: Vec<(usize, Block)> = mk().chunks(150).take(5).flatten().take(700).collect();
        assert_eq!(flat, chunked, "chunking must not disturb the schedule");
        let mut c = mk().chunks(150);
        assert_eq!(c.next().unwrap().len(), 150);
        assert_eq!(c.stream().per_tenant_emitted().iter().sum::<u64>(), 150);
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn zero_length_chunks_panic() {
        let streams = vec![WorkloadSpec::SequentialLoop { working_set: 3 }.stream(0)];
        let _ = InterleavedStream::new(streams, vec![1.0]).chunks(0);
    }

    #[test]
    fn router_agrees_with_materialized_slicing() {
        // For every (epoch_len, shards) combination, routing position by
        // position must land each access in exactly the chunk the
        // batching rule &epoch[i*E/N..(i+1)*E/N] would give it.
        for epoch_len in [1usize, 2, 3, 4, 7, 10, 64, 100] {
            for shards in [1usize, 2, 3, 5, 8, 16] {
                let mut by_slicing = vec![0usize; epoch_len];
                for (i, range) in ChunkRouter::bounds(epoch_len, shards, epoch_len).enumerate() {
                    for slot in &mut by_slicing[range] {
                        *slot = i;
                    }
                }
                let mut router = ChunkRouter::new(epoch_len, shards);
                for (pos, &expect) in by_slicing.iter().enumerate() {
                    assert_eq!(
                        router.next_shard(),
                        expect,
                        "E={epoch_len} N={shards} pos={pos}"
                    );
                }
                // The router wraps into the next epoch identically.
                assert_eq!(router.position(), 0);
                assert_eq!(router.next_shard(), by_slicing[0]);
            }
        }
    }

    #[test]
    fn router_bounds_tile_partial_epochs() {
        // A partial epoch keeps the full-epoch boundaries, clamped.
        let ranges: Vec<_> = ChunkRouter::bounds(10, 4, 6).collect();
        assert_eq!(ranges, vec![0..2, 2..5, 5..6, 6..6]);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 6);
        // More shards than accesses: later shards get empty slices.
        let ranges: Vec<_> = ChunkRouter::bounds(4, 8, 2).collect();
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn router_reset_rewinds_to_epoch_start() {
        let mut r = ChunkRouter::new(8, 2);
        assert_eq!(r.next_shard(), 0);
        assert_eq!(r.position(), 1);
        r.reset();
        assert_eq!(r.position(), 0);
        assert_eq!(r.next_shard(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn router_zero_shards_panics() {
        let _ = ChunkRouter::new(8, 0);
    }

    #[test]
    #[should_panic(expected = "outside epoch")]
    fn router_position_out_of_epoch_panics() {
        let _ = ChunkRouter::shard_of(4, 2, 4);
    }
}
