//! Streaming boundedness: a multi-hundred-megabyte log must flow
//! through the full reader pipeline without the resident buffer ever
//! growing past the fixed scan-buffer cap. The input is synthesized
//! lazily by a generator `Read` — no disk, no materialized input — so
//! the only memory the pipeline can possibly hold is its own.

use cps_traceio::{BlockMap, Strictness, TenantPolicy, TraceFormat, TraceSource};
use std::io::Read;

/// Lazily generates a valid text-format log of `total` bytes: a
/// repeating mix of thread markers, comments, and load ops.
struct SyntheticLog {
    total: u64,
    emitted: u64,
    line: u64,
    pending: Vec<u8>,
}

impl SyntheticLog {
    fn new(total: u64) -> Self {
        SyntheticLog {
            total,
            emitted: 0,
            line: 0,
            pending: Vec::new(),
        }
    }

    fn next_line(&mut self) -> Vec<u8> {
        self.line += 1;
        let n = self.line;
        match n % 64 {
            0 => format!("T {}\n", n % 7).into_bytes(),
            1 => b"# synthetic log line\n".to_vec(),
            _ => format!(
                " L {:x},{}\n",
                (n.wrapping_mul(0x9e37)) % (1 << 30),
                1 + n % 8
            )
            .into_bytes(),
        }
    }
}

impl Read for SyntheticLog {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            if self.emitted >= self.total {
                return Ok(0);
            }
            self.pending = self.next_line();
        }
        let n = self.pending.len().min(buf.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        self.emitted += n as u64;
        Ok(n)
    }
}

/// 120 MB of text log through the full pipeline: every record consumed,
/// resident bytes never above the fixed scan-buffer capacity.
#[test]
fn hundred_megabyte_log_streams_in_constant_memory() {
    const TOTAL: u64 = 120 * 1024 * 1024;
    let mut source = TraceSource::from_read(
        Box::new(SyntheticLog::new(TOTAL)),
        TraceFormat::Text,
        TenantPolicy::Explicit,
        BlockMap::default(),
        8,
        Strictness::Strict,
    );
    let mut records = 0u64;
    let mut checksum = 0u64;
    loop {
        match source.next_record() {
            Ok(Some((tenant, block))) => {
                records += 1;
                checksum = checksum
                    .wrapping_mul(31)
                    .wrapping_add(tenant as u64)
                    .wrapping_add(block);
            }
            Ok(None) => break,
            Err(e) => panic!("streaming a valid log failed: {e}"),
        }
    }
    let stats = source.stats();
    assert!(records > 5_000_000, "only {records} records from 120MB");
    assert!(stats.bytes_read >= TOTAL, "read {} bytes", stats.bytes_read);
    assert!(
        stats.max_resident_bytes <= cps_traceio::scan::DEFAULT_BUF_CAP,
        "resident high-water {} exceeds the {}-byte cap",
        stats.max_resident_bytes,
        cps_traceio::scan::DEFAULT_BUF_CAP
    );
    assert_ne!(checksum, 0, "records were actually consumed");
}
