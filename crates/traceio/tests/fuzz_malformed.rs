//! Malformed-input hardening: whatever bytes arrive — truncated files,
//! bit flips inside valid traces, or arbitrary garbage — every reader
//! must return a typed [`TraceIoError`] or clean records, and must
//! never panic. Lenient mode must always reach end of stream on
//! text/CSV input (every recoverable error skips forward).

use proptest::prelude::*;

use cps_traceio::{
    BinaryWriter, BlockMap, CsvWriter, Strictness, TenantPolicy, TextWriter, TraceFormat,
    TraceSource,
};

/// Drains a source, returning how it ended. The call itself not
/// panicking is the property under test.
fn drain(bytes: &[u8], format: TraceFormat, strictness: Strictness) -> Result<usize, String> {
    let mut source = TraceSource::from_read(
        Box::new(std::io::Cursor::new(bytes.to_vec())),
        format,
        TenantPolicy::Explicit,
        BlockMap::default(),
        usize::MAX,
        strictness,
    );
    let mut n = 0usize;
    loop {
        match source.next_record() {
            Ok(Some(_)) => n += 1,
            Ok(None) => return Ok(n),
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// A structurally valid trace in each format, to be damaged.
fn valid(format: TraceFormat, records: &[(u16, u64)]) -> Vec<u8> {
    let mut buf = Vec::new();
    match format {
        TraceFormat::Binary => {
            let mut w = BinaryWriter::new(&mut buf, 64).unwrap();
            for &(t, b) in records {
                w.write_record(t as u64, b).unwrap();
            }
            w.finish().unwrap();
        }
        TraceFormat::Text => {
            let mut w = TextWriter::new(&mut buf, "fuzz").unwrap();
            for &(t, b) in records {
                w.write_record(t as u64, b).unwrap();
            }
            w.finish().unwrap();
        }
        TraceFormat::Csv => {
            let mut w = CsvWriter::new(&mut buf).unwrap();
            for &(t, b) in records {
                w.write_record(t as u64, b).unwrap();
            }
            w.finish().unwrap();
        }
    }
    buf
}

const FORMATS: [TraceFormat; 3] = [TraceFormat::Binary, TraceFormat::Text, TraceFormat::Csv];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary garbage through every reader, both strictness modes:
    /// no panics, and errors are typed with a printable message.
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        for format in FORMATS {
            for strictness in [Strictness::Strict, Strictness::Lenient] {
                match drain(&bytes, format, strictness) {
                    Ok(_) => {}
                    Err(msg) => prop_assert!(!msg.is_empty()),
                }
            }
        }
    }

    /// Truncating a valid trace at any byte boundary must never panic,
    /// and text/CSV lenient reads must still reach end of stream.
    fn truncation_never_panics(
        records in prop::collection::vec((any::<u16>(), any::<u64>()), 1..40),
        cut_frac in 0.0f64..1.0
    ) {
        for format in FORMATS {
            let full = valid(format, &records);
            let cut = ((full.len() as f64) * cut_frac) as usize;
            let bytes = &full[..cut.min(full.len())];
            let _ = drain(bytes, format, Strictness::Strict);
            let lenient = drain(bytes, format, Strictness::Lenient);
            if format != TraceFormat::Binary {
                prop_assert!(lenient.is_ok(), "{format:?} lenient: {lenient:?}");
            }
        }
    }

    /// Flipping one bit anywhere in a valid trace must never panic; in
    /// lenient mode the text/CSV readers must keep going to the end.
    fn bit_flips_never_panic(
        records in prop::collection::vec((any::<u16>(), any::<u64>()), 1..40),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8
    ) {
        for format in FORMATS {
            let mut bytes = valid(format, &records);
            let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
            bytes[pos] ^= 1 << bit;
            let _ = drain(&bytes, format, Strictness::Strict);
            let lenient = drain(&bytes, format, Strictness::Lenient);
            if format != TraceFormat::Binary {
                prop_assert!(lenient.is_ok(), "{format:?} lenient: {lenient:?}");
            }
        }
    }

    /// A bit flip in the binary *body* (past the header) keeps record
    /// alignment, so lenient binary reads still finish cleanly.
    fn binary_body_flips_stay_aligned(
        records in prop::collection::vec((any::<u16>(), any::<u64>()), 1..40),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8
    ) {
        let mut bytes = valid(TraceFormat::Binary, &records);
        let body = cps_traceio::binary::HEADER_LEN;
        let pos = body + (((bytes.len() - body) as f64) * pos_frac) as usize % (bytes.len() - body);
        bytes[pos] ^= 1 << bit;
        let got = drain(&bytes, TraceFormat::Binary, Strictness::Lenient);
        prop_assert_eq!(got, Ok(records.len()));
    }
}
