//! Cross-format identity: the same canonical records, written through
//! each of the three format writers and read back through the full
//! [`TraceSource`] pipeline, must reproduce the identical stream —
//! this is the property that lets every engine, CLI command, and wire
//! path accept any format interchangeably.

use cps_traceio::{
    BinaryWriter, BlockMap, CsvWriter, Strictness, TenantPolicy, TextWriter, TraceFormat,
    TraceSource,
};

/// A deterministic pseudo-random record mix: several tenants, block
/// ids spread over small and huge (namespaced) ranges, tenant switches
/// at irregular strides.
fn records(n: usize) -> Vec<(usize, u64)> {
    let mut out = Vec::with_capacity(n);
    let mut x = 0x2545f4914f6cdd1du64;
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let tenant = (x % 5) as usize;
        let base = (tenant as u64) << 48;
        let block = base | ((x >> 32) % 10_000);
        out.push((tenant, block));
        if i % 97 == 0 {
            out.push((0, 7)); // a recurring hot block
        }
    }
    out
}

fn write_all(records: &[(usize, u64)]) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let mut bin = Vec::new();
    let mut w = BinaryWriter::new(&mut bin, 1).unwrap();
    for &(t, b) in records {
        w.write_record(t as u64, b).unwrap();
    }
    w.finish().unwrap();

    let mut text = Vec::new();
    let mut w = TextWriter::new(&mut text, "identity test").unwrap();
    for &(t, b) in records {
        w.write_record(t as u64, b).unwrap();
    }
    w.finish().unwrap();

    let mut csv = Vec::new();
    let mut w = CsvWriter::new(&mut csv).unwrap();
    for &(t, b) in records {
        w.write_record(t as u64, b).unwrap();
    }
    w.finish().unwrap();

    (bin, text, csv)
}

fn read_back(bytes: Vec<u8>, format: TraceFormat, map: BlockMap) -> Vec<(usize, u64)> {
    let mut source = TraceSource::from_read(
        Box::new(std::io::Cursor::new(bytes)),
        format,
        TenantPolicy::Explicit,
        map,
        5,
        Strictness::Strict,
    );
    let mut got = Vec::new();
    while let Some(r) = source.next_record().unwrap() {
        got.push(r);
    }
    got
}

#[test]
fn all_three_formats_reproduce_the_same_stream() {
    let want = records(5_000);
    let (bin, text, csv) = write_all(&want);
    // Binary declares itself pre-mapped, so even the default 64-byte
    // map must leave its block ids alone; text and CSV carry block ids
    // as addresses, so they are read at identity granularity.
    assert_eq!(
        read_back(bin, TraceFormat::Binary, BlockMap::default()),
        want
    );
    assert_eq!(
        read_back(text, TraceFormat::Text, BlockMap::identity()),
        want
    );
    assert_eq!(read_back(csv, TraceFormat::Csv, BlockMap::identity()), want);
}

#[test]
fn sniffing_agrees_with_the_declared_format() {
    let want = records(200);
    let (bin, text, csv) = write_all(&want);
    assert_eq!(TraceFormat::sniff(&bin), TraceFormat::Binary);
    assert_eq!(TraceFormat::sniff(&text), TraceFormat::Text);
    assert_eq!(TraceFormat::sniff(&csv), TraceFormat::Csv);
}

#[test]
fn set_hash_applies_identically_across_formats() {
    let want = records(1_000);
    let (bin, text, csv) = write_all(&want);
    let hashed = |map: BlockMap| BlockMap {
        set_hash: true,
        ..map
    };
    let a = read_back(bin, TraceFormat::Binary, hashed(BlockMap::default()));
    let b = read_back(text, TraceFormat::Text, hashed(BlockMap::identity()));
    let c = read_back(csv, TraceFormat::Csv, hashed(BlockMap::identity()));
    assert_eq!(a, b);
    assert_eq!(b, c);
    assert_ne!(
        a.iter().map(|&(_, b)| b).collect::<Vec<_>>(),
        want.iter().map(|&(_, b)| b).collect::<Vec<_>>(),
        "set-hash must actually permute block ids"
    );
}
