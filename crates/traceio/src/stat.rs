//! Streaming whole-trace statistics with bounded memory.
//!
//! `cps trace stat` must summarize a multi-GB log in one pass, so
//! nothing here is allowed to grow with the trace: the tenant histogram
//! caps the number of distinct tenants it tracks, and the distinct-block
//! footprint is exact only up to a threshold, after which it degrades to
//! a HyperLogLog sketch (4096 registers, splitmix64-hashed) with a
//! typical error around 1.6%.

use crate::map::splitmix64;
use std::collections::{HashMap, HashSet};

/// Exact distinct counting up to this many blocks; then the sketch
/// takes over.
pub const EXACT_DISTINCT_CAP: usize = 1 << 17;

/// Distinct tenants tracked individually in the histogram.
pub const TENANT_HISTOGRAM_CAP: usize = 4096;

const HLL_P: u32 = 12;
const HLL_M: usize = 1 << HLL_P;

/// Exact-then-sketch distinct counter.
pub struct DistinctSketch {
    exact: Option<HashSet<u64>>,
    registers: Box<[u8]>,
}

impl Default for DistinctSketch {
    fn default() -> Self {
        DistinctSketch {
            exact: Some(HashSet::new()),
            registers: vec![0u8; HLL_M].into_boxed_slice(),
        }
    }
}

impl DistinctSketch {
    /// Observes one value.
    pub fn insert(&mut self, v: u64) {
        let h = splitmix64(v);
        let idx = (h >> (64 - HLL_P)) as usize;
        let rank = ((h << HLL_P) | 1).leading_zeros() as u8 + 1;
        if self.registers[idx] < rank {
            self.registers[idx] = rank;
        }
        if let Some(set) = &mut self.exact {
            set.insert(v);
            if set.len() > EXACT_DISTINCT_CAP {
                self.exact = None;
            }
        }
    }

    /// The count: `(value, exact?)`.
    pub fn estimate(&self) -> (u64, bool) {
        if let Some(set) = &self.exact {
            return (set.len() as u64, true);
        }
        let m = HLL_M as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let mut e = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if e <= 2.5 * m && zeros > 0 {
            e = m * (m / zeros as f64).ln();
        }
        (e.round() as u64, false)
    }
}

/// One-pass bounded-memory trace statistics.
#[derive(Default)]
pub struct StatCollector {
    records: u64,
    per_tenant: HashMap<usize, u64>,
    tenant_overflow: u64,
    distinct: DistinctSketch,
    block_min: Option<u64>,
    block_max: Option<u64>,
}

impl StatCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one canonical record.
    pub fn observe(&mut self, tenant: usize, block: u64) {
        self.records += 1;
        if self.per_tenant.len() < TENANT_HISTOGRAM_CAP || self.per_tenant.contains_key(&tenant) {
            *self.per_tenant.entry(tenant).or_insert(0) += 1;
        } else {
            self.tenant_overflow += 1;
        }
        self.distinct.insert(block);
        self.block_min = Some(self.block_min.map_or(block, |m| m.min(block)));
        self.block_max = Some(self.block_max.map_or(block, |m| m.max(block)));
    }

    /// Finalizes into a report.
    pub fn report(&self) -> StatReport {
        let mut tenants: Vec<(usize, u64)> =
            self.per_tenant.iter().map(|(&t, &n)| (t, n)).collect();
        tenants.sort_unstable();
        let (distinct_blocks, distinct_exact) = self.distinct.estimate();
        StatReport {
            records: self.records,
            tenants,
            tenant_overflow: self.tenant_overflow,
            distinct_blocks,
            distinct_exact,
            block_min: self.block_min,
            block_max: self.block_max,
        }
    }
}

/// The finished statistics of one trace read.
#[derive(Clone, Debug)]
pub struct StatReport {
    /// Canonical records observed.
    pub records: u64,
    /// `(tenant, records)` pairs, sorted by tenant id.
    pub tenants: Vec<(usize, u64)>,
    /// Records attributed past the tenant-histogram cap.
    pub tenant_overflow: u64,
    /// Distinct blocks (exact or sketched; see `distinct_exact`).
    pub distinct_blocks: u64,
    /// True if `distinct_blocks` is an exact count.
    pub distinct_exact: bool,
    /// Smallest block id seen.
    pub block_min: Option<u64>,
    /// Largest block id seen.
    pub block_max: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_traces_are_exact() {
        let mut c = StatCollector::new();
        for i in 0..1000u64 {
            c.observe((i % 3) as usize, i % 100);
        }
        let r = c.report();
        assert_eq!(r.records, 1000);
        assert_eq!(r.distinct_blocks, 100);
        assert!(r.distinct_exact);
        assert_eq!(r.tenants.len(), 3);
        assert_eq!(r.tenants[0], (0, 334));
        assert_eq!(r.block_min, Some(0));
        assert_eq!(r.block_max, Some(99));
        assert_eq!(r.tenant_overflow, 0);
    }

    #[test]
    fn sketch_takes_over_past_the_cap_within_tolerance() {
        let n = (EXACT_DISTINCT_CAP * 4) as u64;
        let mut c = StatCollector::new();
        for i in 0..n {
            c.observe(0, i);
        }
        let r = c.report();
        assert!(!r.distinct_exact);
        let err = (r.distinct_blocks as f64 - n as f64).abs() / n as f64;
        assert!(err < 0.05, "sketch error {err:.3} on {n} distinct");
    }

    #[test]
    fn sketch_estimate_is_deterministic() {
        let run = || {
            let mut s = DistinctSketch::default();
            for i in 0..500_000u64 {
                s.insert(i.wrapping_mul(0x9e3779b97f4a7c15));
            }
            s.estimate()
        };
        assert_eq!(run(), run());
    }
}
