//! Typed parse errors with line and byte offsets.
//!
//! Every way an external trace can be malformed is a variant here, never
//! a panic. Errors carry the *global byte offset* into the input stream
//! (and the 1-based line number for the text formats) so a user can seek
//! straight to the damage in a multi-GB log. Variants split into two
//! classes:
//!
//! * **recoverable** — one bad line or record; a lenient reader skips
//!   it, counts it, and carries on ([`TraceIoError::is_recoverable`]);
//! * **fatal** — the stream itself is broken (I/O failure, bad magic,
//!   truncated binary tail) and no later byte can be trusted.

/// Everything that can go wrong while reading an external trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying reader failed at `offset`.
    Io {
        /// Global byte offset where the read failed.
        offset: u64,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// A line or record that does not parse under the format grammar.
    Malformed {
        /// 1-based line number (0 for record-oriented formats).
        line: u64,
        /// Global byte offset of the start of the offending input.
        offset: u64,
        /// What was wrong, in plain words.
        what: String,
        /// The offending input, truncated for display.
        snippet: String,
    },
    /// A text line longer than the reader's fixed buffer.
    LineTooLong {
        /// 1-based line number.
        line: u64,
        /// Global byte offset of the start of the line.
        offset: u64,
        /// The fixed buffer capacity the line overflowed.
        cap: usize,
    },
    /// A binary stream that does not start with the `CPST` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// A binary stream with a version this reader does not speak.
    UnsupportedVersion {
        /// The version field found in the header.
        found: u16,
    },
    /// A binary header with flag bits this reader does not know.
    BadFlags {
        /// The flags field found in the header.
        found: u16,
    },
    /// A binary stream that ends in the middle of a record or header.
    TruncatedRecord {
        /// Global byte offset of the start of the partial record.
        offset: u64,
        /// Bytes present.
        have: usize,
        /// Bytes a whole record needs.
        need: usize,
    },
    /// A resolved tenant id at or past the run's tenant count.
    TenantOutOfRange {
        /// 1-based line number (0 for record-oriented formats).
        line: u64,
        /// Global byte offset of the record.
        offset: u64,
        /// The tenant the record resolved to.
        tenant: u64,
        /// The run's tenant count (valid ids are `0..tenants`).
        tenants: usize,
    },
    /// A thread id with no entry in the thread-to-tenant map.
    UnmappedThread {
        /// 1-based line number (0 for record-oriented formats).
        line: u64,
        /// Global byte offset of the record.
        offset: u64,
        /// The unmapped thread id.
        thread: u64,
    },
}

impl TraceIoError {
    /// True if a lenient reader may skip the offending input and
    /// continue; false if the stream is unusable past this point.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            TraceIoError::Malformed { .. }
                | TraceIoError::LineTooLong { .. }
                | TraceIoError::TenantOutOfRange { .. }
                | TraceIoError::UnmappedThread { .. }
        )
    }

    /// The global byte offset the error points at, when it has one.
    pub fn offset(&self) -> Option<u64> {
        match self {
            TraceIoError::Io { offset, .. }
            | TraceIoError::Malformed { offset, .. }
            | TraceIoError::LineTooLong { offset, .. }
            | TraceIoError::TruncatedRecord { offset, .. }
            | TraceIoError::TenantOutOfRange { offset, .. }
            | TraceIoError::UnmappedThread { offset, .. } => Some(*offset),
            TraceIoError::BadMagic { .. }
            | TraceIoError::UnsupportedVersion { .. }
            | TraceIoError::BadFlags { .. } => None,
        }
    }
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io { offset, source } => {
                write!(f, "read failed at byte {offset}: {source}")
            }
            TraceIoError::Malformed {
                line,
                offset,
                what,
                snippet,
            } => {
                if *line > 0 {
                    write!(f, "line {line} (byte {offset}): {what}: `{snippet}`")
                } else {
                    write!(f, "byte {offset}: {what}: `{snippet}`")
                }
            }
            TraceIoError::LineTooLong { line, offset, cap } => write!(
                f,
                "line {line} (byte {offset}) exceeds the {cap}-byte line buffer"
            ),
            TraceIoError::BadMagic { found } => write!(
                f,
                "not a cps binary trace: magic {:02x?} (wanted `CPST`)",
                found
            ),
            TraceIoError::UnsupportedVersion { found } => {
                write!(f, "binary trace version {found} is not supported (have 1)")
            }
            TraceIoError::BadFlags { found } => {
                write!(f, "binary trace header carries unknown flags {found:#06x}")
            }
            TraceIoError::TruncatedRecord { offset, have, need } => write!(
                f,
                "binary trace truncated at byte {offset}: {have} bytes of a {need}-byte record"
            ),
            TraceIoError::TenantOutOfRange {
                line,
                offset,
                tenant,
                tenants,
            } => {
                if *line > 0 {
                    write!(
                        f,
                        "line {line} (byte {offset}): tenant {tenant} out of range \
                         (run has {tenants} tenants, ids 0..{tenants})"
                    )
                } else {
                    write!(
                        f,
                        "byte {offset}: tenant {tenant} out of range \
                         (run has {tenants} tenants, ids 0..{tenants})"
                    )
                }
            }
            TraceIoError::UnmappedThread {
                line,
                offset,
                thread,
            } => {
                if *line > 0 {
                    write!(
                        f,
                        "line {line} (byte {offset}): thread {thread} has no tenant mapping"
                    )
                } else {
                    write!(f, "byte {offset}: thread {thread} has no tenant mapping")
                }
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Truncates raw input bytes into a printable snippet for error text.
pub(crate) fn snippet_of(bytes: &[u8]) -> String {
    const MAX: usize = 48;
    let printable: String = bytes
        .iter()
        .take(MAX)
        .map(|&b| {
            if (0x20..0x7f).contains(&b) {
                b as char
            } else {
                '.'
            }
        })
        .collect();
    if bytes.len() > MAX {
        format!("{printable}…")
    } else {
        printable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverable_classes() {
        let m = TraceIoError::Malformed {
            line: 3,
            offset: 40,
            what: "bad address".into(),
            snippet: "xyz".into(),
        };
        assert!(m.is_recoverable());
        assert_eq!(m.offset(), Some(40));
        let t = TraceIoError::TruncatedRecord {
            offset: 10,
            have: 3,
            need: 10,
        };
        assert!(!t.is_recoverable());
        assert!(!TraceIoError::BadMagic { found: *b"nope" }.is_recoverable());
    }

    #[test]
    fn display_names_line_and_offset() {
        let m = TraceIoError::Malformed {
            line: 7,
            offset: 123,
            what: "bad size".into(),
            snippet: "L ff,q".into(),
        };
        let s = m.to_string();
        assert!(s.contains("line 7"), "{s}");
        assert!(s.contains("byte 123"), "{s}");
        assert!(s.contains("bad size"), "{s}");
    }

    #[test]
    fn snippet_truncates_and_masks() {
        let long: Vec<u8> = (0..100u8).collect();
        let s = snippet_of(&long);
        assert!(s.chars().count() <= 49);
        assert!(s.ends_with('…'));
        assert_eq!(snippet_of(b"abc\x01"), "abc.");
    }
}
