//! Streaming ingestion of external memory traces.
//!
//! This crate is the real-trace front door for the partition-sharing
//! engines: it turns on-disk logs in three formats — a
//! cachegrind-flavored text log ([`text`]), `addr,tenant,tstamp` CSV
//! ([`csv`]), and a compact little-endian binary format ([`binary`]) —
//! into one canonical stream of `(tenant, block)` records that every
//! engine, CLI command, and wire path consumes identically.
//!
//! The pipeline is
//!
//! ```text
//! bytes ──reader──▶ RawOp ──tenancy──▶ tenant ──block map──▶ records
//! ```
//!
//! * a format reader ([`TextReader`], [`CsvReader`], [`BinaryReader`])
//!   yields raw ops `(thread, addr, size)`;
//! * a [`TenantPolicy`] resolves each op's thread to a tenant id
//!   (explicit column, thread-id map, first-seen, or round-robin);
//! * a [`BlockMap`] maps byte addresses to block ids (configurable
//!   block size, optional set-hash), expanding wide accesses into one
//!   record per block touched.
//!
//! [`TraceSource`] drives the pipeline and is the only type most
//! callers need. Memory is strictly bounded no matter the input size:
//! every reader runs over a fixed buffer ([`ByteScanner`]) and parses
//! incrementally, so multi-GB logs stream in constant space — the
//! high-water mark is observable via
//! [`SourceStats::max_resident_bytes`].
//!
//! Errors are typed ([`TraceIoError`]) and positioned (line and byte
//! offset); malformed input never panics. [`Strictness::Lenient`] skips
//! recoverable damage and reports it, [`Strictness::Strict`] stops at
//! the first problem.

#![warn(missing_docs)]

pub mod binary;
pub mod csv;
pub mod error;
pub mod map;
pub mod metrics;
mod num;
pub mod scan;
pub mod source;
pub mod stat;
pub mod tenancy;
pub mod text;

pub use binary::{BinaryHeader, BinaryReader, BinaryWriter};
pub use csv::{CsvReader, CsvWriter};
pub use error::TraceIoError;
pub use map::BlockMap;
pub use metrics::TraceIoMetrics;
pub use scan::ByteScanner;
pub use source::{
    RawOp, RawTraceReader, Records, SourceStats, Strictness, TraceFormat, TraceSource,
};
pub use stat::{StatCollector, StatReport};
pub use tenancy::{TenantPolicy, TenantResolver};
pub use text::{TextReader, TextWriter};
