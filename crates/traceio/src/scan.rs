//! Fixed-buffer incremental scanning over any byte stream.
//!
//! [`ByteScanner`] is the memory-boundedness guarantee behind every
//! reader in this crate: it owns one fixed-capacity buffer (allocated
//! once, never grown) and serves lines or exact-length byte runs out of
//! it, refilling from the underlying [`Read`] as needed. A multi-GB log
//! therefore streams through at most `capacity` resident bytes, and the
//! high-water mark is observable via
//! [`ByteScanner::max_resident_bytes`] so tests can *assert* the bound
//! instead of trusting it.

use crate::error::TraceIoError;
use std::io::Read;

/// Default fixed buffer capacity: 64 KiB.
pub const DEFAULT_BUF_CAP: usize = 64 * 1024;

/// A line or record scanner with one fixed, never-growing buffer.
pub struct ByteScanner<R: Read> {
    inner: R,
    buf: Box<[u8]>,
    start: usize,
    end: usize,
    /// Global stream offset of `buf[start]`.
    offset: u64,
    eof: bool,
    max_resident: usize,
    bytes_read: u64,
}

impl<R: Read> ByteScanner<R> {
    /// Wraps `inner` with the default 64 KiB buffer.
    pub fn new(inner: R) -> Self {
        Self::with_capacity(inner, DEFAULT_BUF_CAP)
    }

    /// Wraps `inner` with a fixed buffer of `cap` bytes.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn with_capacity(inner: R, cap: usize) -> Self {
        assert!(cap > 0, "scanner buffer needs at least one byte");
        ByteScanner {
            inner,
            buf: vec![0u8; cap].into_boxed_slice(),
            start: 0,
            end: 0,
            offset: 0,
            eof: false,
            max_resident: 0,
            bytes_read: 0,
        }
    }

    /// The fixed buffer capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Global stream offset of the next unconsumed byte.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Total bytes pulled from the underlying reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// High-water mark of resident (buffered, unconsumed) bytes — by
    /// construction never more than [`ByteScanner::capacity`].
    pub fn max_resident_bytes(&self) -> usize {
        self.max_resident
    }

    /// Compacts and refills the buffer; returns bytes newly read (0 at
    /// EOF or when the buffer is already full).
    fn fill(&mut self) -> Result<usize, TraceIoError> {
        if self.eof {
            return Ok(0);
        }
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.end == self.buf.len() {
            return Ok(0); // full: caller decides (line too long / record fits)
        }
        let got = self
            .inner
            .read(&mut self.buf[self.end..])
            .map_err(|e| TraceIoError::Io {
                offset: self.offset + (self.end - self.start) as u64,
                source: e,
            })?;
        if got == 0 {
            self.eof = true;
        }
        self.end += got;
        self.bytes_read += got as u64;
        self.max_resident = self.max_resident.max(self.end - self.start);
        Ok(got)
    }

    fn advance(&mut self, n: usize) {
        debug_assert!(self.start + n <= self.end);
        self.start += n;
        self.offset += n as u64;
    }

    /// The next line, without its terminator (`\n`, with a preceding
    /// `\r` stripped), plus the global byte offset of its first byte.
    /// Returns `Ok(None)` at a clean end of stream. A line longer than
    /// the buffer is a recoverable [`TraceIoError::LineTooLong`] —
    /// follow it with [`ByteScanner::discard_line`] to resynchronize.
    ///
    /// `line` is the 1-based number reported in the error.
    pub fn next_line(&mut self, line: u64) -> Result<Option<(&[u8], u64)>, TraceIoError> {
        loop {
            let window = &self.buf[self.start..self.end];
            if let Some(nl) = window.iter().position(|&b| b == b'\n') {
                let line_offset = self.offset;
                let mut len = nl;
                if len > 0 && self.buf[self.start + len - 1] == b'\r' {
                    len -= 1;
                }
                let range = self.start..self.start + len;
                self.advance(nl + 1);
                return Ok(Some((&self.buf[range], line_offset)));
            }
            if self.eof {
                if self.start == self.end {
                    return Ok(None);
                }
                // Final line without a trailing newline.
                let line_offset = self.offset;
                let mut len = self.end - self.start;
                if self.buf[self.start + len - 1] == b'\r' {
                    len -= 1;
                }
                let range = self.start..self.start + len;
                self.advance(self.end - self.start);
                return Ok(Some((&self.buf[range], line_offset)));
            }
            if self.end - self.start == self.buf.len() {
                return Err(TraceIoError::LineTooLong {
                    line,
                    offset: self.offset,
                    cap: self.buf.len(),
                });
            }
            self.fill()?;
        }
    }

    /// Drops input until just past the next newline (or EOF) without
    /// ever holding more than the fixed buffer — the lenient-mode
    /// recovery for [`TraceIoError::LineTooLong`].
    pub fn discard_line(&mut self) -> Result<(), TraceIoError> {
        loop {
            let window = &self.buf[self.start..self.end];
            if let Some(nl) = window.iter().position(|&b| b == b'\n') {
                self.advance(nl + 1);
                return Ok(());
            }
            let len = self.end - self.start;
            self.advance(len);
            if self.eof {
                return Ok(());
            }
            self.fill()?;
        }
    }

    /// Exactly `n` bytes, or `Ok(None)` at a clean record boundary at
    /// EOF, or [`TraceIoError::TruncatedRecord`] when the stream dies
    /// mid-record.
    ///
    /// # Panics
    /// Panics if `n` exceeds the buffer capacity or is zero.
    pub fn next_exact(&mut self, n: usize) -> Result<Option<&[u8]>, TraceIoError> {
        assert!(n > 0 && n <= self.buf.len(), "record must fit the buffer");
        while self.end - self.start < n {
            if self.eof {
                let have = self.end - self.start;
                if have == 0 {
                    return Ok(None);
                }
                let offset = self.offset;
                self.advance(have);
                return Err(TraceIoError::TruncatedRecord {
                    offset,
                    have,
                    need: n,
                });
            }
            self.fill()?;
        }
        let range = self.start..self.start + n;
        self.advance(n);
        Ok(Some(&self.buf[range]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_with_mixed_endings() {
        let mut s = ByteScanner::new(&b"one\ntwo\r\nthree"[..]);
        let (l, off) = s.next_line(1).unwrap().unwrap();
        assert_eq!((l, off), (&b"one"[..], 0));
        let (l, off) = s.next_line(2).unwrap().unwrap();
        assert_eq!((l, off), (&b"two"[..], 4));
        let (l, off) = s.next_line(3).unwrap().unwrap();
        assert_eq!((l, off), (&b"three"[..], 9));
        assert!(s.next_line(4).unwrap().is_none());
        assert_eq!(s.bytes_read(), 14);
    }

    #[test]
    fn line_longer_than_buffer_is_typed_and_skippable() {
        let data = b"short\naaaaaaaaaaaaaaaaaaaaaaaa\nafter\n";
        let mut s = ByteScanner::with_capacity(&data[..], 8);
        assert_eq!(s.next_line(1).unwrap().unwrap().0, b"short");
        match s.next_line(2) {
            Err(TraceIoError::LineTooLong {
                line: 2, cap: 8, ..
            }) => {}
            other => panic!("wanted LineTooLong, got {other:?}"),
        }
        s.discard_line().unwrap();
        assert_eq!(s.next_line(3).unwrap().unwrap().0, b"after");
        assert!(s.max_resident_bytes() <= 8);
    }

    #[test]
    fn exact_records_and_truncation() {
        let mut s = ByteScanner::with_capacity(&[1u8, 2, 3, 4, 5, 6, 7][..], 4);
        assert_eq!(s.next_exact(3).unwrap().unwrap(), &[1, 2, 3]);
        assert_eq!(s.next_exact(3).unwrap().unwrap(), &[4, 5, 6]);
        match s.next_exact(3) {
            Err(TraceIoError::TruncatedRecord {
                offset: 6,
                have: 1,
                need: 3,
            }) => {}
            other => panic!("wanted TruncatedRecord, got {other:?}"),
        }
        assert_eq!(s.next_exact(3).unwrap(), None, "EOF after the error");
    }

    #[test]
    fn resident_bytes_stay_bounded_on_large_input() {
        let line = b"0123456789\n";
        let body: Vec<u8> = line.iter().copied().cycle().take(1 << 20).collect();
        let mut s = ByteScanner::with_capacity(&body[..], 256);
        let mut n = 0u64;
        let mut lines = 0u64;
        while let Some((l, _)) = s.next_line(lines + 1).unwrap() {
            n += l.len() as u64;
            lines += 1;
        }
        assert!(lines > 90_000);
        assert!(n > 900_000);
        assert!(s.max_resident_bytes() <= 256);
        assert_eq!(s.bytes_read(), 1 << 20);
    }
}
