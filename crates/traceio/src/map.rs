//! Address-to-cache-block mapping.
//!
//! External traces speak byte addresses; the engines speak abstract
//! cache-block identifiers. [`BlockMap`] is the bridge: a configurable
//! block size (any positive number of bytes, 64 by default) plus an
//! optional set-hash that scatters block ids through a splitmix64
//! finalizer — useful when a trace's physical layout would otherwise
//! alias heavily in a set-indexed simulation. An access of `size` bytes
//! at `addr` touches every block overlapping `[addr, addr + size)`, so
//! one wide store can legitimately become several records.

/// How byte addresses become cache-block identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMap {
    /// Bytes per cache block; 1 means addresses already *are* block ids.
    pub block_bytes: u64,
    /// Scatter block ids through a splitmix64 finalizer after mapping.
    pub set_hash: bool,
}

impl Default for BlockMap {
    fn default() -> Self {
        BlockMap {
            block_bytes: 64,
            set_hash: false,
        }
    }
}

/// The splitmix64 finalizer — a cheap, invertible 64-bit mix.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl BlockMap {
    /// The identity mapping: addresses are block ids, no hashing.
    pub fn identity() -> Self {
        BlockMap {
            block_bytes: 1,
            set_hash: false,
        }
    }

    /// Block id of the block containing `addr` (before hashing).
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_bytes
    }

    /// Applies the optional set-hash to a block id.
    #[inline]
    pub fn finish(&self, block: u64) -> u64 {
        if self.set_hash {
            splitmix64(block)
        } else {
            block
        }
    }

    /// The inclusive block-id range touched by an access of `size`
    /// (clamped to at least 1) bytes at `addr`, before hashing.
    #[inline]
    pub fn span(&self, addr: u64, size: u64) -> (u64, u64) {
        let last_byte = addr.saturating_add(size.max(1) - 1);
        (self.block_of(addr), self.block_of(last_byte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_64_byte_blocks() {
        let m = BlockMap::default();
        assert_eq!(m.block_of(0), 0);
        assert_eq!(m.block_of(63), 0);
        assert_eq!(m.block_of(64), 1);
        assert_eq!(m.finish(5), 5);
    }

    #[test]
    fn span_covers_straddling_accesses() {
        let m = BlockMap::default();
        assert_eq!(m.span(60, 8), (0, 1)); // crosses one boundary
        assert_eq!(m.span(0, 64), (0, 0));
        assert_eq!(m.span(0, 65), (0, 1));
        assert_eq!(m.span(128, 1), (2, 2));
        assert_eq!(m.span(10, 0), (0, 0)); // size 0 clamps to 1 byte
        assert_eq!(m.span(u64::MAX, 16).1, u64::MAX / 64); // no overflow
    }

    #[test]
    fn identity_mapping_is_transparent() {
        let m = BlockMap::identity();
        assert_eq!(m.span(1234, 1), (1234, 1234));
        assert_eq!(m.finish(1234), 1234);
    }

    #[test]
    fn set_hash_scatters_deterministically() {
        let m = BlockMap {
            block_bytes: 64,
            set_hash: true,
        };
        assert_eq!(m.finish(7), m.finish(7));
        assert_ne!(m.finish(7), m.finish(8));
        assert_ne!(m.finish(7), 7, "hash must actually scatter");
    }
}
