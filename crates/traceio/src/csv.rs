//! The `addr,tenant,tstamp` comma-separated format.
//!
//! One access per row. Columns:
//!
//! 1. `addr` — required; decimal or `0x`-prefixed hex byte address;
//! 2. `tenant` — optional; decimal tenant id (defaults to 0 when the
//!    column is absent — pair with a round-robin tenancy policy for
//!    traces with no attribution);
//! 3. `tstamp` — optional; decimal timestamp, validated and carried to
//!    the stat report but not into the canonical records (the engines
//!    are access-clocked).
//!
//! A header row is recognized by a non-numeric first field and skipped.
//! Blank lines and `#` comments are ignored; spaces around fields are
//! trimmed; extra columns are malformed.

use crate::error::{snippet_of, TraceIoError};
use crate::num::{parse_addr, parse_dec, trim};
use crate::scan::ByteScanner;
use crate::source::{RawOp, RawTraceReader};
use std::io::{Read, Write};

/// Streaming reader for the CSV format.
pub struct CsvReader<R: Read> {
    scan: ByteScanner<R>,
    line: u64,
    header_seen: bool,
    tstamp_min: Option<u64>,
    tstamp_max: Option<u64>,
}

impl<R: Read> CsvReader<R> {
    /// Wraps `inner` with the default fixed scan buffer.
    pub fn new(inner: R) -> Self {
        Self::with_capacity(inner, crate::scan::DEFAULT_BUF_CAP)
    }

    /// Wraps `inner` with a fixed scan buffer of `cap` bytes.
    pub fn with_capacity(inner: R, cap: usize) -> Self {
        CsvReader {
            scan: ByteScanner::with_capacity(inner, cap),
            line: 0,
            header_seen: false,
            tstamp_min: None,
            tstamp_max: None,
        }
    }

    /// The `(min, max)` timestamp span seen, when the column is present.
    pub fn tstamp_span(&self) -> Option<(u64, u64)> {
        Some((self.tstamp_min?, self.tstamp_max?))
    }
}

impl<R: Read> RawTraceReader for CsvReader<R> {
    fn next_op(&mut self) -> Result<Option<RawOp>, TraceIoError> {
        loop {
            self.line += 1;
            let lineno = self.line;
            let first_data = !self.header_seen;
            let Some((raw, offset)) = self.scan.next_line(lineno)? else {
                return Ok(None);
            };
            let t = trim(raw);
            if t.is_empty() || t.starts_with(b"#") {
                continue;
            }
            let mut fields = t.split(|&b| b == b',');
            let addr_field = trim(fields.next().unwrap_or(b""));
            let tenant_field = fields.next().map(trim);
            let tstamp_field = fields.next().map(trim);
            if fields.next().is_some() {
                return Err(TraceIoError::Malformed {
                    line: lineno,
                    offset,
                    what: "too many columns (want addr[,tenant[,tstamp]])".into(),
                    snippet: snippet_of(t),
                });
            }
            let Some(addr) = parse_addr(addr_field) else {
                // The first non-numeric row is the header; later ones
                // are malformed.
                if first_data {
                    self.header_seen = true;
                    continue;
                }
                return Err(TraceIoError::Malformed {
                    line: lineno,
                    offset,
                    what: "bad address".into(),
                    snippet: snippet_of(t),
                });
            };
            self.header_seen = true;
            let tenant = match tenant_field {
                None => 0,
                Some(b"") => 0,
                Some(f) => parse_dec(f).ok_or_else(|| TraceIoError::Malformed {
                    line: lineno,
                    offset,
                    what: "bad tenant".into(),
                    snippet: snippet_of(t),
                })?,
            };
            if let Some(f) = tstamp_field {
                if !f.is_empty() {
                    let ts = parse_dec(f).ok_or_else(|| TraceIoError::Malformed {
                        line: lineno,
                        offset,
                        what: "bad tstamp".into(),
                        snippet: snippet_of(t),
                    })?;
                    self.tstamp_min = Some(self.tstamp_min.map_or(ts, |m| m.min(ts)));
                    self.tstamp_max = Some(self.tstamp_max.map_or(ts, |m| m.max(ts)));
                }
            }
            return Ok(Some(RawOp {
                thread: tenant,
                addr,
                size: 1,
                line: lineno,
                offset,
            }));
        }
    }

    fn resync(&mut self) -> Result<(), TraceIoError> {
        self.scan.discard_line()
    }

    fn bytes_read(&self) -> u64 {
        self.scan.bytes_read()
    }

    fn max_resident_bytes(&self) -> usize {
        self.scan.max_resident_bytes()
    }
}

/// Writes canonical `(tenant, addr)` records as CSV rows under an
/// `addr,tenant` header.
pub struct CsvWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> CsvWriter<W> {
    /// Starts a writer, emitting the header row.
    pub fn new(mut out: W) -> std::io::Result<Self> {
        writeln!(out, "addr,tenant")?;
        Ok(CsvWriter { out, records: 0 })
    }

    /// Appends one record.
    pub fn write_record(&mut self, tenant: u64, addr: u64) -> std::io::Result<()> {
        writeln!(self.out, "{addr},{tenant}")?;
        self.records += 1;
        Ok(())
    }

    /// Flushes and returns the record count.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.out.flush()?;
        Ok(self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(text: &str) -> Result<Vec<RawOp>, TraceIoError> {
        let mut r = CsvReader::new(text.as_bytes());
        let mut out = Vec::new();
        while let Some(op) = r.next_op()? {
            out.push(op);
        }
        Ok(out)
    }

    #[test]
    fn rows_with_and_without_optional_columns() {
        let got = ops("addr,tenant,tstamp\n100,2,900\n0x40, 1\n7\n").unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!((got[0].addr, got[0].thread), (100, 2));
        assert_eq!((got[1].addr, got[1].thread), (0x40, 1));
        assert_eq!((got[2].addr, got[2].thread), (7, 0));
        assert!(got.iter().all(|o| o.size == 1));
    }

    #[test]
    fn header_is_optional() {
        let got = ops("100,0\n200,1\n").unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn tstamp_span_is_tracked() {
        let mut r = CsvReader::new(&b"10,0,500\n20,0,100\n30,0,900\n"[..]);
        while r.next_op().unwrap().is_some() {}
        assert_eq!(r.tstamp_span(), Some((100, 900)));
    }

    #[test]
    fn malformed_rows_are_typed_with_position() {
        for (text, what) in [
            ("addr\nbanana,0\n", "bad address"),
            ("10,zebra\n", "bad tenant"),
            ("10,0,xyz\n", "bad tstamp"),
            ("10,0,5,9\n", "too many columns"),
        ] {
            let err = ops(text).unwrap_err();
            assert!(err.is_recoverable());
            assert!(err.to_string().contains(what), "{text}: {err}");
        }
    }

    #[test]
    fn second_non_numeric_row_is_not_a_header() {
        let err = ops("addr,tenant\n10,0\naddr,tenant\n").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn writer_round_trips_through_reader() {
        let mut buf = Vec::new();
        let mut w = CsvWriter::new(&mut buf).unwrap();
        for &(t, a) in &[(0u64, 5u64), (3, 1 << 40)] {
            w.write_record(t, a).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 2);
        let got = ops(std::str::from_utf8(&buf).unwrap()).unwrap();
        let back: Vec<(u64, u64)> = got.iter().map(|o| (o.thread, o.addr)).collect();
        assert_eq!(back, vec![(0, 5), (3, 1 << 40)]);
    }
}
