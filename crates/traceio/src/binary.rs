//! The compact `CPST` binary record format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header (16 bytes):
//!   magic      [4]  = "CPST"
//!   version    u16  = 1
//!   flags      u16       bit 0: records carry a trailing tstamp u64
//!                        bit 1: addresses are block ids (pre-mapped)
//!   block_bytes u32      provenance: the granularity addresses were
//!                        mapped at (0 = unknown / raw byte addresses)
//!   reserved   u32       written 0, ignored on read
//! record (10 or 18 bytes):
//!   tenant     u16
//!   addr       u64
//!   tstamp     u64       only when flags bit 0 is set
//! ```
//!
//! The format exists to make repeat runs fast: `cps trace convert`
//! bakes tenancy and block mapping into it once, and every later replay
//! streams fixed-size records with no text parsing at all. Bit 1 tells
//! readers the mapping is already applied, so replays default to the
//! identity block map instead of dividing twice.

use crate::error::TraceIoError;
use crate::scan::ByteScanner;
use crate::source::{RawOp, RawTraceReader};
use std::io::{Read, Write};

/// The four magic bytes opening every binary trace.
pub const MAGIC: &[u8; 4] = b"CPST";

/// The format version this crate reads and writes.
pub const VERSION: u16 = 1;

/// Flag bit 0: each record carries a trailing `u64` timestamp.
pub const FLAG_TSTAMP: u16 = 1 << 0;

/// Flag bit 1: addresses are block ids; the mapping is already baked.
pub const FLAG_PREMAPPED: u16 = 1 << 1;

const KNOWN_FLAGS: u16 = FLAG_TSTAMP | FLAG_PREMAPPED;

/// Header length in bytes.
pub const HEADER_LEN: usize = 16;

/// Record length in bytes without the optional timestamp.
pub const RECORD_LEN: usize = 10;

/// The parsed binary header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinaryHeader {
    /// Raw flags field.
    pub flags: u16,
    /// Provenance granularity (0 = unknown / raw byte addresses).
    pub block_bytes: u32,
}

impl BinaryHeader {
    /// True when records carry a trailing timestamp.
    pub fn has_tstamp(&self) -> bool {
        self.flags & FLAG_TSTAMP != 0
    }

    /// True when addresses are pre-mapped block ids.
    pub fn premapped(&self) -> bool {
        self.flags & FLAG_PREMAPPED != 0
    }
}

/// Streaming reader for the binary format.
pub struct BinaryReader<R: Read> {
    scan: ByteScanner<R>,
    header: Option<BinaryHeader>,
    tstamp_min: Option<u64>,
    tstamp_max: Option<u64>,
}

impl<R: Read> BinaryReader<R> {
    /// Wraps `inner` with the default fixed scan buffer.
    pub fn new(inner: R) -> Self {
        Self::with_capacity(inner, crate::scan::DEFAULT_BUF_CAP)
    }

    /// Wraps `inner` with a fixed scan buffer of `cap` bytes.
    pub fn with_capacity(inner: R, cap: usize) -> Self {
        BinaryReader {
            scan: ByteScanner::with_capacity(inner, cap),
            header: None,
            tstamp_min: None,
            tstamp_max: None,
        }
    }

    /// The parsed header, once the first record (or EOF) has been read.
    pub fn header(&self) -> Option<BinaryHeader> {
        self.header
    }

    /// The `(min, max)` timestamp span seen, when the flag is set.
    pub fn tstamp_span(&self) -> Option<(u64, u64)> {
        Some((self.tstamp_min?, self.tstamp_max?))
    }

    fn read_header(&mut self) -> Result<BinaryHeader, TraceIoError> {
        let bytes = match self.scan.next_exact(HEADER_LEN)? {
            Some(b) => b,
            None => {
                // An empty stream has no magic at all.
                return Err(TraceIoError::BadMagic { found: [0; 4] });
            }
        };
        if &bytes[0..4] != MAGIC {
            return Err(TraceIoError::BadMagic {
                found: [bytes[0], bytes[1], bytes[2], bytes[3]],
            });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(TraceIoError::UnsupportedVersion { found: version });
        }
        let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
        if flags & !KNOWN_FLAGS != 0 {
            return Err(TraceIoError::BadFlags { found: flags });
        }
        let block_bytes = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let header = BinaryHeader { flags, block_bytes };
        self.header = Some(header);
        Ok(header)
    }
}

impl<R: Read> RawTraceReader for BinaryReader<R> {
    fn next_op(&mut self) -> Result<Option<RawOp>, TraceIoError> {
        let header = match self.header {
            Some(h) => h,
            None => self.read_header()?,
        };
        let rec_len = if header.has_tstamp() {
            RECORD_LEN + 8
        } else {
            RECORD_LEN
        };
        let offset = self.scan.offset();
        let Some(bytes) = self.scan.next_exact(rec_len)? else {
            return Ok(None);
        };
        let tenant = u16::from_le_bytes([bytes[0], bytes[1]]) as u64;
        let addr = u64::from_le_bytes(bytes[2..10].try_into().expect("10-byte record"));
        if header.has_tstamp() {
            let ts = u64::from_le_bytes(bytes[10..18].try_into().expect("18-byte record"));
            self.tstamp_min = Some(self.tstamp_min.map_or(ts, |m| m.min(ts)));
            self.tstamp_max = Some(self.tstamp_max.map_or(ts, |m| m.max(ts)));
        }
        Ok(Some(RawOp {
            thread: tenant,
            addr,
            size: 1,
            line: 0,
            offset,
        }))
    }

    fn bytes_read(&self) -> u64 {
        self.scan.bytes_read()
    }

    fn max_resident_bytes(&self) -> usize {
        self.scan.max_resident_bytes()
    }

    fn addrs_are_blocks(&self) -> bool {
        self.header.is_some_and(|h| h.premapped())
    }
}

/// Writes canonical `(tenant, block)` records in the binary format with
/// the pre-mapped flag set.
pub struct BinaryWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> BinaryWriter<W> {
    /// Starts a writer, emitting the header. `block_bytes` records the
    /// granularity the addresses were mapped at (provenance only).
    pub fn new(mut out: W, block_bytes: u32) -> std::io::Result<Self> {
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        header[6..8].copy_from_slice(&FLAG_PREMAPPED.to_le_bytes());
        header[8..12].copy_from_slice(&block_bytes.to_le_bytes());
        out.write_all(&header)?;
        Ok(BinaryWriter { out, records: 0 })
    }

    /// Appends one record. Tenant ids above `u16::MAX` do not fit the
    /// format and are an error.
    pub fn write_record(&mut self, tenant: u64, block: u64) -> std::io::Result<()> {
        let tenant: u16 = tenant.try_into().map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("tenant {tenant} exceeds the binary format's u16 tenant field"),
            )
        })?;
        let mut rec = [0u8; RECORD_LEN];
        rec[0..2].copy_from_slice(&tenant.to_le_bytes());
        rec[2..10].copy_from_slice(&block.to_le_bytes());
        self.out.write_all(&rec)?;
        self.records += 1;
        Ok(())
    }

    /// Flushes and returns the record count.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.out.flush()?;
        Ok(self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(records: &[(u64, u64)]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf, 64).unwrap();
        for &(t, b) in records {
            w.write_record(t, b).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    fn read(bytes: &[u8]) -> Result<Vec<RawOp>, TraceIoError> {
        let mut r = BinaryReader::new(bytes);
        let mut out = Vec::new();
        while let Some(op) = r.next_op()? {
            out.push(op);
        }
        Ok(out)
    }

    #[test]
    fn write_read_round_trip() {
        let records = [(0u64, 7u64), (65535, u64::MAX), (3, 0)];
        let buf = write(&records);
        assert_eq!(buf.len(), HEADER_LEN + 3 * RECORD_LEN);
        let got = read(&buf).unwrap();
        let back: Vec<(u64, u64)> = got.iter().map(|o| (o.thread, o.addr)).collect();
        assert_eq!(back, records);
    }

    #[test]
    fn premapped_flag_survives_the_round_trip() {
        let buf = write(&[(0, 1)]);
        let mut r = BinaryReader::new(&buf[..]);
        assert!(!r.addrs_are_blocks(), "header not read yet");
        r.next_op().unwrap();
        assert!(r.addrs_are_blocks());
        let h = r.header().unwrap();
        assert!(h.premapped());
        assert!(!h.has_tstamp());
        assert_eq!(h.block_bytes, 64);
    }

    #[test]
    fn bad_magic_version_flags_are_typed() {
        let good = write(&[(0, 1)]);
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read(&bad),
            Err(TraceIoError::BadMagic { found }) if &found == b"XPST"
        ));
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            read(&bad),
            Err(TraceIoError::UnsupportedVersion { found: 9 })
        ));
        let mut bad = good.clone();
        bad[7] = 0x80;
        assert!(matches!(read(&bad), Err(TraceIoError::BadFlags { .. })));
    }

    #[test]
    fn truncated_tail_is_typed() {
        let buf = write(&[(0, 1), (0, 2)]);
        let cut = &buf[..buf.len() - 3];
        let err = read(cut).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::TruncatedRecord {
                have: 7,
                need: 10,
                ..
            }
        ));
        assert!(!err.is_recoverable());
    }

    #[test]
    fn empty_and_tiny_streams_are_bad_magic_or_truncated() {
        assert!(matches!(read(b""), Err(TraceIoError::BadMagic { .. })));
        assert!(matches!(
            read(b"CP"),
            Err(TraceIoError::TruncatedRecord { .. })
        ));
    }

    #[test]
    fn tstamp_records_parse_and_span() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&FLAG_TSTAMP.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        for (t, a, ts) in [(1u16, 100u64, 70u64), (2, 200, 30)] {
            buf.extend_from_slice(&t.to_le_bytes());
            buf.extend_from_slice(&a.to_le_bytes());
            buf.extend_from_slice(&ts.to_le_bytes());
        }
        let mut r = BinaryReader::new(&buf[..]);
        let mut got = Vec::new();
        while let Some(op) = r.next_op().unwrap() {
            got.push((op.thread, op.addr));
        }
        assert_eq!(got, vec![(1, 100), (2, 200)]);
        assert_eq!(r.tstamp_span(), Some((30, 70)));
        assert!(!r.addrs_are_blocks());
    }

    #[test]
    fn oversized_tenant_is_a_writer_error() {
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf, 0).unwrap();
        assert!(w.write_record(1 << 20, 5).is_err());
    }
}
