//! The cachegrind/valgrind-flavored text log format.
//!
//! The grammar accepted (one item per line):
//!
//! ```text
//! # anything            -- comment
//! == anything           -- tool banner (valgrind pid markers), skipped
//! T <thread>            -- marker: subsequent ops belong to <thread>
//! I <addr>,<size>       -- instruction fetch
//!  L <addr>,<size>      -- data load   (leading whitespace optional)
//!  S <addr>,<size>      -- data store
//!  M <addr>,<size>      -- modify (load + store, one op)
//! ```
//!
//! Addresses are hexadecimal (bare, cachegrind-style, or `0x`-prefixed);
//! sizes are decimal bytes and default to 1 when the `,size` suffix is
//! absent. A size wider than one block legitimately expands into one
//! record per block touched — the mapper downstream handles that. Sizes
//! above [`MAX_OP_SIZE`] are malformed: no real ISA issues them and the
//! cap keeps adversarial input from inflating one line into billions of
//! records.

use crate::error::{snippet_of, TraceIoError};
use crate::num::{parse_dec, parse_hex, trim};
use crate::scan::ByteScanner;
use crate::source::{RawOp, RawTraceReader};
use std::io::{Read, Write};

/// Largest accepted access width in bytes.
pub const MAX_OP_SIZE: u64 = 1 << 20;

/// Streaming reader for the text log format.
pub struct TextReader<R: Read> {
    scan: ByteScanner<R>,
    line: u64,
    thread: u64,
}

impl<R: Read> TextReader<R> {
    /// Wraps `inner` with the default fixed scan buffer.
    pub fn new(inner: R) -> Self {
        Self::with_capacity(inner, crate::scan::DEFAULT_BUF_CAP)
    }

    /// Wraps `inner` with a fixed scan buffer of `cap` bytes.
    pub fn with_capacity(inner: R, cap: usize) -> Self {
        TextReader {
            scan: ByteScanner::with_capacity(inner, cap),
            line: 0,
            thread: 0,
        }
    }
}

fn malformed(line: u64, offset: u64, what: &str, raw: &[u8]) -> TraceIoError {
    TraceIoError::Malformed {
        line,
        offset,
        what: what.to_string(),
        snippet: snippet_of(raw),
    }
}

impl<R: Read> RawTraceReader for TextReader<R> {
    fn next_op(&mut self) -> Result<Option<RawOp>, TraceIoError> {
        loop {
            self.line += 1;
            let lineno = self.line;
            let Some((raw, offset)) = self.scan.next_line(lineno)? else {
                return Ok(None);
            };
            let t = trim(raw);
            if t.is_empty() || t.starts_with(b"#") || t.starts_with(b"==") {
                continue;
            }
            match t[0] {
                b'T' => {
                    let id = trim(&t[1..]);
                    let Some(thread) = parse_dec(id) else {
                        return Err(malformed(lineno, offset, "bad thread marker", t));
                    };
                    self.thread = thread;
                    continue;
                }
                b'I' | b'L' | b'S' | b'M' => {
                    let body = trim(&t[1..]);
                    if body.is_empty() {
                        return Err(malformed(lineno, offset, "op without an address", t));
                    }
                    let (addr_bytes, size) = match body.iter().position(|&b| b == b',') {
                        Some(comma) => {
                            let size_bytes = trim(&body[comma + 1..]);
                            let Some(size) = parse_dec(size_bytes) else {
                                return Err(malformed(lineno, offset, "bad access size", t));
                            };
                            if size == 0 || size > MAX_OP_SIZE {
                                return Err(malformed(
                                    lineno,
                                    offset,
                                    "access size out of range",
                                    t,
                                ));
                            }
                            (trim(&body[..comma]), size)
                        }
                        None => (body, 1),
                    };
                    let addr_bytes = addr_bytes.strip_prefix(b"0x").unwrap_or(addr_bytes);
                    let Some(addr) = parse_hex(addr_bytes) else {
                        return Err(malformed(lineno, offset, "bad hex address", t));
                    };
                    return Ok(Some(RawOp {
                        thread: self.thread,
                        addr,
                        size,
                        line: lineno,
                        offset,
                    }));
                }
                _ => return Err(malformed(lineno, offset, "unknown op", t)),
            }
        }
    }

    fn resync(&mut self) -> Result<(), TraceIoError> {
        self.scan.discard_line()
    }

    fn bytes_read(&self) -> u64 {
        self.scan.bytes_read()
    }

    fn max_resident_bytes(&self) -> usize {
        self.scan.max_resident_bytes()
    }
}

/// Writes canonical `(tenant, addr)` records as the text format: a `T`
/// marker whenever the tenant changes, then one single-byte load per
/// record. Reading the result back (any block size) reproduces the
/// records exactly, because size-1 ops never straddle blocks.
pub struct TextWriter<W: Write> {
    out: W,
    tenant: Option<u64>,
    records: u64,
}

impl<W: Write> TextWriter<W> {
    /// Starts a writer with a provenance comment.
    pub fn new(mut out: W, provenance: &str) -> std::io::Result<Self> {
        writeln!(out, "# cps trace (text); {provenance}")?;
        Ok(TextWriter {
            out,
            tenant: None,
            records: 0,
        })
    }

    /// Appends one record.
    pub fn write_record(&mut self, tenant: u64, addr: u64) -> std::io::Result<()> {
        if self.tenant != Some(tenant) {
            writeln!(self.out, "T {tenant}")?;
            self.tenant = Some(tenant);
        }
        writeln!(self.out, " L {addr:x},1")?;
        self.records += 1;
        Ok(())
    }

    /// Flushes and returns the record count.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.out.flush()?;
        Ok(self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(text: &str) -> Result<Vec<RawOp>, TraceIoError> {
        let mut r = TextReader::new(text.as_bytes());
        let mut out = Vec::new();
        while let Some(op) = r.next_op()? {
            out.push(op);
        }
        Ok(out)
    }

    #[test]
    fn cachegrind_style_lines_parse() {
        let got =
            ops("==123== tool banner\nI  0400d7d4,8\n L 0421c7f0,4\n S 0421c7f0,8\n").unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].addr, 0x0400_d7d4);
        assert_eq!(got[0].size, 8);
        assert_eq!(got[0].thread, 0, "thread defaults to 0");
        assert_eq!(got[1].line, 3);
    }

    #[test]
    fn thread_markers_attribute_following_ops() {
        let got = ops("T 2\n L ff,1\nT 5\n M 100,4\n").unwrap();
        assert_eq!(got[0].thread, 2);
        assert_eq!(got[1].thread, 5);
        assert_eq!(got[1].addr, 0x100);
    }

    #[test]
    fn size_defaults_to_one_and_0x_is_accepted() {
        let got = ops(" L 0xff\n").unwrap();
        assert_eq!((got[0].addr, got[0].size), (0xff, 1));
    }

    #[test]
    fn malformed_lines_are_typed_with_position() {
        for (text, what) in [
            ("Q ff,1\n", "unknown op"),
            (" L zz,1\n", "bad hex address"),
            (" L ff,banana\n", "bad access size"),
            (" L ff,0\n", "access size out of range"),
            ("T banana\n", "bad thread marker"),
            ("L\n", "op without an address"),
        ] {
            let err = ops(&format!("# lead\n{text}")).unwrap_err();
            assert!(err.is_recoverable());
            let msg = err.to_string();
            assert!(msg.contains("line 2"), "{text}: {msg}");
            assert!(msg.contains(what), "{text}: {msg}");
        }
    }

    #[test]
    fn giant_size_is_rejected() {
        assert!(ops(&format!(" L ff,{}\n", MAX_OP_SIZE + 1)).is_err());
        assert!(ops(&format!(" L ff,{MAX_OP_SIZE}\n")).is_ok());
    }

    #[test]
    fn writer_round_trips_through_reader() {
        let mut buf = Vec::new();
        let mut w = TextWriter::new(&mut buf, "test").unwrap();
        let records = [(0u64, 17u64), (0, 18), (1, 17), (0, 99)];
        for &(t, a) in &records {
            w.write_record(t, a).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 4);
        let got = ops(std::str::from_utf8(&buf).unwrap()).unwrap();
        let back: Vec<(u64, u64)> = got.iter().map(|o| (o.thread, o.addr)).collect();
        assert_eq!(back, records);
    }
}
