//! The front-door pipeline: raw format readers → tenant attribution →
//! block mapping → canonical `(tenant, block)` records.
//!
//! Every format module produces [`RawOp`]s through the common
//! [`RawTraceReader`] trait; [`TraceSource`] stacks a
//! [`TenantResolver`] and a
//! [`BlockMap`] on top and yields exactly the
//! record shape the engines ingest. The whole stack is streaming: the
//! only buffering anywhere is the readers' fixed scan buffer, so a
//! multi-GB log flows through in constant memory
//! ([`TraceSource::stats`] exposes the measured high-water mark).

use crate::binary::BinaryReader;
use crate::csv::CsvReader;
use crate::error::TraceIoError;
use crate::map::BlockMap;
use crate::metrics::TraceIoMetrics;
use crate::tenancy::{TenantPolicy, TenantResolver};
use crate::text::TextReader;
use std::io::Read;

/// One raw operation as a format reader parsed it, before attribution
/// and mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawOp {
    /// The producer's thread or tenant field (format-dependent).
    pub thread: u64,
    /// Byte address (or block id, for pre-mapped binary traces).
    pub addr: u64,
    /// Access width in bytes (1 for formats without a size field).
    pub size: u64,
    /// 1-based source line (0 for record-oriented formats).
    pub line: u64,
    /// Global byte offset of the record in the input.
    pub offset: u64,
}

/// A streaming format-specific reader of raw trace operations.
pub trait RawTraceReader {
    /// The next raw op, `Ok(None)` at a clean end of stream, or a
    /// typed error. After a *recoverable* error the reader must be
    /// positioned so the next call continues past the damage (call
    /// [`RawTraceReader::resync`] first for errors that interrupt
    /// scanning, such as an over-long line).
    fn next_op(&mut self) -> Result<Option<RawOp>, TraceIoError>;

    /// Re-synchronizes after a recoverable error that left input
    /// unconsumed (the over-long-line case). Default: nothing to do.
    fn resync(&mut self) -> Result<(), TraceIoError> {
        Ok(())
    }

    /// Total bytes pulled from the underlying stream.
    fn bytes_read(&self) -> u64;

    /// High-water mark of buffered bytes — the boundedness probe.
    fn max_resident_bytes(&self) -> usize;

    /// True when the format declares its addresses are already block
    /// ids (the binary header's pre-mapped flag).
    fn addrs_are_blocks(&self) -> bool {
        false
    }
}

/// The three external trace formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Cachegrind/valgrind-flavored text log (`I`/`L`/`S`/`M` op lines).
    Text,
    /// `addr,tenant,tstamp` comma-separated rows.
    Csv,
    /// The compact `CPST` little-endian record format.
    Binary,
}

impl TraceFormat {
    /// Parses the CLI spelling: `text`, `csv`, `binary`, or `auto`
    /// (returns `None`, meaning sniff the file).
    pub fn parse(spec: &str) -> Result<Option<TraceFormat>, String> {
        match spec {
            "text" | "cachegrind" => Ok(Some(TraceFormat::Text)),
            "csv" => Ok(Some(TraceFormat::Csv)),
            "binary" | "bin" => Ok(Some(TraceFormat::Binary)),
            "auto" => Ok(None),
            other => Err(format!(
                "unknown trace format `{other}` (text | csv | binary | auto)"
            )),
        }
    }

    /// The CLI spelling of this format.
    pub fn name(&self) -> &'static str {
        match self {
            TraceFormat::Text => "text",
            TraceFormat::Csv => "csv",
            TraceFormat::Binary => "binary",
        }
    }

    /// Guesses the format from an input prefix: the `CPST` magic means
    /// binary; otherwise the first non-blank, non-comment line decides
    /// — a leading `I`/`L`/`S`/`M`/`T` op or marker means the text
    /// log, anything else is read as CSV.
    pub fn sniff(prefix: &[u8]) -> TraceFormat {
        if prefix.starts_with(crate::binary::MAGIC) {
            return TraceFormat::Binary;
        }
        for line in prefix.split(|&b| b == b'\n') {
            let t = crate::num::trim(line);
            if t.is_empty() || t.starts_with(b"#") || t.starts_with(b"==") {
                continue;
            }
            return match t[0] {
                b'I' | b'L' | b'S' | b'M' | b'T' => TraceFormat::Text,
                _ => TraceFormat::Csv,
            };
        }
        TraceFormat::Text
    }
}

/// How a [`TraceSource`] treats recoverable parse errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strictness {
    /// Any malformed input is fatal (the default; a replay on damaged
    /// data should fail loudly, not silently drop accesses).
    Strict,
    /// Skip malformed lines/records, counting them and remembering the
    /// first few for the malformed-input report.
    Lenient,
}

/// How many malformed-input locations the lenient report remembers.
pub const MALFORMED_REPORT_CAP: usize = 8;

/// Counters and the malformed-input report for one source read.
#[derive(Clone, Debug, Default)]
pub struct SourceStats {
    /// Canonical records emitted.
    pub records: u64,
    /// Raw ops parsed (one op can expand to several records).
    pub ops: u64,
    /// Malformed lines/records skipped (lenient mode only).
    pub malformed_skipped: u64,
    /// First few malformed locations, as `(line, offset, reason)`.
    pub malformed_report: Vec<(u64, u64, String)>,
    /// Bytes pulled from the underlying stream.
    pub bytes_read: u64,
    /// High-water mark of buffered bytes.
    pub max_resident_bytes: usize,
}

/// The canonical streaming trace source: any format in, engine-shaped
/// `(tenant, block)` records out.
pub struct TraceSource {
    reader: Box<dyn RawTraceReader + Send>,
    resolver: TenantResolver,
    map: BlockMap,
    tenants: usize,
    strictness: Strictness,
    // Block-expansion state for an op spanning several blocks.
    pend_tenant: usize,
    pend_next: u64,
    pend_last: u64,
    pend_live: bool,
    stats: SourceStats,
    metrics: Option<TraceIoMetrics>,
    synced_bytes: u64,
    tick: u32,
    premap_checked: bool,
}

impl TraceSource {
    /// Builds a source over an already-constructed format reader.
    ///
    /// `tenants` bounds resolved tenant ids (a record at or past it is
    /// an error, skippable only in lenient mode). If the reader
    /// declares its addresses pre-mapped, `map` is overridden with the
    /// identity mapping unless it hashes.
    pub fn new(
        reader: Box<dyn RawTraceReader + Send>,
        policy: TenantPolicy,
        map: BlockMap,
        tenants: usize,
        strictness: Strictness,
    ) -> Self {
        let map = if reader.addrs_are_blocks() {
            BlockMap {
                block_bytes: 1,
                set_hash: map.set_hash,
            }
        } else {
            map
        };
        TraceSource {
            reader,
            resolver: TenantResolver::new(policy),
            map,
            tenants,
            strictness,
            pend_tenant: 0,
            pend_next: 0,
            pend_last: 0,
            pend_live: false,
            stats: SourceStats::default(),
            metrics: None,
            synced_bytes: 0,
            tick: 0,
            premap_checked: false,
        }
    }

    /// Opens `format`-formatted data from any byte stream.
    pub fn from_read(
        input: Box<dyn Read + Send>,
        format: TraceFormat,
        policy: TenantPolicy,
        map: BlockMap,
        tenants: usize,
        strictness: Strictness,
    ) -> Self {
        let reader: Box<dyn RawTraceReader + Send> = match format {
            TraceFormat::Text => Box::new(TextReader::new(input)),
            TraceFormat::Csv => Box::new(CsvReader::new(input)),
            TraceFormat::Binary => Box::new(BinaryReader::new(input)),
        };
        Self::new(reader, policy, map, tenants, strictness)
    }

    /// Attaches `cps_traceio_*` instruments; counters update as the
    /// source streams.
    pub fn with_metrics(mut self, metrics: TraceIoMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The effective block mapping (after any pre-mapped override).
    pub fn block_map(&self) -> BlockMap {
        self.map
    }

    /// Counters so far; callable mid-stream or after exhaustion.
    pub fn stats(&self) -> SourceStats {
        let mut s = self.stats.clone();
        s.bytes_read = self.reader.bytes_read();
        s.max_resident_bytes = self.reader.max_resident_bytes();
        s
    }

    fn note_malformed(&mut self, e: &TraceIoError) {
        self.stats.malformed_skipped += 1;
        if let Some(m) = &self.metrics {
            m.malformed_skipped.inc();
        }
        if self.stats.malformed_report.len() < MALFORMED_REPORT_CAP {
            let (line, offset) = match e {
                TraceIoError::Malformed { line, offset, .. }
                | TraceIoError::LineTooLong { line, offset, .. }
                | TraceIoError::TenantOutOfRange { line, offset, .. }
                | TraceIoError::UnmappedThread { line, offset, .. } => (*line, *offset),
                _ => (0, e.offset().unwrap_or(0)),
            };
            self.stats
                .malformed_report
                .push((line, offset, e.to_string()));
        }
    }

    fn sync_bytes_metric(&mut self) {
        if let Some(m) = &self.metrics {
            let now = self.reader.bytes_read();
            m.bytes.add(now - self.synced_bytes);
            self.synced_bytes = now;
        }
    }

    /// The next canonical record, `Ok(None)` at end of stream.
    ///
    /// In strict mode the first malformed input is returned as an
    /// error (the CLI turns it into a friendly nonzero exit); in
    /// lenient mode malformed lines are counted and skipped. Fatal
    /// errors (I/O, bad magic, truncated binary) always surface.
    pub fn next_record(&mut self) -> Result<Option<(usize, u64)>, TraceIoError> {
        // Sampled parse-latency probe: time every 64th call.
        self.tick = self.tick.wrapping_add(1);
        let probe = if self.metrics.is_some() && self.tick.is_multiple_of(64) {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let out = self.next_record_inner();
        if let (Some(start), Some(m)) = (probe, &self.metrics) {
            m.parse_nanos.observe(start.elapsed().as_nanos() as u64);
        }
        if self.tick.is_multiple_of(1024) {
            self.sync_bytes_metric();
        }
        out
    }

    fn next_record_inner(&mut self) -> Result<Option<(usize, u64)>, TraceIoError> {
        loop {
            if self.pend_live {
                let block = self.map.finish(self.pend_next);
                if self.pend_next == self.pend_last {
                    self.pend_live = false;
                } else {
                    self.pend_next += 1;
                }
                self.stats.records += 1;
                if let Some(m) = &self.metrics {
                    m.records.inc();
                }
                return Ok(Some((self.pend_tenant, block)));
            }
            let op = match self.reader.next_op() {
                Ok(Some(op)) => op,
                Ok(None) => {
                    self.sync_bytes_metric();
                    return Ok(None);
                }
                Err(e) if e.is_recoverable() && self.strictness == Strictness::Lenient => {
                    if matches!(e, TraceIoError::LineTooLong { .. }) {
                        self.reader.resync()?;
                    }
                    self.note_malformed(&e);
                    continue;
                }
                Err(e) => {
                    if let Some(m) = &self.metrics {
                        m.malformed_fatal.inc();
                    }
                    self.sync_bytes_metric();
                    return Err(e);
                }
            };
            self.stats.ops += 1;
            // The binary header (and its pre-mapped flag) is only
            // parsed when the first op is read, so the constructor's
            // override can miss it — re-check once here.
            if !self.premap_checked {
                self.premap_checked = true;
                if self.reader.addrs_are_blocks() {
                    self.map.block_bytes = 1;
                }
            }
            let tenant = match self.resolver.resolve(op.thread, op.line, op.offset) {
                Ok(t) if t < self.tenants => t,
                Ok(t) => {
                    let e = TraceIoError::TenantOutOfRange {
                        line: op.line,
                        offset: op.offset,
                        tenant: t as u64,
                        tenants: self.tenants,
                    };
                    if self.strictness == Strictness::Lenient {
                        self.note_malformed(&e);
                        continue;
                    }
                    if let Some(m) = &self.metrics {
                        m.malformed_fatal.inc();
                    }
                    return Err(e);
                }
                Err(e) => {
                    if self.strictness == Strictness::Lenient {
                        self.note_malformed(&e);
                        continue;
                    }
                    if let Some(m) = &self.metrics {
                        m.malformed_fatal.inc();
                    }
                    return Err(e);
                }
            };
            let (first, last) = self.map.span(op.addr, op.size);
            self.pend_tenant = tenant;
            self.pend_next = first;
            self.pend_last = last;
            self.pend_live = true;
        }
    }

    /// Adapts the source into the `(tenant, block)` iterator the
    /// engines consume; a mid-stream error stops iteration and is
    /// retrievable afterwards from [`Records::take_error`].
    pub fn records(&mut self) -> Records<'_> {
        Records {
            source: self,
            error: None,
        }
    }
}

/// Fallible iterator adapter over a [`TraceSource`]; see
/// [`TraceSource::records`].
pub struct Records<'a> {
    source: &'a mut TraceSource,
    error: Option<TraceIoError>,
}

impl Records<'_> {
    /// The error that stopped iteration, if one did.
    pub fn take_error(&mut self) -> Option<TraceIoError> {
        self.error.take()
    }
}

impl Iterator for Records<'_> {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        if self.error.is_some() {
            return None;
        }
        match self.source.next_record() {
            Ok(next) => next,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source_over(
        text: &'static str,
        format: TraceFormat,
        policy: TenantPolicy,
        map: BlockMap,
        tenants: usize,
        strictness: Strictness,
    ) -> TraceSource {
        TraceSource::from_read(
            Box::new(text.as_bytes()),
            format,
            policy,
            map,
            tenants,
            strictness,
        )
    }

    #[test]
    fn csv_to_canonical_records() {
        let mut s = source_over(
            "addr,tenant\n0,0\n64,1\n128,0\n",
            TraceFormat::Csv,
            TenantPolicy::Explicit,
            BlockMap::default(),
            2,
            Strictness::Strict,
        );
        let mut got = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            got.push(r);
        }
        assert_eq!(got, vec![(0, 0), (1, 1), (0, 2)]);
        let stats = s.stats();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.ops, 3);
        assert_eq!(stats.malformed_skipped, 0);
    }

    #[test]
    fn wide_text_op_expands_across_blocks() {
        // A 8-byte store at 60 straddles blocks 0 and 1 at 64-byte
        // granularity.
        let mut s = source_over(
            "T 0\n S 3c,8\n",
            TraceFormat::Text,
            TenantPolicy::Explicit,
            BlockMap::default(),
            1,
            Strictness::Strict,
        );
        let mut got = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            got.push(r);
        }
        assert_eq!(got, vec![(0, 0), (0, 1)]);
        assert_eq!(s.stats().ops, 1);
        assert_eq!(s.stats().records, 2);
    }

    #[test]
    fn strict_mode_stops_at_first_malformed_line() {
        let mut s = source_over(
            "10,0\nnot a row\n20,0\n",
            TraceFormat::Csv,
            TenantPolicy::Explicit,
            BlockMap::identity(),
            1,
            Strictness::Strict,
        );
        assert_eq!(s.next_record().unwrap(), Some((0, 10)));
        let err = s.next_record().unwrap_err();
        assert!(err.is_recoverable());
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn lenient_mode_skips_and_reports() {
        let mut s = source_over(
            "10,0\nnot a row\n20,9\n30,0\n",
            TraceFormat::Csv,
            TenantPolicy::Explicit,
            BlockMap::identity(),
            1,
            Strictness::Lenient,
        );
        let mut got = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            got.push(r);
        }
        assert_eq!(got, vec![(0, 10), (0, 30)]);
        let stats = s.stats();
        assert_eq!(stats.malformed_skipped, 2, "bad row + tenant 9 of 1");
        assert_eq!(stats.malformed_report.len(), 2);
        assert!(stats.malformed_report[1].2.contains("out of range"));
    }

    #[test]
    fn records_adapter_surfaces_error_after_iteration() {
        let mut s = source_over(
            "10,0\nxyz,0\n",
            TraceFormat::Csv,
            TenantPolicy::Explicit,
            BlockMap::identity(),
            1,
            Strictness::Strict,
        );
        let mut it = s.records();
        let got: Vec<_> = it.by_ref().collect();
        assert_eq!(got, vec![(0, 10)]);
        assert!(it.take_error().is_some());
    }

    #[test]
    fn sniff_distinguishes_the_three_formats() {
        assert_eq!(TraceFormat::sniff(b"CPST\x01\x00"), TraceFormat::Binary);
        assert_eq!(
            TraceFormat::sniff(b"# comment\nI 0400d7d4,8\n"),
            TraceFormat::Text
        );
        assert_eq!(TraceFormat::sniff(b"addr,tenant\n10,0\n"), TraceFormat::Csv);
        assert_eq!(TraceFormat::sniff(b"1234,0,9\n"), TraceFormat::Csv);
        assert_eq!(TraceFormat::sniff(b"T 0\n L ff,1\n"), TraceFormat::Text);
    }

    #[test]
    fn premapped_binary_defeats_the_default_block_map() {
        // A converted binary trace carries block ids; replaying it with
        // the default 64-byte map must NOT divide them again — the
        // pre-mapped header flag (parsed lazily with the first record)
        // forces the identity mapping.
        let mut buf = Vec::new();
        let mut w = crate::binary::BinaryWriter::new(&mut buf, 64).unwrap();
        for &(t, b) in &[(0u64, 7u64), (1, 1 << 48), (0, 9)] {
            w.write_record(t, b).unwrap();
        }
        w.finish().unwrap();
        let mut s = TraceSource::from_read(
            Box::new(std::io::Cursor::new(buf)),
            TraceFormat::Binary,
            TenantPolicy::Explicit,
            BlockMap::default(),
            2,
            Strictness::Strict,
        );
        let mut got = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            got.push(r);
        }
        assert_eq!(got, vec![(0, 7), (1, 1 << 48), (0, 9)]);
    }

    #[test]
    fn round_robin_fallback_needs_no_attribution() {
        let mut s = source_over(
            "addr\n0\n64\n128\n192\n",
            TraceFormat::Csv,
            TenantPolicy::RoundRobin(2),
            BlockMap::default(),
            2,
            Strictness::Strict,
        );
        let mut got = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            got.push(r);
        }
        assert_eq!(got, vec![(0, 0), (1, 1), (0, 2), (1, 3)]);
    }
}
