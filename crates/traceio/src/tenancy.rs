//! Tenant attribution: whose access is this?
//!
//! The engines key everything by a dense tenant id `0..K`, but external
//! traces attribute accesses in whatever way their producer could:
//! an explicit tenant column (CSV, binary), raw OS thread ids (the
//! cachegrind-style text format's `T` markers), or nothing at all.
//! [`TenantPolicy`] names the four attribution rules and
//! [`TenantResolver`] applies one statefully; the parsed spec grammar is
//! shared by every CLI entry point.

use crate::error::TraceIoError;

/// The tenant-attribution rule for a trace read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantPolicy {
    /// Use the record's own tenant/thread field as the tenant id.
    Explicit,
    /// Translate thread ids through an explicit `thread -> tenant` map;
    /// an unmapped thread is a (recoverable) error.
    ThreadMap(Vec<(u64, usize)>),
    /// Assign dense tenant ids in order of first appearance of each
    /// distinct thread id.
    FirstSeen,
    /// Ignore attribution entirely and deal records round-robin over
    /// `K` tenants — the fallback for traces with no tenancy at all.
    RoundRobin(usize),
}

impl TenantPolicy {
    /// Parses the CLI spec grammar:
    ///
    /// * `explicit` — the record's own tenant field;
    /// * `map:TID=T,TID=T,...` — explicit thread-to-tenant pairs;
    /// * `first-seen` — dense ids in order of first appearance;
    /// * `rr:K` — round-robin over `K` tenants.
    pub fn parse(spec: &str) -> Result<TenantPolicy, String> {
        if spec == "explicit" {
            return Ok(TenantPolicy::Explicit);
        }
        if spec == "first-seen" {
            return Ok(TenantPolicy::FirstSeen);
        }
        if let Some(k) = spec.strip_prefix("rr:") {
            let k: usize = k
                .parse()
                .map_err(|_| format!("bad round-robin tenant count `{k}`"))?;
            if k == 0 {
                return Err("round-robin needs at least one tenant".into());
            }
            return Ok(TenantPolicy::RoundRobin(k));
        }
        if let Some(pairs) = spec.strip_prefix("map:") {
            let mut map = Vec::new();
            for pair in pairs.split(',') {
                let (tid, tenant) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad map entry `{pair}` (want TID=TENANT)"))?;
                let tid: u64 = tid
                    .parse()
                    .map_err(|_| format!("bad thread id `{tid}` in map"))?;
                let tenant: usize = tenant
                    .parse()
                    .map_err(|_| format!("bad tenant `{tenant}` in map"))?;
                if map.iter().any(|&(t, _)| t == tid) {
                    return Err(format!("thread {tid} mapped twice"));
                }
                map.push((tid, tenant));
            }
            if map.is_empty() {
                return Err("thread map needs at least one TID=TENANT pair".into());
            }
            return Ok(TenantPolicy::ThreadMap(map));
        }
        Err(format!(
            "unknown tenancy policy `{spec}` (explicit | map:TID=T,... | first-seen | rr:K)"
        ))
    }

    /// The spec string this policy parses back from.
    pub fn spec(&self) -> String {
        match self {
            TenantPolicy::Explicit => "explicit".into(),
            TenantPolicy::FirstSeen => "first-seen".into(),
            TenantPolicy::RoundRobin(k) => format!("rr:{k}"),
            TenantPolicy::ThreadMap(map) => {
                let pairs: Vec<String> = map.iter().map(|(t, n)| format!("{t}={n}")).collect();
                format!("map:{}", pairs.join(","))
            }
        }
    }
}

/// Stateful application of a [`TenantPolicy`].
#[derive(Clone, Debug)]
pub struct TenantResolver {
    policy: TenantPolicy,
    /// First-seen assignment table (thread id -> dense tenant).
    seen: Vec<u64>,
    /// Round-robin cursor.
    next: usize,
}

impl TenantResolver {
    /// Builds a resolver for `policy`.
    pub fn new(policy: TenantPolicy) -> Self {
        TenantResolver {
            policy,
            seen: Vec::new(),
            next: 0,
        }
    }

    /// Resolves one record's thread/tenant field to a tenant id.
    /// `line`/`offset` locate the record for error reporting.
    pub fn resolve(&mut self, thread: u64, line: u64, offset: u64) -> Result<usize, TraceIoError> {
        match &self.policy {
            TenantPolicy::Explicit => Ok(thread as usize),
            TenantPolicy::ThreadMap(map) => map
                .iter()
                .find(|&&(t, _)| t == thread)
                .map(|&(_, tenant)| tenant)
                .ok_or(TraceIoError::UnmappedThread {
                    line,
                    offset,
                    thread,
                }),
            TenantPolicy::FirstSeen => {
                if let Some(i) = self.seen.iter().position(|&t| t == thread) {
                    Ok(i)
                } else {
                    self.seen.push(thread);
                    Ok(self.seen.len() - 1)
                }
            }
            TenantPolicy::RoundRobin(k) => {
                let t = self.next;
                self.next = (self.next + 1) % k;
                Ok(t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        for spec in ["explicit", "first-seen", "rr:4", "map:12=0,15=1"] {
            let p = TenantPolicy::parse(spec).unwrap();
            assert_eq!(p.spec(), spec);
        }
        assert!(TenantPolicy::parse("rr:0").is_err());
        assert!(TenantPolicy::parse("map:").is_err());
        assert!(TenantPolicy::parse("map:12=0,12=1").is_err());
        assert!(TenantPolicy::parse("banana").is_err());
    }

    #[test]
    fn explicit_passes_through() {
        let mut r = TenantResolver::new(TenantPolicy::Explicit);
        assert_eq!(r.resolve(3, 1, 0).unwrap(), 3);
    }

    #[test]
    fn thread_map_resolves_and_rejects() {
        let mut r = TenantResolver::new(TenantPolicy::ThreadMap(vec![(100, 0), (200, 1)]));
        assert_eq!(r.resolve(200, 1, 0).unwrap(), 1);
        assert!(matches!(
            r.resolve(300, 7, 90),
            Err(TraceIoError::UnmappedThread {
                thread: 300,
                line: 7,
                offset: 90,
            })
        ));
    }

    #[test]
    fn first_seen_assigns_densely() {
        let mut r = TenantResolver::new(TenantPolicy::FirstSeen);
        assert_eq!(r.resolve(900, 1, 0).unwrap(), 0);
        assert_eq!(r.resolve(42, 2, 0).unwrap(), 1);
        assert_eq!(r.resolve(900, 3, 0).unwrap(), 0);
        assert_eq!(r.resolve(7, 4, 0).unwrap(), 2);
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = TenantResolver::new(TenantPolicy::RoundRobin(3));
        let got: Vec<usize> = (0..7).map(|i| r.resolve(999, i, 0).unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
    }
}
