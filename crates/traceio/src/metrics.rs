//! `cps_traceio_*` instruments, registered through `cps-obs`.
//!
//! One instrument set per reader attachment; every counter is a relaxed
//! atomic handle, so the ingestion hot path pays one `fetch_add` per
//! record and the parse-latency histogram is fed from a 1-in-64 sample
//! (two clock reads per 64 records) rather than per record.

use cps_obs::metrics::{Counter, Histogram, MetricsRegistry};

/// The trace-ingestion instrument set.
#[derive(Clone)]
pub struct TraceIoMetrics {
    /// `cps_traceio_records_total` — canonical records emitted.
    pub records: Counter,
    /// `cps_traceio_bytes_read_total` — bytes pulled from the input.
    pub bytes: Counter,
    /// `cps_traceio_malformed_skipped_total` — lenient-mode skips.
    pub malformed_skipped: Counter,
    /// `cps_traceio_malformed_fatal_total` — strict-mode (or fatal)
    /// parse failures.
    pub malformed_fatal: Counter,
    /// `cps_traceio_parse_nanos` — sampled per-record parse latency.
    pub parse_nanos: Histogram,
}

impl TraceIoMetrics {
    /// Registers the instrument set in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        TraceIoMetrics {
            records: registry.counter(
                "cps_traceio_records_total",
                "canonical (tenant, block) records emitted by trace readers",
            ),
            bytes: registry.counter(
                "cps_traceio_bytes_read_total",
                "bytes read from external trace inputs",
            ),
            malformed_skipped: registry.counter(
                "cps_traceio_malformed_skipped_total",
                "malformed lines/records skipped in lenient mode",
            ),
            malformed_fatal: registry.counter(
                "cps_traceio_malformed_fatal_total",
                "parse errors that stopped a read",
            ),
            parse_nanos: registry.histogram(
                "cps_traceio_parse_nanos",
                "per-record parse latency, 1-in-64 sampled",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_register_and_count() {
        let registry = MetricsRegistry::new();
        let m = TraceIoMetrics::register(&registry);
        m.records.add(5);
        m.bytes.add(100);
        m.malformed_skipped.inc();
        m.parse_nanos.observe(1234);
        let snap = registry.snapshot();
        let text = snap.render_prometheus();
        assert!(text.contains("cps_traceio_records_total 5"), "{text}");
        assert!(text.contains("cps_traceio_bytes_read_total 100"), "{text}");
        assert!(
            text.contains("cps_traceio_malformed_skipped_total 1"),
            "{text}"
        );
        assert!(text.contains("cps_traceio_parse_nanos"), "{text}");
    }
}
