//! Overflow-checked byte-slice number parsing.
//!
//! The readers parse numbers straight out of the scan buffer without a
//! UTF-8 pass; these helpers are the only number grammar in the crate,
//! so every format agrees on what a decimal and a hex address look like.

/// Parses an unsigned decimal; `None` on empty, non-digit, or overflow.
pub(crate) fn parse_dec(bytes: &[u8]) -> Option<u64> {
    if bytes.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &b in bytes {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as u64)?;
    }
    Some(v)
}

/// Parses bare hexadecimal; `None` on empty, non-hex, or overflow.
pub(crate) fn parse_hex(bytes: &[u8]) -> Option<u64> {
    if bytes.is_empty() || bytes.len() > 16 {
        return None;
    }
    let mut v: u64 = 0;
    for &b in bytes {
        let digit = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            b'A'..=b'F' => b - b'A' + 10,
            _ => return None,
        };
        v = (v << 4) | digit as u64;
    }
    Some(v)
}

/// Parses an address as the CSV/flexible grammar spells it: `0x`-prefixed
/// hex or decimal.
pub(crate) fn parse_addr(bytes: &[u8]) -> Option<u64> {
    if let Some(hex) = bytes.strip_prefix(b"0x") {
        parse_hex(hex)
    } else {
        parse_dec(bytes)
    }
}

/// Trims ASCII whitespace from both ends of a byte slice.
pub(crate) fn trim(bytes: &[u8]) -> &[u8] {
    let start = bytes
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(bytes.len());
    let end = bytes
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .map_or(start, |i| i + 1);
    &bytes[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_rejects_junk_and_overflow() {
        assert_eq!(parse_dec(b"0"), Some(0));
        assert_eq!(parse_dec(b"18446744073709551615"), Some(u64::MAX));
        assert_eq!(parse_dec(b"18446744073709551616"), None);
        assert_eq!(parse_dec(b""), None);
        assert_eq!(parse_dec(b"12a"), None);
        assert_eq!(parse_dec(b"-3"), None);
    }

    #[test]
    fn hex_rejects_junk_and_overflow() {
        assert_eq!(parse_hex(b"ff"), Some(255));
        assert_eq!(parse_hex(b"DEADbeef"), Some(0xdead_beef));
        assert_eq!(parse_hex(b"ffffffffffffffff"), Some(u64::MAX));
        assert_eq!(parse_hex(b"1ffffffffffffffff"), None, "17 digits overflow");
        assert_eq!(parse_hex(b"0x10"), None, "bare hex has no prefix");
        assert_eq!(parse_hex(b""), None);
    }

    #[test]
    fn addr_accepts_both_spellings() {
        assert_eq!(parse_addr(b"100"), Some(100));
        assert_eq!(parse_addr(b"0x100"), Some(256));
        assert_eq!(parse_addr(b"0x"), None);
    }

    #[test]
    fn trim_strips_both_ends() {
        assert_eq!(trim(b"  a b\t"), b"a b");
        assert_eq!(trim(b"   "), b"");
        assert_eq!(trim(b""), b"");
    }
}
