//! Binomial coefficients, exact (`u128`, overflow-checked) and in
//! log-space.

/// `C(n, k)` exactly, or `None` on `u128` overflow.
///
/// Uses the multiplicative formula with interleaved division, so
/// intermediate values stay within one factor of the result.
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        // result *= (n - i); result /= (i + 1)  — with exact division
        // guaranteed because result holds C(n, i) * remaining factors.
        result = result.checked_mul((n - i) as u128)?;
        result /= (i + 1) as u128;
    }
    Some(result)
}

/// `ln C(n, k)` via `ln Γ`, accurate to ~1e-10 relative — for sizes past
/// `u128`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln n!` using Stirling's series (exact table below 32).
pub fn ln_factorial(n: u64) -> f64 {
    if n < 32 {
        let mut acc = 0.0f64;
        for i in 2..=n {
            acc += (i as f64).ln();
        }
        return acc;
    }
    // Stirling series: ln n! ≈ n ln n − n + ½ ln(2πn) + 1/(12n) − 1/(360n³)
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(binomial(0, 0), Some(1));
        assert_eq!(binomial(5, 0), Some(1));
        assert_eq!(binomial(5, 5), Some(1));
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(10, 3), Some(120));
        assert_eq!(binomial(3, 5), Some(0));
    }

    #[test]
    fn pascal_identity() {
        for n in 1..40u64 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k).unwrap(),
                    binomial(n - 1, k - 1).unwrap() + binomial(n - 1, k).unwrap(),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn paper_section2_binomial() {
        // C(131072 + 4 − 1, 4 − 1) = C(131075, 3) = 375,317,149,057,025.
        assert_eq!(binomial(131_075, 3), Some(375_317_149_057_025));
    }

    #[test]
    fn overflow_detected() {
        // C(1000, 500) far exceeds u128.
        assert_eq!(binomial(1000, 500), None);
        // But a large computable one is fine (C(100, 30) ≈ 2.9e25).
        assert_eq!(binomial(100, 30), Some(29_372_339_821_610_944_823_963_760));
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for (n, k) in [(10u64, 3u64), (52, 5), (100, 50), (131_075, 3)] {
            let exact = binomial(n, k).unwrap() as f64;
            let approx = ln_binomial(n, k).exp();
            assert!(
                (approx / exact - 1.0).abs() < 1e-8,
                "C({n},{k}): {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn ln_factorial_exact_region_matches() {
        let mut acc = 1.0f64;
        for n in 1..=30u64 {
            acc *= n as f64;
            assert!((ln_factorial(n) - acc.ln()).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn ln_binomial_edge_cases() {
        assert_eq!(ln_binomial(5, 0), 0.0);
        assert_eq!(ln_binomial(5, 5), 0.0);
        assert_eq!(ln_binomial(3, 7), f64::NEG_INFINITY);
    }
}
