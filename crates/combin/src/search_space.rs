//! Search-space sizes of the three allocation problems (Section II).
//!
//! * **S1** (Eq. 1): sharing only, multiple caches — ways to split `npr`
//!   programs into `nc` non-empty cache populations: `S(npr, nc)`.
//! * **S2** (Eq. 2): partition-sharing a single cache — for each
//!   partition count `npa`, group the programs (`S(npr, npa)`) and place
//!   the walls (`C(C + npa − 1, npa − 1)` ways to deal `C` units to
//!   `npa` bins), summed over `npa`.
//! * **S3** (Eq. 3): partitioning only — `C(C + npr − 1, npr − 1)`.
//!
//! The paper's worked example (`npr = 4`, `C = 131072` 64-byte units of
//! an 8 MB cache) gives `S2 = 375,368,690,761,743` and
//! `S3 = 375,317,149,057,025` — partitioning-only covers 99.99% of
//! partition-sharing, the back-of-envelope justification for reducing
//! the search to partitioning.

use crate::binomial::binomial;
use crate::stirling::stirling2;

/// Eq. 1: `S1 = S(npr, nc)` — sharing only, `nc` caches.
pub fn s1_sharing_multi_cache(npr: u64, nc: u64) -> Option<u128> {
    stirling2(npr, nc)
}

/// Eq. 2: `S2 = Σ_{npa=1..npr} S(npr, npa) · C(C + npa − 1, npa − 1)`.
pub fn s2_partition_sharing(npr: u64, cache_units: u64) -> Option<u128> {
    let mut total: u128 = 0;
    for npa in 1..=npr {
        let groups = stirling2(npr, npa)?;
        let walls = binomial(cache_units + npa - 1, npa - 1)?;
        total = total.checked_add(groups.checked_mul(walls)?)?;
    }
    Some(total)
}

/// Eq. 3: `S3 = C(C + npr − 1, npr − 1)` — partitioning only.
pub fn s3_partitioning_only(npr: u64, cache_units: u64) -> Option<u128> {
    binomial(cache_units + npr - 1, npr - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // npr = 4, C = 8 MB / 64 B = 131072.
        let c = 131_072u64;
        assert_eq!(s3_partitioning_only(4, c), Some(375_317_149_057_025));
        assert_eq!(s2_partition_sharing(4, c), Some(375_368_690_761_743));
        // Coverage ratio quoted as 99.99%.
        let s2 = s2_partition_sharing(4, c).unwrap() as f64;
        let s3 = s3_partitioning_only(4, c).unwrap() as f64;
        assert!(s3 / s2 > 0.9998, "coverage {}", s3 / s2);
    }

    #[test]
    fn evaluation_scale_s3() {
        // Section VII-A: 4 programs, 1024 units → C(1027, 3) ≈ 180 M
        // (the paper says "nearly 180 million ways").
        let s3 = s3_partitioning_only(4, 1024).unwrap();
        assert_eq!(s3, 180_007_425); // C(1027, 3)
    }

    #[test]
    fn s2_exhaustive_check_tiny() {
        // npr = 2, C = 3: npa=1 → S(2,1)·C(3,0)=1; npa=2 → S(2,2)·C(4,1)=4.
        assert_eq!(s2_partition_sharing(2, 3), Some(5));
        // npr = 3, C = 2:
        //   npa=1: S(3,1)·C(2,0) = 1
        //   npa=2: S(3,2)·C(3,1) = 3·3 = 9
        //   npa=3: S(3,3)·C(4,2) = 1·6 = 6
        assert_eq!(s2_partition_sharing(3, 2), Some(16));
    }

    #[test]
    fn s1_is_stirling() {
        assert_eq!(s1_sharing_multi_cache(4, 2), Some(7));
        assert_eq!(s1_sharing_multi_cache(20, 2), stirling2(20, 2));
    }

    #[test]
    fn single_program_degenerates() {
        assert_eq!(s3_partitioning_only(1, 1000), Some(1));
        assert_eq!(s2_partition_sharing(1, 1000), Some(1));
    }
}
