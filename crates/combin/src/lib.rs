//! Combinatorics substrate: the search-space arithmetic of Section II.
//!
//! The paper sizes three allocation problems — sharing across multiple
//! caches (Stirling numbers, Eq. 1), partition-sharing of a single cache
//! (Eq. 2), and partitioning only (stars-and-bars, Eq. 3) — and uses the
//! worked example `npr = 4, C = 131072` to show partitioning-only covers
//! 99.99% of the partition-sharing space. This crate reproduces that
//! arithmetic exactly in `u128` (with overflow detection) and in
//! log-space `f64` for sizes past `u128`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binomial;
pub mod search_space;
pub mod stirling;

pub use binomial::{binomial, ln_binomial};
pub use search_space::{s1_sharing_multi_cache, s2_partition_sharing, s3_partitioning_only};
pub use stirling::{ln_stirling2, stirling2};
