//! Stirling numbers of the second kind.
//!
//! `S(n, k)` counts the ways to partition `n` labelled programs into `k`
//! non-empty groups — the grouping factor in the paper's Eq. 1 and 2.

/// `S(n, k)` exactly via the triangular recurrence
/// `S(n, k) = k·S(n−1, k) + S(n−1, k−1)`, or `None` on `u128` overflow.
pub fn stirling2(n: u64, k: u64) -> Option<u128> {
    if n == 0 && k == 0 {
        return Some(1);
    }
    if k == 0 || k > n {
        return Some(0);
    }
    let n = n as usize;
    let k = k as usize;
    // Row-by-row DP over k columns.
    let mut row: Vec<u128> = vec![0; k + 1];
    row[0] = 1; // S(0, 0)
    for _ in 1..=n {
        // Iterate columns right-to-left so row holds the previous n.
        let mut next = vec![0u128; k + 1];
        for j in 1..=k {
            let term = (j as u128).checked_mul(row[j])?;
            next[j] = term.checked_add(row[j - 1])?;
        }
        row = next;
    }
    Some(row[k])
}

/// `ln S(n, k)` by summing the explicit inclusion–exclusion formula in
/// shifted log-space; usable when the exact value overflows.
pub fn ln_stirling2(n: u64, k: u64) -> f64 {
    match stirling2(n, k) {
        Some(0) => f64::NEG_INFINITY,
        Some(v) if v < (1u128 << 100) => (v as f64).ln(),
        _ => {
            // S(n,k) = (1/k!) Σ_{j=0..k} (−1)^(k−j) C(k,j) j^n.
            // Sum alternating terms in shifted log space.
            let kf = super::binomial::ln_factorial(k);
            let mut max_ln = f64::NEG_INFINITY;
            let terms: Vec<(f64, f64)> = (0..=k)
                .map(|j| {
                    let sign = if (k - j).is_multiple_of(2) { 1.0 } else { -1.0 };
                    let ln_t = if j == 0 {
                        if n == 0 {
                            0.0
                        } else {
                            f64::NEG_INFINITY
                        }
                    } else {
                        super::binomial::ln_binomial(k, j) + n as f64 * (j as f64).ln()
                    };
                    max_ln = max_ln.max(ln_t);
                    (sign, ln_t)
                })
                .collect();
            let sum: f64 = terms
                .iter()
                .map(|(s, ln_t)| s * (ln_t - max_ln).exp())
                .sum();
            max_ln + sum.ln() - kf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_values() {
        assert_eq!(stirling2(0, 0), Some(1));
        assert_eq!(stirling2(3, 0), Some(0));
        assert_eq!(stirling2(0, 1), Some(0));
        assert_eq!(stirling2(4, 1), Some(1));
        assert_eq!(stirling2(4, 2), Some(7));
        assert_eq!(stirling2(4, 3), Some(6));
        assert_eq!(stirling2(4, 4), Some(1));
        assert_eq!(stirling2(5, 2), Some(15));
        assert_eq!(stirling2(5, 3), Some(25));
        assert_eq!(stirling2(10, 5), Some(42_525));
    }

    #[test]
    fn row_sums_are_bell_numbers() {
        // Bell numbers: 1, 1, 2, 5, 15, 52, 203, 877, 4140.
        let bell = [1u128, 1, 2, 5, 15, 52, 203, 877, 4140];
        for (n, &b) in bell.iter().enumerate() {
            let sum: u128 = (0..=n as u64)
                .map(|k| stirling2(n as u64, k).unwrap())
                .sum();
            assert_eq!(sum, b, "Bell({n})");
        }
    }

    #[test]
    fn k_bigger_than_n_is_zero() {
        assert_eq!(stirling2(3, 5), Some(0));
        assert_eq!(ln_stirling2(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_matches_exact_in_range() {
        for (n, k) in [(10u64, 4u64), (20, 7), (30, 3), (40, 6)] {
            let exact = stirling2(n, k).unwrap() as f64;
            let approx = ln_stirling2(n, k).exp();
            assert!(
                (approx / exact - 1.0).abs() < 1e-6,
                "S({n},{k}): {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn large_values_via_log_space() {
        // S(300, 20) overflows u128; ln value must still be finite and
        // bounded by ln(20^300 / 20!) from above.
        let v = ln_stirling2(300, 20);
        assert!(v.is_finite());
        let upper = 300.0 * 20f64.ln();
        assert!(v < upper);
        assert!(v > 0.9 * upper - 50.0);
    }
}
