//! Property coverage for the two-level hierarchical DP.
//!
//! The load-bearing guarantee: with one tenant per node and
//! non-binding caps, `solve_two_level` is **bit-identical** to the flat
//! `DpSolver::solve` — same allocation vector, same cost down to the
//! f64 bit pattern — on arbitrary cost curves under every objective.
//! With arbitrary groupings the hierarchy only restricts the flat
//! search space, so its cost is bounded below by the flat optimum and
//! the budgets always respect node caps and partition the total.

use cps_cluster::solve_two_level;
use cps_core::{CostCurve, DpSolver, Objective};
use proptest::prelude::*;

/// Arbitrary finite cost curves (values in `[0, 1]`, varying lengths —
/// shorter curves exercise `CostCurve::at` clamping on both paths).
fn arb_curves() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0u32..1_000, 1..12), 1..5).prop_map(|curves| {
        curves
            .into_iter()
            .map(|c| c.into_iter().map(|v| v as f64 / 1_000.0).collect())
            .collect()
    })
}

/// Every objective whose accumulation is independent of the tenant
/// count (value-weighted pins its weight vector to the group size, so
/// the sweep covers it separately in the scheme tests). The DP only
/// consumes an objective's `combine`/`group_cost` here — the curves are
/// raw, not objective-built — which is exactly the seam the hierarchy
/// must agree with the flat solver on.
fn arb_objective() -> impl Strategy<Value = Objective> {
    prop_oneof![
        Just(Objective::MissRatioSum),
        Just(Objective::MaxMissRatio),
        Just(Objective::Utility { curvature: 0.5 }),
        Just(Objective::MaxSlowdown),
    ]
}

fn to_cost_curves(raw: &[Vec<f64>]) -> Vec<CostCurve> {
    raw.iter().map(|c| CostCurve::from_raw(c.clone())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One tenant per node, caps ≥ total: the two-level solve IS the
    /// flat solve, allocation and cost bits alike.
    #[test]
    fn singleton_nodes_are_bit_identical_to_flat(
        raw in arb_curves(),
        total in 1usize..10,
        objective in arb_objective(),
    ) {
        let costs = to_cost_curves(&raw);
        let mut solver = DpSolver::new();
        let flat = solver.solve(&costs, total, &objective).expect("finite curves");
        let groups: Vec<Vec<usize>> = (0..costs.len()).map(|i| vec![i]).collect();
        let caps = vec![total; costs.len()];
        let two = solve_two_level(&mut solver, &costs, &groups, &caps, total, &objective)
            .expect("caps do not bind");
        prop_assert_eq!(&two.allocation, &flat.allocation);
        prop_assert_eq!(two.cost.to_bits(), flat.cost.to_bits());
        prop_assert_eq!(&two.budgets, &flat.allocation);
    }

    /// Arbitrary groupings: budgets respect caps and partition the
    /// total, the per-tenant allocation partitions each budget, and the
    /// hierarchical cost never beats the flat optimum.
    #[test]
    fn grouped_solve_is_capped_exact_and_bounded_below_by_flat(
        raw in arb_curves(),
        total in 1usize..10,
        nodes in 1usize..4,
        placement_bits in any::<u64>(),
        objective in arb_objective(),
    ) {
        let costs = to_cost_curves(&raw);
        let mut solver = DpSolver::new();
        let flat = solver.solve(&costs, total, &objective).expect("finite curves");
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        for i in 0..costs.len() {
            groups[((placement_bits >> (2 * i)) as usize) % nodes].push(i);
        }
        // Caps equal to the total never bind an occupied node, so the
        // split stays feasible for every generated grouping.
        let caps = vec![total; nodes];
        let two = solve_two_level(&mut solver, &costs, &groups, &caps, total, &objective)
            .expect("occupied caps absorb the total");
        prop_assert_eq!(two.budgets.iter().sum::<usize>(), total);
        for (n, (&budget, group)) in two.budgets.iter().zip(&groups).enumerate() {
            prop_assert!(budget <= caps[n]);
            if group.is_empty() {
                prop_assert_eq!(budget, 0, "empty node {} must idle", n);
            }
            let group_units: usize = group.iter().map(|&i| two.allocation[i]).sum();
            prop_assert_eq!(group_units, budget, "node {} budget partitioned", n);
        }
        prop_assert_eq!(two.allocation.iter().sum::<usize>(), total);
        // Float association differs between the two fold orders, so the
        // lower bound carries an epsilon.
        prop_assert!(
            two.cost >= flat.cost - 1e-9,
            "hierarchy {} beat flat {}",
            two.cost,
            flat.cost
        );
    }

    /// Everyone on one uncapped node is just the flat solve with extra
    /// steps — bit-identical again, whatever the other (empty) nodes.
    #[test]
    fn one_shared_node_matches_flat(
        raw in arb_curves(),
        total in 1usize..10,
        extra_nodes in 0usize..3,
        objective in arb_objective(),
    ) {
        let costs = to_cost_curves(&raw);
        let mut solver = DpSolver::new();
        let flat = solver.solve(&costs, total, &objective).expect("finite curves");
        let mut groups = vec![(0..costs.len()).collect::<Vec<_>>()];
        groups.extend(std::iter::repeat_with(Vec::new).take(extra_nodes));
        let caps = vec![total; 1 + extra_nodes];
        let two = solve_two_level(&mut solver, &costs, &groups, &caps, total, &objective)
            .expect("the shared node absorbs everything");
        prop_assert_eq!(&two.allocation, &flat.allocation);
        prop_assert_eq!(two.cost.to_bits(), flat.cost.to_bits());
        prop_assert_eq!(two.budgets[0], total);
    }
}
