//! The cluster over real sockets: a coordinator driving live
//! `cps serve` daemons through the wire protocol's external-clocking
//! verbs — and surviving one of them dying mid-run.
//!
//! The failure injection is the protocol's own shutdown semantics: an
//! out-of-band client sending `Shutdown` to a daemon closes every
//! other session's socket, so the coordinator's next exchange with
//! that node fails with a typed error. The required behaviour: no
//! panic, no hang, the node is marked failed, records routed to it are
//! counted as dropped, and the surviving nodes keep solving epochs.

use cps_cluster::{ClusterConfig, ClusterNode, Coordinator, NodeFinish};
use cps_core::CacheConfig;
use cps_engine::{EngineConfig, EngineKind};
use cps_obs::{Journal, MetricsRegistry};
use cps_serve::{Client, ServeConfig, ServeOutcome, Server};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Starts an in-process daemon shaped for external epoch clocking: the
/// single engine with an epoch length its stream can never reach (the
/// coordinator is the clock).
fn start_node(units: usize, tenants: usize) -> (String, JoinHandle<Result<ServeOutcome, String>>) {
    let config = ServeConfig {
        engine: EngineConfig::new(CacheConfig::new(units, 1), usize::MAX),
        kind: EngineKind::Single,
        tenants,
        max_conns: 8,
        idle_timeout: Duration::from_secs(10),
        window_cap: 1 << 16,
        resume_grace: Duration::from_secs(5),
        telemetry_addr: None,
    };
    let server = Server::bind("127.0.0.1:0", config, Arc::new(MetricsRegistry::new()))
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

/// Two tenants with distinct locality: a tight loop and a wide scan.
fn two_tenant_stream(len: u64) -> Vec<(usize, u64)> {
    (0..len)
        .map(|i| ((i % 2) as usize, if i % 2 == 0 { i % 6 } else { i % 48 }))
        .collect()
}

#[test]
fn remote_cluster_runs_end_to_end() {
    let (addr0, server0) = start_node(16, 2);
    let (addr1, server1) = start_node(16, 2);

    let nodes = vec![
        ClusterNode::connect(&addr0).expect("connect node 0"),
        ClusterNode::connect(&addr1).expect("connect node 1"),
    ];
    assert_eq!(nodes[0].capacity(), 16);
    assert_eq!(nodes[0].tenants(), 2);
    assert_eq!(nodes[0].addr(), Some(addr0.as_str()));

    let config = ClusterConfig::new(16, 1, 500);
    let mut cluster = Coordinator::new(config, nodes, vec![0, 1]).expect("topology");
    cluster.run(two_tenant_stream(3_000));
    let report = cluster.finish();

    assert_eq!(report.epochs.len(), 6);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.dropped_records, 0);
    for epoch in &report.epochs {
        assert_eq!(epoch.allocation.iter().sum::<usize>(), 16);
    }
    assert!(
        report.epochs.last().unwrap().predicted_cost.is_some(),
        "solves must run once curves exist"
    );
    // Remote finishes carry each daemon's rendered journal.
    for finish in &report.node_finishes {
        match finish {
            Some(NodeFinish::Remote(journal)) => {
                assert!(journal.contains("\"engine\":"), "daemon journal text");
            }
            other => panic!("expected remote finish, got {other:?}"),
        }
    }
    let journal = Journal::parse(&report.journal()).expect("parses");
    journal.validate().expect("validates");
    assert_eq!(journal.header.engine, "cluster");

    server0.join().unwrap().expect("daemon 0 clean exit");
    server1.join().unwrap().expect("daemon 1 clean exit");
}

#[test]
fn node_death_mid_run_is_survivable() {
    let (addr0, server0) = start_node(16, 2);
    let (addr1, _server1) = start_node(16, 2);

    let nodes = vec![
        ClusterNode::connect(&addr0).expect("connect node 0"),
        ClusterNode::connect(&addr1).expect("connect node 1"),
    ];
    let config = ClusterConfig::new(16, 1, 500);
    let mut cluster = Coordinator::new(config, nodes, vec![0, 1]).expect("topology");

    let stream = two_tenant_stream(4_000);
    // Two clean epochs first, so both tenants have cached curves.
    cluster.run(stream[..1_000].iter().copied());
    assert_eq!(cluster.epochs_completed(), 2);
    assert_eq!(cluster.nodes_alive(), 2);

    // Kill node 1 out-of-band: the daemon's shutdown closes the
    // coordinator's session socket mid-epoch.
    let killer = Client::connect(&addr1, None).expect("second session");
    let _ = killer.shutdown().expect("daemon shuts down");

    // The rest of the stream must flow without panic or hang.
    cluster.run(stream[1_000..].iter().copied());
    assert_eq!(cluster.nodes_alive(), 1);
    let report = cluster.finish();

    // The failure is typed and attributed to node 1.
    assert!(!report.failures.is_empty());
    assert!(
        report.failures.iter().all(|f| f.node == 1),
        "{:?}",
        report.failures
    );
    // Tenant 1's records after the kill were dropped, not lost silently.
    assert!(report.dropped_records > 0);
    // The coordinator re-solved over the survivor: post-failure epochs
    // still carry predictions (tenant 0 alone on a 16-unit node).
    assert_eq!(report.epochs.len(), 8);
    assert!(
        report.epochs.last().unwrap().predicted_cost.is_some(),
        "survivor epochs must keep solving"
    );
    // Node 1 has no finish artifact; node 0 shut down cleanly.
    assert!(report.node_finishes[1].is_none());
    assert!(matches!(
        report.node_finishes[0],
        Some(NodeFinish::Remote(_))
    ));
    // The journal still parses and validates under the flat schema.
    let journal = Journal::parse(&report.journal()).expect("parses");
    journal.validate().expect("validates");

    server0.join().unwrap().expect("daemon 0 clean exit");
}
