//! The cluster identity property: a coordinator driving one
//! single-tenant node per tenant (each node as big as the logical
//! cache) walks **exactly** the flat engine's trajectory — epoch by
//! epoch, the same allocation, the same per-tenant realized counts,
//! the same predicted cost to the f64 bit, the same hysteresis verdict
//! and units moved — on adversarially shaped streams.
//!
//! This is the cluster analogue of the queued-vs-buffered report
//! identity: it pins every layer of the decomposition at once (stream
//! routing, externally clocked node epochs, export/merge, global
//! shares, the two-level DP, the logical hysteresis decision, and the
//! partial-epoch finish).

use cps_cluster::{ClusterConfig, ClusterNode, Coordinator};
use cps_core::CacheConfig;
use cps_engine::{EngineConfig, RepartitionEngine};
use cps_trace::{interleave_proportional, Trace, WorkloadSpec};
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0usize..3, 0u64..60), 50..1_200)
}

/// Builds the T-singleton-node coordinator twin of a flat config.
fn singleton_cluster(units: usize, epoch: usize, hysteresis: usize, tenants: usize) -> Coordinator {
    let nodes: Vec<ClusterNode> = (0..tenants)
        .map(|_| {
            ClusterNode::local(
                EngineConfig::new(CacheConfig::new(units, 1), epoch),
                tenants,
            )
        })
        .collect();
    let placement: Vec<usize> = (0..tenants).collect();
    let config = ClusterConfig::new(units, 1, epoch).hysteresis(hysteresis);
    Coordinator::new(config, nodes, placement).expect("valid topology")
}

fn assert_trajectory_identical(
    flat: &cps_engine::EngineReport,
    cluster: &cps_cluster::ClusterReport,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(flat.epochs.len(), cluster.epochs.len(), "epoch count");
    for (fe, ce) in flat.epochs.iter().zip(&cluster.epochs) {
        prop_assert_eq!(fe.epoch, ce.epoch);
        prop_assert_eq!(&fe.allocation, &ce.allocation, "epoch {}", fe.epoch);
        prop_assert_eq!(&fe.per_tenant, &ce.per_tenant, "epoch {}", fe.epoch);
        prop_assert_eq!(
            fe.predicted_cost.map(f64::to_bits),
            ce.predicted_cost.map(f64::to_bits),
            "predicted cost bits, epoch {}",
            fe.epoch
        );
        prop_assert_eq!(fe.repartitioned, ce.repartitioned, "epoch {}", fe.epoch);
        prop_assert_eq!(fe.units_moved, ce.units_moved, "epoch {}", fe.epoch);
    }
    prop_assert_eq!(&flat.totals, &cluster.totals, "totals");
    prop_assert_eq!(
        flat.cumulative_miss_ratio().to_bits(),
        cluster.cumulative_miss_ratio().to_bits()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn singleton_node_cluster_walks_the_flat_trajectory(
        accesses in stream_strategy(),
        units in 6usize..40,
        epoch in 40usize..400,
        hysteresis in 1usize..6,
    ) {
        let flat_cfg =
            EngineConfig::new(CacheConfig::new(units, 1), epoch).hysteresis(hysteresis);
        let mut flat = RepartitionEngine::new(flat_cfg, 3);
        flat.run(accesses.iter().copied());
        let flat = flat.finish();

        let mut cluster = singleton_cluster(units, epoch, hysteresis, 3);
        cluster.run(accesses.iter().copied());
        let cluster = cluster.finish();

        assert_trajectory_identical(&flat, &cluster)?;
        prop_assert!(cluster.failures.is_empty());
        prop_assert_eq!(cluster.dropped_records, 0);
        prop_assert!(cluster.migrations.is_empty(), "no migration pass configured");
    }
}

/// The structured 4-tenant mix the serve e2e suite uses, at a longer
/// horizon than the proptest cases: a deterministic smoke of the same
/// identity, including the trailing partial epoch.
#[test]
fn standard_mix_identity_with_partial_final_epoch() {
    let specs = [
        WorkloadSpec::SequentialLoop { working_set: 24 },
        WorkloadSpec::Zipfian {
            region: 150,
            alpha: 0.8,
        },
        WorkloadSpec::WorkingSetWalk {
            region: 300,
            window: 30,
            dwell: 500,
        },
        WorkloadSpec::UniformRandom { region: 400 },
    ];
    let rates = [1.0, 2.0, 1.0, 1.5];
    let len = 20_500; // not a multiple of the epoch: partial finish
    let traces: Vec<Trace> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| s.generate(len, 7 + i as u64 + 1))
        .collect();
    let refs: Vec<&Trace> = traces.iter().collect();
    let stream: Vec<(usize, u64)> = interleave_proportional(&refs, &rates, len)
        .tenant_accesses()
        .collect();

    let flat_cfg = EngineConfig::new(CacheConfig::new(32, 4), 2_000).hysteresis(2);
    let mut flat = RepartitionEngine::new(flat_cfg, 4);
    flat.run(stream.iter().copied());
    let flat = flat.finish();

    let nodes: Vec<ClusterNode> = (0..4)
        .map(|_| ClusterNode::local(EngineConfig::new(CacheConfig::new(32, 4), 2_000), 4))
        .collect();
    let config = ClusterConfig::new(32, 4, 2_000).hysteresis(2);
    let mut cluster = Coordinator::new(config, nodes, vec![0, 1, 2, 3]).expect("topology");
    cluster.run(stream.iter().copied());
    let cluster = cluster.finish();

    assert_eq!(flat.epochs.len(), cluster.epochs.len());
    assert_eq!(flat.epochs.len(), 11, "10 full epochs + partial");
    for (fe, ce) in flat.epochs.iter().zip(&cluster.epochs) {
        assert_eq!(fe.allocation, ce.allocation, "epoch {}", fe.epoch);
        assert_eq!(fe.per_tenant, ce.per_tenant, "epoch {}", fe.epoch);
        assert_eq!(
            fe.predicted_cost.map(f64::to_bits),
            ce.predicted_cost.map(f64::to_bits),
            "epoch {}",
            fe.epoch
        );
        assert_eq!(fe.repartitioned, ce.repartitioned, "epoch {}", fe.epoch);
        assert_eq!(fe.units_moved, ce.units_moved, "epoch {}", fe.epoch);
    }
    assert_eq!(flat.totals, cluster.totals);

    // The cluster journal validates under the flat schema.
    let journal = cps_obs::Journal::parse(&cluster.journal()).expect("parses");
    journal.validate().expect("validates");
    assert_eq!(journal.header.engine, "cluster");
    assert_eq!(journal.header.shards, 4);
}
