//! The cluster coordinator: one control loop over many engine nodes.
//!
//! The coordinator owns the epoch clock. Nodes are built with an
//! effectively infinite internal epoch length, so every boundary is
//! driven from here as an export → solve → apply beat:
//!
//! 1. **Route** — each record goes to its tenant's home node
//!    (placement is routing: every node carries the full tenant-slot
//!    set, so a move never changes any node's schema).
//! 2. **Export** — at the boundary every live node closes its profile
//!    window and ships per-tenant cost curves and realized counts up.
//! 3. **Solve** — the coordinator weighs curves by *global* access
//!    shares (exactly as the flat engine's solve stage would) and runs
//!    the two-level DP of [`crate::hierarchy`]: node frontiers, then a
//!    top-level split of total capacity into per-node budgets.
//! 4. **Apply** — the global hysteresis decision is all-or-nothing
//!    across nodes, taken against the coordinator's *logical*
//!    allocation (which therefore always partitions total capacity,
//!    keeping the cluster journal valid under the flat schema); nodes
//!    run with local hysteresis disabled and book whatever comes down.
//!
//! With one tenant per node and full-capacity nodes this loop is
//! **trajectory-identical** to the flat single engine — same
//! allocations, predictions, hysteresis verdicts, and counts, epoch by
//! epoch, bit for bit (`tests/identity.rs`). The cluster-only
//! behaviours layer on top: a migration pass that re-homes one tenant
//! per epoch when the two-level gap pays for it, and node-failure
//! handling that marks a dead node, re-solves over the survivors, and
//! keeps serving.

use cps_cachesim::AccessCounts;
use cps_core::{access_shares, build_cost_curves, CacheConfig, CostCurve, DpSolver, Objective};
use cps_engine::{units_moved, Actuation, Block, EpochRecord, TenantId};
use cps_hotl::MissRatioCurve;
use cps_obs::{
    Counter, Gauge, MetricsRegistry, MigrationEvent, NodeSpan, Stage, StageTimings, Stopwatch,
};

use crate::hierarchy::{solve_two_level, TwoLevelResult};
use crate::node::ClusterNode;
use crate::report::{ClusterReport, NodeFailure};

/// Records buffered per node before a mid-epoch flush.
const FLUSH_BATCH: usize = 1_024;

/// The coordinator's knobs.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Total logical capacity split across nodes (the top-level DP's
    /// `C`).
    pub total_units: usize,
    /// Blocks per unit; must match every node's geometry.
    pub bpu: usize,
    /// Accesses per coordinator epoch.
    pub epoch_length: usize,
    /// Partitioning objective for both DP levels.
    pub objective: Objective,
    /// Global hysteresis: a proposed reallocation is applied (on every
    /// node at once) only when it moves at least this many units of
    /// the logical allocation.
    pub hysteresis: usize,
    /// Relative cost gain a single-tenant re-homing must clear to
    /// trigger a migration; `None` disables the migration pass.
    pub migrate_threshold: Option<f64>,
}

impl ClusterConfig {
    /// A throughput-objective cluster with no migration and the same
    /// no-hysteresis default as the flat engine.
    ///
    /// # Panics
    /// Panics if any argument is zero.
    pub fn new(total_units: usize, bpu: usize, epoch_length: usize) -> Self {
        assert!(total_units > 0, "need at least one unit");
        assert!(bpu > 0, "unit must hold at least one block");
        assert!(epoch_length > 0, "epochs need at least one access");
        ClusterConfig {
            total_units,
            bpu,
            epoch_length,
            objective: Objective::MissRatioSum,
            hysteresis: 1,
            migrate_threshold: None,
        }
    }

    /// Sets the partitioning objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the global minimum units-moved threshold.
    pub fn hysteresis(mut self, min_units: usize) -> Self {
        self.hysteresis = min_units;
        self
    }

    /// Enables the migration pass with a relative-gain threshold.
    ///
    /// # Panics
    /// Panics if `threshold` is negative or not finite.
    pub fn migrate(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "migration threshold must be a finite non-negative ratio"
        );
        self.migrate_threshold = Some(threshold);
        self
    }

    /// The logical cache geometry the top-level DP partitions.
    pub fn cache(&self) -> CacheConfig {
        CacheConfig::new(self.total_units, self.bpu)
    }
}

/// Registered `cps_cluster_*` instruments.
struct ClusterMetrics {
    epochs: Counter,
    records: Counter,
    dropped: Counter,
    repartitions: Counter,
    units_moved: Counter,
    migrations: Counter,
    node_failures: Counter,
    solve_nanos: Counter,
    nodes_alive: Gauge,
}

impl ClusterMetrics {
    fn register(registry: &MetricsRegistry, nodes: usize) -> ClusterMetrics {
        let m = ClusterMetrics {
            epochs: registry.counter("cps_cluster_epochs_total", "Coordinator epochs completed"),
            records: registry.counter("cps_cluster_records_total", "Records routed to nodes"),
            dropped: registry.counter(
                "cps_cluster_dropped_records_total",
                "Records dropped because their home node had failed",
            ),
            repartitions: registry.counter(
                "cps_cluster_repartitions_total",
                "Boundaries at which the logical allocation changed",
            ),
            units_moved: registry.counter(
                "cps_cluster_units_moved_total",
                "Logical units moved by applied repartitions",
            ),
            migrations: registry.counter(
                "cps_cluster_migrations_total",
                "Tenants re-homed by the migration pass",
            ),
            node_failures: registry.counter(
                "cps_cluster_node_failures_total",
                "Nodes marked dead after a typed node error",
            ),
            solve_nanos: registry.counter(
                "cps_cluster_solve_nanos_total",
                "Wall-clock nanoseconds in two-level solves",
            ),
            nodes_alive: registry.gauge("cps_cluster_nodes_alive", "Live nodes"),
        };
        m.nodes_alive.set(nodes as i64);
        m
    }
}

struct NodeSlot {
    node: ClusterNode,
    alive: bool,
}

/// One epoch's solve artifacts, kept so the migration pass can re-use
/// the cost curves without re-exporting. `result` is `None` when the
/// current placement admits no exact split of total capacity (e.g. the
/// occupied nodes' caps cannot absorb it) — the migration pass still
/// runs on the curves and treats that state as infinitely costly.
struct EpochSolve {
    result: Option<TwoLevelResult>,
    /// Global tenant ids behind each position of `costs`.
    active: Vec<usize>,
    costs: Vec<CostCurve>,
    groups: Vec<Vec<usize>>,
}

/// The multi-node control loop. See the module docs for the epoch
/// beat; construct with [`Coordinator::new`], feed accesses through
/// [`record_access`](Coordinator::record_access) or
/// [`run`](Coordinator::run), and close with
/// [`finish`](Coordinator::finish).
pub struct Coordinator {
    config: ClusterConfig,
    nodes: Vec<NodeSlot>,
    capacities: Vec<usize>,
    placement: Vec<usize>,
    /// The coordinator's capacity ledger: per-tenant logical units,
    /// always an exact partition of `total_units` — what the cluster
    /// journal records as the allocation in force.
    logical: Vec<usize>,
    /// Last known miss-ratio curve per tenant. Refreshed from the home
    /// node's export each epoch; survives a migration so the solve
    /// doesn't stall while the new home's profiler warms up.
    cached: Vec<Option<MissRatioCurve>>,
    /// Per-node physical slot allocations as last pushed down (or the
    /// node's initial equal split before any push).
    node_alloc: Vec<Vec<usize>>,
    buffers: Vec<Vec<(TenantId, Block)>>,
    epoch_accesses: usize,
    records: Vec<EpochRecord>,
    totals: Vec<AccessCounts>,
    migrations: Vec<MigrationEvent>,
    failures: Vec<NodeFailure>,
    dropped_records: u64,
    solver: DpSolver,
    metrics: Option<ClusterMetrics>,
    /// The run clock epoch-start timestamps are measured against.
    run_start: std::time::Instant,
    /// Seed for per-epoch trace ids — one id correlates a boundary's
    /// cluster record with every node's booked epoch.
    trace_nonce: u64,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("nodes", &self.nodes.len())
            .field("tenants", &self.placement.len())
            .field("placement", &self.placement)
            .field("logical", &self.logical)
            .field("epochs", &self.records.len())
            .finish_non_exhaustive()
    }
}

impl Coordinator {
    /// Builds a coordinator over `nodes` with the given tenant →
    /// node `placement`. Fails (with a human-readable reason) when the
    /// topology cannot work: no nodes, inconsistent tenant-slot counts
    /// or geometry, out-of-range placement, or capacities that cannot
    /// absorb the logical cache.
    pub fn new(
        config: ClusterConfig,
        nodes: Vec<ClusterNode>,
        placement: Vec<usize>,
    ) -> Result<Coordinator, String> {
        if nodes.is_empty() {
            return Err("a cluster needs at least one node".to_string());
        }
        let tenants = nodes[0].tenants();
        if tenants == 0 {
            return Err("a cluster needs at least one tenant".to_string());
        }
        for (n, node) in nodes.iter().enumerate() {
            if node.tenants() != tenants {
                return Err(format!(
                    "node {n} has {} tenant slots, node 0 has {tenants}; every node must carry \
                     the full tenant set",
                    node.tenants()
                ));
            }
            if node.bpu() != config.bpu {
                return Err(format!(
                    "node {n} uses {}-block units, the cluster uses {}-block units",
                    node.bpu(),
                    config.bpu
                ));
            }
            if node.objective() != config.objective.name() {
                return Err(format!(
                    "node {n} optimizes `{}`, the cluster optimizes `{}`; every node must share \
                     the coordinator's objective",
                    node.objective(),
                    config.objective.name()
                ));
            }
        }
        if placement.len() != tenants {
            return Err(format!(
                "placement names {} tenants, nodes carry {tenants}",
                placement.len()
            ));
        }
        if let Some(&bad) = placement.iter().find(|&&n| n >= nodes.len()) {
            return Err(format!(
                "placement routes a tenant to node {bad}, but there are only {} nodes",
                nodes.len()
            ));
        }
        let total_capacity: usize = nodes.iter().map(|n| n.capacity()).sum();
        if total_capacity < config.total_units {
            return Err(format!(
                "node capacities sum to {total_capacity} units; cannot host a {}-unit cluster",
                config.total_units
            ));
        }
        let capacities: Vec<usize> = nodes.iter().map(|n| n.capacity()).collect();
        let node_alloc = capacities
            .iter()
            .map(|&cap| CacheConfig::new(cap, config.bpu).equal_split(tenants))
            .collect();
        let logical = config.cache().equal_split(tenants);
        let node_count = nodes.len();
        Ok(Coordinator {
            config,
            nodes: nodes
                .into_iter()
                .map(|node| NodeSlot { node, alive: true })
                .collect(),
            capacities,
            placement,
            logical,
            cached: vec![None; tenants],
            node_alloc,
            buffers: vec![Vec::new(); node_count],
            epoch_accesses: 0,
            records: Vec::new(),
            totals: vec![AccessCounts::default(); tenants],
            migrations: Vec::new(),
            failures: Vec::new(),
            dropped_records: 0,
            solver: DpSolver::new(),
            metrics: None,
            run_start: std::time::Instant::now(),
            trace_nonce: trace_nonce(),
        })
    }

    /// Like [`Coordinator::new`], registering `cps_cluster_*`
    /// instruments on `registry`.
    pub fn with_metrics(
        config: ClusterConfig,
        nodes: Vec<ClusterNode>,
        placement: Vec<usize>,
        registry: &MetricsRegistry,
    ) -> Result<Coordinator, String> {
        let mut coordinator = Coordinator::new(config, nodes, placement)?;
        coordinator.metrics = Some(ClusterMetrics::register(registry, coordinator.nodes.len()));
        Ok(coordinator)
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.placement.len()
    }

    /// Current tenant → node routing.
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// The logical per-tenant allocation (partitions `total_units`).
    pub fn logical_allocation(&self) -> &[usize] {
        &self.logical
    }

    /// Coordinator epochs completed so far.
    pub fn epochs_completed(&self) -> usize {
        self.records.len()
    }

    /// Nodes currently alive.
    pub fn nodes_alive(&self) -> usize {
        self.nodes.iter().filter(|s| s.alive).count()
    }

    /// Routes one access to its tenant's home node, driving the epoch
    /// clock. Records for a failed node are counted and dropped — the
    /// cluster keeps serving the survivors.
    ///
    /// # Panics
    /// Panics if `tenant` is out of range.
    pub fn record_access(&mut self, tenant: TenantId, block: Block) {
        assert!(tenant < self.tenants(), "tenant {tenant} out of range");
        let home = self.placement[tenant];
        if self.nodes[home].alive {
            self.buffers[home].push((tenant, block));
            if let Some(m) = &self.metrics {
                m.records.inc();
            }
            if self.buffers[home].len() >= FLUSH_BATCH {
                self.flush_node(home);
            }
        } else {
            self.dropped_records += 1;
            if let Some(m) = &self.metrics {
                m.dropped.inc();
            }
        }
        self.epoch_accesses += 1;
        if self.epoch_accesses >= self.config.epoch_length {
            self.boundary(true);
        }
    }

    /// Streams a whole access sequence through
    /// [`record_access`](Self::record_access).
    pub fn run(&mut self, accesses: impl IntoIterator<Item = (TenantId, Block)>) {
        for (tenant, block) in accesses {
            self.record_access(tenant, block);
        }
    }

    /// Finishes the run: a trailing partial epoch is exported and
    /// solved like any other but never actuated (exactly the flat
    /// engine's contract), every surviving node is finished, and the
    /// two-level record rolls up into a [`ClusterReport`].
    pub fn finish(mut self) -> ClusterReport {
        if self.epoch_accesses > 0 {
            self.boundary(false);
        }
        let mut node_finishes = Vec::with_capacity(self.nodes.len());
        let epoch = self.records.len();
        for (n, slot) in self.nodes.into_iter().enumerate() {
            if !slot.alive {
                node_finishes.push(None);
                continue;
            }
            match slot.node.finish() {
                Ok(finish) => node_finishes.push(Some(finish)),
                Err(e) => {
                    self.failures.push(NodeFailure {
                        node: n,
                        epoch,
                        error: format!("finish: {e}"),
                    });
                    if let Some(m) = &self.metrics {
                        m.node_failures.inc();
                    }
                    node_finishes.push(None);
                }
            }
        }
        ClusterReport {
            nodes: node_finishes.len(),
            tenants: self.totals.len(),
            total_units: self.config.total_units,
            bpu: self.config.bpu,
            epoch_length: self.config.epoch_length,
            objective: self.config.objective.clone(),
            epochs: self.records,
            totals: self.totals,
            migrations: self.migrations,
            failures: self.failures,
            dropped_records: self.dropped_records,
            node_finishes,
        }
    }

    /// Flushes node `n`'s buffered records; a push failure kills the
    /// node and drops the batch.
    fn flush_node(&mut self, n: usize) {
        if self.buffers[n].is_empty() || !self.nodes[n].alive {
            return;
        }
        let batch = std::mem::take(&mut self.buffers[n]);
        if let Err(e) = self.nodes[n].node.push(&batch) {
            self.dropped_records += batch.len() as u64;
            if let Some(m) = &self.metrics {
                m.dropped.add(batch.len() as u64);
            }
            self.fail_node(n, "push", &e.to_string());
        }
    }

    /// Marks node `n` dead and books the failure. Records already on
    /// the node stay there (its engine is simply never heard from
    /// again); future records for its tenants are dropped at routing.
    fn fail_node(&mut self, n: usize, during: &str, error: &str) {
        self.nodes[n].alive = false;
        self.buffers[n].clear();
        self.failures.push(NodeFailure {
            node: n,
            epoch: self.records.len(),
            error: format!("{during}: {error}"),
        });
        if let Some(m) = &self.metrics {
            m.node_failures.inc();
            m.nodes_alive
                .set(self.nodes.iter().filter(|s| s.alive).count() as i64);
        }
    }

    /// One epoch boundary: flush, export, solve, (optionally) apply,
    /// record — and then maybe migrate. `actuate` is false only for a
    /// trailing partial epoch.
    fn boundary(&mut self, actuate: bool) {
        self.epoch_accesses = 0;
        let tenants = self.tenants();
        let mut timings = StageTimings::default();
        let start_nanos = self.run_start.elapsed().as_nanos() as u64;
        // One trace id per boundary, propagated to every node over the
        // wire (COST_CURVES/APPLY) and stamped on each node's booked
        // epoch — grep any journal in the cluster for the id and the
        // same physical boundary comes back. Never 0 (wire: untraced).
        let trace = splitmix64(self.trace_nonce ^ self.records.len() as u64).max(1);
        let mut node_spans: Vec<NodeSpan> = Vec::new();

        let ingest_clock = Stopwatch::start();
        for n in 0..self.nodes.len() {
            self.flush_node(n);
        }
        ingest_clock.record(&mut timings, Stage::Ingest);

        // Export every live node's boundary; a dead export kills the
        // node and the epoch continues over the survivors.
        let profile_clock = Stopwatch::start();
        let objective_spec = self.config.objective.name();
        let mut exports: Vec<Option<Vec<cps_engine::TenantCurve>>> =
            (0..self.nodes.len()).map(|_| None).collect();
        for (n, slot) in exports.iter_mut().enumerate() {
            if !self.nodes[n].alive {
                continue;
            }
            match self.nodes[n].node.export(&objective_spec, Some(trace)) {
                Ok((curves, profile_nanos)) => {
                    *slot = Some(curves);
                    node_spans.push(NodeSpan {
                        node: n,
                        timings: StageTimings {
                            profile_nanos,
                            ..StageTimings::default()
                        },
                    });
                }
                Err(e) => self.fail_node(n, "export", &e.to_string()),
            }
        }
        // Each tenant's epoch truth comes from its home node: realized
        // counts verbatim, curve refreshed whenever the home profiler
        // has one (a fresh export always wins over the cache).
        let mut per_tenant = vec![AccessCounts::default(); tenants];
        for t in 0..tenants {
            let home = self.placement[t];
            if let Some(curves) = exports[home].as_mut() {
                per_tenant[t] = curves[t].counts;
                if curves[t].curve.is_some() {
                    self.cached[t] = curves[t].curve.take();
                }
            }
        }
        profile_clock.record(&mut timings, Stage::Profile);

        let solve_clock = Stopwatch::start();
        let solve = self.solve_epoch(&per_tenant);
        let solve_nanos = solve_clock.elapsed_nanos();
        timings.add(Stage::Solve, solve_nanos);
        if let Some(m) = &self.metrics {
            m.solve_nanos.add(solve_nanos);
        }

        let served = self.logical.clone();
        let mut predicted = None;
        let mut actuation = Actuation {
            repartitioned: false,
            units_moved: 0,
        };
        if let Some(epoch_solve) = &solve {
            if let Some(result) = &epoch_solve.result {
                predicted = Some(result.cost);
                if actuate {
                    let mut proposal = vec![0usize; tenants];
                    for (i, &t) in epoch_solve.active.iter().enumerate() {
                        proposal[t] = result.allocation[i];
                    }
                    let moved = units_moved(&self.logical, &proposal);
                    let repartition = moved >= self.config.hysteresis && moved > 0;
                    actuation = Actuation {
                        repartitioned: repartition,
                        units_moved: moved,
                    };
                    if repartition {
                        self.logical = proposal;
                        for n in 0..self.nodes.len() {
                            if !self.nodes[n].alive {
                                continue;
                            }
                            let mut slots = vec![0usize; tenants];
                            for &t in epoch_solve
                                .active
                                .iter()
                                .filter(|&&t| self.placement[t] == n)
                            {
                                slots[t] = self.logical[t];
                            }
                            self.node_alloc[n] = slots;
                        }
                    }
                }
            }
        }

        // Close every live node's boundary with its current (possibly
        // just-updated) physical allocation; an unchanged push is a
        // no-move no-op at the node, but still books its epoch.
        if actuate {
            let actuate_clock = Stopwatch::start();
            for n in 0..self.nodes.len() {
                if !self.nodes[n].alive {
                    continue;
                }
                let target = self.node_alloc[n].clone();
                match self.nodes[n].node.apply(&target, predicted, Some(trace)) {
                    Ok((_, actuate_nanos)) => {
                        if let Some(span) = node_spans.iter_mut().find(|s| s.node == n) {
                            span.timings.actuate_nanos = actuate_nanos;
                        } else {
                            node_spans.push(NodeSpan {
                                node: n,
                                timings: StageTimings {
                                    actuate_nanos,
                                    ..StageTimings::default()
                                },
                            });
                        }
                    }
                    Err(e) => self.fail_node(n, "apply", &e.to_string()),
                }
            }
            actuate_clock.record(&mut timings, Stage::Actuate);
        }

        for (total, counts) in self.totals.iter_mut().zip(&per_tenant) {
            total.merge(counts);
        }
        if let Some(m) = &self.metrics {
            m.epochs.inc();
            if actuation.repartitioned {
                m.repartitions.inc();
                m.units_moved.add(actuation.units_moved as u64);
            }
        }
        self.records.push(EpochRecord {
            epoch: self.records.len(),
            allocation: served,
            per_tenant,
            predicted_cost: predicted,
            timings,
            ingest: None,
            repartitioned: actuation.repartitioned,
            units_moved: actuation.units_moved,
            start_nanos,
            trace: Some(trace),
            node_spans,
        });

        if actuate && self.config.migrate_threshold.is_some() {
            if let Some(solve) = solve {
                self.consider_migration(&solve);
            }
        }
    }

    /// Runs the two-level solve for the epoch just closed. `None`
    /// mirrors the flat engine's skip conditions: no live tenant, or a
    /// live tenant whose curve has never been seen. An *infeasible*
    /// split (occupied caps cannot absorb the total) comes back as
    /// `Some` with a `None` result, so the migration pass can still
    /// hunt for a placement that restores feasibility.
    fn solve_epoch(&mut self, per_tenant: &[AccessCounts]) -> Option<EpochSolve> {
        let tenants = self.tenants();
        let active: Vec<usize> = (0..tenants)
            .filter(|&t| self.nodes[self.placement[t]].alive)
            .collect();
        if active.is_empty() {
            return None;
        }
        if active.iter().any(|&t| self.cached[t].is_none()) {
            return None;
        }
        let weights: Vec<f64> = per_tenant.iter().map(|c| c.accesses as f64).collect();
        let shares = access_shares(&weights);
        let cache = self.config.cache();
        let mrcs: Vec<&MissRatioCurve> = active
            .iter()
            .map(|&t| self.cached[t].as_ref().expect("checked above"))
            .collect();
        let active_shares: Vec<f64> = active.iter().map(|&t| shares[t]).collect();
        let costs = build_cost_curves(&mrcs, &cache, &active_shares, &self.config.objective, None);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (i, &t) in active.iter().enumerate() {
            groups[self.placement[t]].push(i);
        }
        let result = solve_two_level(
            &mut self.solver,
            &costs,
            &groups,
            &self.capacities,
            self.config.total_units,
            &self.config.objective,
        );
        Some(EpochSolve {
            result,
            active,
            costs,
            groups,
        })
    }

    /// The migration pass: the single best tenant re-homing this
    /// epoch, applied only when its relative cost gain clears the
    /// threshold. When the *current* placement is infeasible (the
    /// occupied caps cannot absorb the total) any feasible re-homing is
    /// a rescue and is taken unconditionally, journaled with
    /// `gain: None`. Re-uses the epoch's cost curves; the move is pure
    /// routing (the destination starts cold and the next boundary's
    /// budgets follow the new grouping).
    fn consider_migration(&mut self, solve: &EpochSolve) {
        let threshold = self.config.migrate_threshold.expect("checked by caller");
        let alive: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| self.nodes[n].alive)
            .collect();
        if alive.len() < 2 {
            return;
        }
        let mut best: Option<(usize, usize, f64)> = None; // (position, to, cost)
        for (i, &t) in solve.active.iter().enumerate() {
            let from = self.placement[t];
            for &to in &alive {
                if to == from {
                    continue;
                }
                let mut groups = solve.groups.clone();
                groups[from].retain(|&j| j != i);
                groups[to].push(i);
                let Some(candidate) = solve_two_level(
                    &mut self.solver,
                    &solve.costs,
                    &groups,
                    &self.capacities,
                    self.config.total_units,
                    &self.config.objective,
                ) else {
                    continue;
                };
                if best.as_ref().is_none_or(|&(_, _, c)| candidate.cost < c) {
                    best = Some((i, to, candidate.cost));
                }
            }
        }
        let Some((i, to, cost)) = best else { return };
        let gain = match &solve.result {
            Some(current) => {
                let relative = if current.cost.abs() > 0.0 {
                    (current.cost - cost) / current.cost.abs()
                } else {
                    0.0
                };
                if relative <= threshold {
                    return;
                }
                Some(relative)
            }
            // Rescue: the current placement cannot host the cluster at
            // all, the candidate can — no relative gain to quote.
            None => None,
        };
        let tenant = solve.active[i];
        let from = self.placement[tenant];
        self.placement[tenant] = to;
        self.migrations.push(MigrationEvent {
            epoch: self.records.len().saturating_sub(1),
            tenant,
            from,
            to,
            gain,
        });
        if let Some(m) = &self.metrics {
            m.migrations.inc();
        }
    }
}

/// SplitMix64 — the trace-id generator. Not secret, just distinct
/// enough that two runs' ids never collide by accident.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn trace_nonce() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    splitmix64(t ^ (std::process::id() as u64).rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_engine::EngineConfig;

    fn local_nodes(count: usize, capacity: usize, tenants: usize) -> Vec<ClusterNode> {
        (0..count)
            .map(|_| {
                ClusterNode::local(
                    EngineConfig::new(CacheConfig::new(capacity, 1), 1_000),
                    tenants,
                )
            })
            .collect()
    }

    fn two_tenant_stream(len: usize) -> Vec<(usize, u64)> {
        (0..len as u64)
            .map(|i| (((i % 2) as usize), if i % 2 == 0 { i % 6 } else { i % 40 }))
            .collect()
    }

    #[test]
    fn topology_validation_is_friendly() {
        let cfg = ClusterConfig::new(16, 1, 500);
        let err = Coordinator::new(cfg.clone(), vec![], vec![]).unwrap_err();
        assert!(err.contains("at least one node"), "{err}");

        let err = Coordinator::new(cfg.clone(), local_nodes(2, 16, 2), vec![0]).unwrap_err();
        assert!(err.contains("placement names 1 tenants"), "{err}");

        let err = Coordinator::new(cfg.clone(), local_nodes(2, 16, 2), vec![0, 5]).unwrap_err();
        assert!(err.contains("only 2 nodes"), "{err}");

        let err = Coordinator::new(cfg.clone(), local_nodes(2, 4, 2), vec![0, 1]).unwrap_err();
        assert!(err.contains("cannot host a 16-unit cluster"), "{err}");

        let err = Coordinator::new(
            cfg,
            vec![
                ClusterNode::local(EngineConfig::new(CacheConfig::new(16, 2), 500), 2),
                ClusterNode::local(EngineConfig::new(CacheConfig::new(16, 1), 500), 2),
            ],
            vec![0, 1],
        )
        .unwrap_err();
        assert!(err.contains("2-block units"), "{err}");

        let err = Coordinator::new(
            ClusterConfig::new(16, 1, 500).objective(Objective::MaxMissRatio),
            local_nodes(2, 16, 2),
            vec![0, 1],
        )
        .unwrap_err();
        assert!(
            err.contains("node 0 optimizes `miss-ratio`") && err.contains("`maxmin`"),
            "{err}"
        );
    }

    #[test]
    fn epochs_record_a_valid_logical_partition() {
        let cfg = ClusterConfig::new(16, 1, 400);
        let mut coordinator =
            Coordinator::new(cfg, local_nodes(2, 16, 2), vec![0, 1]).expect("topology");
        coordinator.run(two_tenant_stream(2_000));
        let report = coordinator.finish();
        assert_eq!(report.epochs.len(), 5);
        for epoch in &report.epochs {
            assert_eq!(epoch.allocation.iter().sum::<usize>(), 16);
            assert_eq!(epoch.accesses(), 400);
        }
        assert!(report.failures.is_empty());
        assert_eq!(report.dropped_records, 0);
        // The loop tenant's cliff gets covered once curves exist.
        let last = report.epochs.last().unwrap();
        assert!(last.allocation[0] >= 6, "{:?}", last.allocation);
        let journal = report.journal();
        let parsed = cps_obs::Journal::parse(&journal).expect("parses");
        parsed.validate().expect("validates");
    }

    #[test]
    fn metrics_count_the_run() {
        let registry = MetricsRegistry::new();
        let cfg = ClusterConfig::new(16, 1, 500);
        let mut coordinator =
            Coordinator::with_metrics(cfg, local_nodes(2, 16, 2), vec![0, 1], &registry)
                .expect("topology");
        coordinator.run(two_tenant_stream(1_500));
        let _ = coordinator.finish();
        let snapshot = registry.snapshot();
        let count = |name: &str| match snapshot.get(name) {
            Some(v) => format!("{v:?}"),
            None => panic!("missing metric {name}"),
        };
        assert!(count("cps_cluster_epochs_total").contains('3'));
        assert!(snapshot.get("cps_cluster_records_total").is_some());
        assert!(snapshot.get("cps_cluster_nodes_alive").is_some());
    }

    #[test]
    fn migration_rehomes_a_tenant_when_the_gap_pays() {
        // Node 0 is tight (8 units), node 1 roomy (24). Both tenants
        // start on node 0, where 24 logical units cannot even land —
        // the first migration is a feasibility rescue (gain: None),
        // after which the solve runs and the split settles.
        let cfg = ClusterConfig::new(24, 1, 500).migrate(0.01);
        let nodes = vec![
            ClusterNode::local(EngineConfig::new(CacheConfig::new(8, 1), 500), 2),
            ClusterNode::local(EngineConfig::new(CacheConfig::new(24, 1), 500), 2),
        ];
        let mut coordinator = Coordinator::new(cfg, nodes, vec![0, 0]).expect("topology");
        let stream: Vec<(usize, u64)> = (0..4_000u64)
            .map(|i| (((i % 2) as usize), if i % 2 == 0 { i % 20 } else { i % 5 }))
            .collect();
        coordinator.run(stream);
        let report = coordinator.finish();
        assert!(
            !report.migrations.is_empty(),
            "the capacity-bound tenant should move"
        );
        let m = &report.migrations[0];
        assert_eq!(m.from, 0);
        assert_eq!(m.to, 1);
        assert!(m.gain.is_none(), "first move is a feasibility rescue");
        // Once feasible, epochs solve and the logical partition holds.
        let solved = report.epochs.iter().filter(|e| e.predicted_cost.is_some());
        assert!(solved.count() >= 2, "post-rescue epochs must solve");
        let journal = report.journal();
        let parsed = cps_obs::Journal::parse(&journal).expect("parses");
        parsed.validate().expect("migration lines validate");
        assert_eq!(parsed.migrations.len(), report.migrations.len());
    }
}
