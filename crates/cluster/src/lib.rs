//! Multi-node hierarchical partition-sharing.
//!
//! One logical cache, many engine nodes: a [`Coordinator`] drives a
//! fleet of [`ClusterNode`]s — in-process engine handles or live
//! `cps serve` daemons reached over the wire protocol — through
//! externally clocked epochs. Each boundary exports per-tenant cost
//! curves from every node, solves the two-level dynamic program of
//! [`hierarchy`] (per-node frontiers, then a top-level split of total
//! capacity into node budgets), pushes the budgets back down, and
//! records a flat-schema journal epoch for the whole cluster.
//!
//! The design invariant, proven by this crate's property tests: with
//! one tenant per node and non-binding capacities, the cluster's
//! trajectory — allocations, predicted costs, hysteresis verdicts,
//! realized counts — is **bit-identical** to the flat single-engine
//! run over the same stream. Grouping tenants onto shared nodes only
//! restricts the flat search space, so the two-level cost is bounded
//! below by the flat optimum and the gap is exactly the price of the
//! placement; [`placement`]'s initial guesses and the coordinator's
//! migration pass exist to drive that price down online.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coordinator;
pub mod hierarchy;
pub mod node;
pub mod placement;
pub mod report;

pub use coordinator::{ClusterConfig, Coordinator};
pub use hierarchy::{solve_two_level, TwoLevelResult};
pub use node::{ClusterNode, NodeError, NodeFinish};
pub use placement::{place_greedy, place_round_robin};
pub use report::{ClusterReport, NodeFailure};
