//! The two-level cluster report: the coordinator's epoch record plus
//! per-node finishes, rendered onto the same stable journal schema the
//! flat engines use.
//!
//! The cluster journal is the *logical* view: its header claims the
//! cluster's total capacity and one "shard" per node, and every epoch
//! line's allocation is the coordinator's logical partition of that
//! capacity — so `Journal::parse(...).validate()` holds under the flat
//! schema unchanged, with migration lines interleaved after the epoch
//! at which each move took effect. Node-local journals (what a remote
//! daemon renders on shutdown) are diagnostics riding along in
//! [`node_finishes`](ClusterReport::node_finishes); budgeted node
//! allocations need not partition a node's physical capacity, so those
//! are deliberately *not* held to the partition invariant.

use cps_cachesim::AccessCounts;
use cps_core::Objective;
use cps_engine::{weighted_miss_ratio, EpochRecord, StageTimings};
use cps_obs::{MigrationEvent, RunHeader, RunSummary};

use crate::node::NodeFinish;

/// One node marked dead during the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeFailure {
    /// Which node failed.
    pub node: usize,
    /// Coordinator epoch index at which the failure surfaced (equals
    /// the number of epochs already recorded at that moment).
    pub epoch: usize,
    /// The operation that failed and the typed error it returned.
    pub error: String,
}

/// Everything a finished cluster run knows about itself.
#[derive(Debug)]
pub struct ClusterReport {
    /// Number of nodes the cluster was built with (dead or alive).
    pub nodes: usize,
    /// Number of tenants.
    pub tenants: usize,
    /// Logical capacity the coordinator partitioned.
    pub total_units: usize,
    /// Blocks per unit.
    pub bpu: usize,
    /// Configured accesses per coordinator epoch.
    pub epoch_length: usize,
    /// Partitioning objective.
    pub objective: Objective,
    /// One record per coordinator epoch, in order.
    pub epochs: Vec<EpochRecord>,
    /// Whole-run per-tenant realized counts.
    pub totals: Vec<AccessCounts>,
    /// Tenant re-homings, in the order they were applied.
    pub migrations: Vec<MigrationEvent>,
    /// Nodes marked dead, in the order they failed.
    pub failures: Vec<NodeFailure>,
    /// Records dropped because their home node had failed.
    pub dropped_records: u64,
    /// Per-node finish artifacts, indexed by node; `None` for nodes
    /// that died (including a failure during finish itself).
    pub node_finishes: Vec<Option<NodeFinish>>,
}

impl ClusterReport {
    /// The journal run header for this cluster: engine `cluster`, one
    /// shard per node, and the objective names the flat engines use.
    pub fn run_header(&self) -> RunHeader {
        RunHeader {
            engine: "cluster".to_string(),
            tenants: self.tenants,
            units: self.total_units,
            bpu: self.bpu,
            epoch_length: self.epoch_length,
            shards: self.nodes,
            policy: "cluster".to_string(),
            objective: self.objective.name(),
        }
    }

    /// The journal summary line; by construction it validates against
    /// the epoch events (same totals the journal consumer recomputes).
    pub fn run_summary(&self) -> RunSummary {
        let mut timings = StageTimings::default();
        for e in &self.epochs {
            timings.merge(&e.timings);
        }
        RunSummary {
            epochs: self.epochs.len(),
            accesses: self.totals.iter().map(|c| c.accesses).sum(),
            misses: self.totals.iter().map(|c| c.misses).sum(),
            repartitions: self.epochs.iter().filter(|e| e.repartitioned).count(),
            units_moved: self
                .epochs
                .iter()
                .filter(|e| e.repartitioned)
                .map(|e| e.units_moved as u64)
                .sum(),
            timings,
        }
    }

    /// Renders the full cluster journal: header, epoch lines with each
    /// epoch's migrations interleaved right after it, summary. The
    /// output round-trips through [`cps_obs::Journal::parse`] and
    /// passes `validate()`.
    pub fn journal(&self) -> String {
        let mut text = String::new();
        text.push_str(&self.run_header().to_json_line());
        text.push('\n');
        let objective = self.objective.name();
        for e in &self.epochs {
            text.push_str(&e.journal_event(&objective).to_json_line());
            text.push('\n');
            for m in self.migrations.iter().filter(|m| m.epoch == e.epoch) {
                text.push_str(&m.to_json_line());
                text.push('\n');
            }
        }
        text.push_str(&self.run_summary().to_json_line());
        text.push('\n');
        text
    }

    /// Whole-run access-weighted group miss ratio (0.0 when nothing
    /// was accessed).
    pub fn cumulative_miss_ratio(&self) -> f64 {
        weighted_miss_ratio(&self.totals)
    }

    /// Coordinator epochs that applied a repartition.
    pub fn repartition_count(&self) -> usize {
        self.epochs.iter().filter(|e| e.repartitioned).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_obs::Journal;

    fn record(epoch: usize, allocation: Vec<usize>, accesses: u64, misses: u64) -> EpochRecord {
        let per_tenant = (0..allocation.len())
            .map(|_| AccessCounts { accesses, misses })
            .collect();
        EpochRecord {
            epoch,
            allocation,
            per_tenant,
            predicted_cost: Some(0.25),
            timings: StageTimings::default(),
            ingest: None,
            repartitioned: epoch > 0,
            units_moved: usize::from(epoch > 0) * 2,
            start_nanos: epoch as u64 * 1_000,
            trace: Some(0x7702 + epoch as u64),
            node_spans: Vec::new(),
        }
    }

    fn report() -> ClusterReport {
        let epochs = vec![record(0, vec![4, 4], 50, 10), record(1, vec![6, 2], 50, 5)];
        let totals = vec![
            AccessCounts {
                accesses: 100,
                misses: 15,
            },
            AccessCounts {
                accesses: 100,
                misses: 15,
            },
        ];
        ClusterReport {
            nodes: 2,
            tenants: 2,
            total_units: 8,
            bpu: 1,
            epoch_length: 100,
            objective: Objective::MissRatioSum,
            epochs,
            totals,
            migrations: vec![MigrationEvent {
                epoch: 1,
                tenant: 1,
                from: 0,
                to: 1,
                gain: Some(0.2),
            }],
            failures: vec![],
            dropped_records: 0,
            node_finishes: vec![None, None],
        }
    }

    #[test]
    fn journal_round_trips_and_validates() {
        let r = report();
        let journal = Journal::parse(&r.journal()).expect("parses");
        journal.validate().expect("validates");
        assert_eq!(journal.header.engine, "cluster");
        assert_eq!(journal.header.shards, 2);
        assert_eq!(journal.epochs.len(), 2);
        assert_eq!(journal.migrations, r.migrations);
        assert_eq!(journal.summary, r.run_summary());
    }

    #[test]
    fn summary_counts_only_applied_repartitions() {
        let s = report().run_summary();
        assert_eq!(s.repartitions, 1);
        assert_eq!(s.units_moved, 2);
        assert_eq!(s.accesses, 200);
        assert_eq!(s.misses, 30);
    }

    #[test]
    fn cumulative_miss_ratio_weighs_totals() {
        assert!((report().cumulative_miss_ratio() - 30.0 / 200.0).abs() < 1e-12);
    }
}
