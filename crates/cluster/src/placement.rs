//! Initial tenant placement: which node hosts which tenant.
//!
//! Placement only decides *routing* — every node carries the full
//! global tenant-slot set, so moving a tenant later is a routing
//! change, not a schema change. Two strategies cover the obvious
//! regimes: footprint-balanced greedy (LPT — longest processing time
//! first) for heterogeneous tenants, and round-robin when nothing is
//! known up front. The coordinator's migration pass refines either
//! online.

/// Footprint-balanced greedy placement (LPT): tenants are assigned in
/// descending footprint order, each to the currently least-loaded
/// node. Returns `placement[t] = node`. Classic 4/3-approximation of
/// the balanced partition, which is all an *initial* guess needs —
/// the migration pass owns refinement.
///
/// # Panics
/// Panics if `nodes` is zero or `footprints` is empty.
pub fn place_greedy(footprints: &[u64], nodes: usize) -> Vec<usize> {
    assert!(nodes > 0, "need at least one node");
    assert!(!footprints.is_empty(), "need at least one tenant");
    let mut order: Vec<usize> = (0..footprints.len()).collect();
    // Stable sort + index tiebreak keeps placement deterministic for
    // equal footprints.
    order.sort_by(|&a, &b| footprints[b].cmp(&footprints[a]).then(a.cmp(&b)));
    let mut load = vec![0u64; nodes];
    let mut placement = vec![0usize; footprints.len()];
    for t in order {
        let lightest = (0..nodes).min_by_key(|&n| (load[n], n)).expect("nodes > 0");
        placement[t] = lightest;
        load[lightest] += footprints[t];
    }
    placement
}

/// Round-robin placement: `placement[t] = t % nodes`.
///
/// # Panics
/// Panics if `nodes` is zero.
pub fn place_round_robin(tenants: usize, nodes: usize) -> Vec<usize> {
    assert!(nodes > 0, "need at least one node");
    (0..tenants).map(|t| t % nodes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_balances_footprints() {
        // LPT on 4,3,3,2 over two nodes lands at 6 vs 6.
        let placement = place_greedy(&[4, 3, 3, 2], 2);
        let mut load = [0u64; 2];
        for (t, &n) in placement.iter().enumerate() {
            load[n] += [4, 3, 3, 2][t];
        }
        assert_eq!(load, [6, 6], "{placement:?}");
    }

    #[test]
    fn greedy_is_deterministic_under_ties() {
        assert_eq!(
            place_greedy(&[5, 5, 5, 5], 2),
            place_greedy(&[5, 5, 5, 5], 2)
        );
        // One tenant per node when counts match: every node used.
        let p = place_greedy(&[3, 3], 2);
        let mut nodes = p.clone();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1]);
    }

    #[test]
    fn round_robin_cycles() {
        assert_eq!(place_round_robin(5, 2), vec![0, 1, 0, 1, 0]);
        assert_eq!(place_round_robin(2, 4), vec![0, 1]);
    }
}
