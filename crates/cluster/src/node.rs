//! One engine node as the coordinator sees it: a uniform facade over
//! an in-process [`EngineHandle`] and a live `cps serve` daemon driven
//! through the wire protocol's external-clocking verbs.
//!
//! Both shapes speak the same four-beat protocol per epoch: records
//! stream in (`push`), the boundary opens with an export of per-tenant
//! cost curves, the coordinator solves, and the boundary closes with
//! an applied budget. A node is always built with an effectively
//! infinite internal epoch length so only the coordinator's clock
//! fires.
//!
//! Every failure is a typed [`NodeError`] — a dead daemon mid-epoch
//! surfaces as `Remote`, never as a panic or a hang, which is what
//! lets the coordinator mark the node failed and re-solve over the
//! survivors.

use cps_cachesim::AccessCounts;
use cps_engine::{
    Actuation, Block, EngineConfig, EngineHandle, EngineKind, EngineReport, HandleError,
    TenantCurve, TenantId,
};
use cps_hotl::MissRatioCurve;
use cps_serve::{Client, ServeError, WireCurve};

/// Why a node operation failed.
#[derive(Debug)]
pub enum NodeError {
    /// A local engine handle refused the operation.
    Engine(HandleError),
    /// The wire to a remote daemon failed or the daemon refused.
    Remote(ServeError),
    /// A remote daemon answered with something that is not a valid
    /// node response (e.g. curve samples outside `[0, 1]`).
    Protocol(String),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Engine(e) => write!(f, "{e}"),
            NodeError::Remote(e) => write!(f, "{e}"),
            NodeError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<HandleError> for NodeError {
    fn from(e: HandleError) -> Self {
        NodeError::Engine(e)
    }
}

impl From<ServeError> for NodeError {
    fn from(e: ServeError) -> Self {
        NodeError::Remote(e)
    }
}

/// What a finished node hands back: the in-process report, or the
/// journal text a remote daemon rendered on shutdown. Remote journals
/// are node-local diagnostics — budgeted allocations need not
/// partition the node's physical capacity, so they are not held to the
/// flat journal's partition invariant (the cluster journal is the
/// validated artifact).
#[derive(Debug)]
pub enum NodeFinish {
    /// An in-process node's structured report.
    Local(EngineReport),
    /// A remote daemon's rendered journal.
    Remote(String),
}

enum Inner {
    Local(Box<EngineHandle>),
    Remote(Client),
}

/// One node of the cluster: an engine plus its physical capacity.
pub struct ClusterNode {
    inner: Inner,
    capacity: usize,
    bpu: usize,
    tenants: usize,
    addr: Option<String>,
    objective: String,
}

impl ClusterNode {
    /// Builds an in-process node hosting the single-threaded engine
    /// under external clocking: the configured `epoch_length` is
    /// overridden to `usize::MAX` (the coordinator is the clock) and
    /// hysteresis is disabled locally (the coordinator decides
    /// globally; the node applies whatever comes down).
    pub fn local(config: EngineConfig, tenants: usize) -> ClusterNode {
        let config = EngineConfig {
            epoch_length: usize::MAX,
            min_repartition_units: 1,
            ..config
        };
        let capacity = config.cache.units;
        let bpu = config.cache.blocks_per_unit;
        let objective = config.objective.name();
        ClusterNode {
            inner: Inner::Local(Box::new(EngineHandle::new(
                EngineKind::Single,
                config,
                tenants,
            ))),
            capacity,
            bpu,
            tenants,
            addr: None,
            objective,
        }
    }

    /// Connects to a `cps serve` daemon as the mux pseudo-tenant (the
    /// coordinator pushes every tenant's records). The daemon must host
    /// the single engine — it is the only variant that supports
    /// external epoch clocking — and should be started with an epoch
    /// length its stream can never reach.
    pub fn connect(addr: &str) -> Result<ClusterNode, NodeError> {
        let client = Client::connect(addr, None)?;
        let config = client.config();
        if config.engine_name() != "single" {
            return Err(NodeError::Protocol(format!(
                "node {addr} hosts a {} engine; external epoch clocking needs engine=single",
                config.engine_name()
            )));
        }
        Ok(ClusterNode {
            capacity: config.units as usize,
            bpu: config.bpu as usize,
            tenants: config.tenants as usize,
            addr: Some(addr.to_string()),
            objective: config.objective.clone(),
            inner: Inner::Remote(client),
        })
    }

    /// Physical capacity in units.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks per unit of the node's cache geometry.
    pub fn bpu(&self) -> usize {
        self.bpu
    }

    /// Tenant-slot count (every node carries the full global slot set;
    /// placement decides which slots actually see traffic).
    pub fn tenants(&self) -> usize {
        self.tenants
    }

    /// Remote address, `None` for in-process nodes.
    pub fn addr(&self) -> Option<&str> {
        self.addr.as_deref()
    }

    /// The objective spec the node's engine optimizes (local: from its
    /// [`EngineConfig`]; remote: announced in the wire HELLO_ACK). The
    /// coordinator refuses at construction any node whose objective
    /// differs from the cluster's — a cluster where nodes optimize
    /// different things is silently wrong everywhere.
    pub fn objective(&self) -> &str {
        &self.objective
    }

    /// Streams a batch of records into the node.
    pub fn push(&mut self, records: &[(TenantId, Block)]) -> Result<(), NodeError> {
        match &mut self.inner {
            Inner::Local(handle) => {
                handle.push_batch(records)?;
                Ok(())
            }
            Inner::Remote(client) => {
                let wire: Vec<(u64, u64)> = records.iter().map(|&(t, b)| (t as u64, b)).collect();
                client.push_batch(&wire)?;
                Ok(())
            }
        }
    }

    /// Opens an epoch boundary: closes the node's profile window and
    /// exports one [`TenantCurve`] per slot. The coordinator names the
    /// objective it solves under; a remote daemon optimizing anything
    /// else refuses the export with a typed wire error. `trace`
    /// correlates the boundary across nodes. The second return value
    /// is the node's profile wall clock in nanoseconds — the child
    /// span of the coordinator's epoch (local: measured around the
    /// handle call; remote: carried back in the reply).
    pub fn export(
        &mut self,
        objective: &str,
        trace: Option<u64>,
    ) -> Result<(Vec<TenantCurve>, u64), NodeError> {
        match &mut self.inner {
            Inner::Local(handle) => {
                let started = std::time::Instant::now();
                let curves = handle.export_cost_curves()?;
                Ok((curves, started.elapsed().as_nanos() as u64))
            }
            Inner::Remote(client) => {
                let (curves, profile_nanos) = client.cost_curves(objective, trace.unwrap_or(0))?;
                let curves: Result<Vec<TenantCurve>, NodeError> =
                    curves.into_iter().map(tenant_curve_of_wire).collect();
                Ok((curves?, profile_nanos))
            }
        }
    }

    /// Closes the boundary opened by [`export`](Self::export): pushes
    /// the budgeted allocation down and books the node's epoch,
    /// stamped with `trace`. The second return value is the node's
    /// actuate wall clock in nanoseconds.
    pub fn apply(
        &mut self,
        units: &[usize],
        predicted_cost: Option<f64>,
        trace: Option<u64>,
    ) -> Result<(Actuation, u64), NodeError> {
        match &mut self.inner {
            Inner::Local(handle) => {
                let started = std::time::Instant::now();
                let actuation = handle.apply_allocation(units, predicted_cost, trace)?;
                Ok((actuation, started.elapsed().as_nanos() as u64))
            }
            Inner::Remote(client) => {
                let wire: Vec<u64> = units.iter().map(|&u| u as u64).collect();
                let (repartitioned, units_moved, actuate_nanos) =
                    client.apply(&wire, predicted_cost, trace.unwrap_or(0))?;
                Ok((
                    Actuation {
                        repartitioned,
                        units_moved: units_moved as usize,
                    },
                    actuate_nanos,
                ))
            }
        }
    }

    /// Finishes the node: local engines return their report, remote
    /// daemons shut down and return their rendered journal.
    pub fn finish(self) -> Result<NodeFinish, NodeError> {
        match self.inner {
            Inner::Local(handle) => Ok(NodeFinish::Local(handle.finish()?)),
            Inner::Remote(client) => Ok(NodeFinish::Remote(client.shutdown()?)),
        }
    }
}

/// Decodes a wire curve into the engine's export shape, refusing
/// payloads that are not miss-ratio curves (the constructor would
/// panic on them; a malicious or broken daemon must not panic the
/// coordinator).
fn tenant_curve_of_wire(wire: WireCurve) -> Result<TenantCurve, NodeError> {
    let counts = AccessCounts {
        accesses: wire.accesses,
        misses: wire.misses,
    };
    if wire.samples_bits.is_empty() {
        return Ok(TenantCurve {
            counts,
            curve: None,
        });
    }
    let samples: Vec<f64> = wire
        .samples_bits
        .iter()
        .map(|&b| f64::from_bits(b))
        .collect();
    if !samples.iter().all(|s| (0.0..=1.0).contains(s)) {
        return Err(NodeError::Protocol(
            "exported curve has samples outside [0, 1]".to_string(),
        ));
    }
    Ok(TenantCurve {
        counts,
        curve: Some(MissRatioCurve::from_samples(samples)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::CacheConfig;

    #[test]
    fn local_nodes_run_the_external_clock_protocol() {
        let mut node = ClusterNode::local(EngineConfig::new(CacheConfig::new(8, 1), 1_000), 2);
        assert_eq!(node.capacity(), 8);
        assert_eq!(node.tenants(), 2);
        assert_eq!(node.addr(), None);
        let records: Vec<(usize, u64)> = (0..100).map(|i| ((i % 2) as usize, i % 10)).collect();
        node.push(&records).expect("push");
        let (curves, _profile_nanos) = node.export("miss-ratio", Some(42)).expect("export");
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].counts.accesses, 50);
        let (actuation, _actuate_nanos) = node.apply(&[6, 2], Some(0.5), Some(42)).expect("apply");
        assert!(actuation.repartitioned);
        match node.finish().expect("finish") {
            NodeFinish::Local(report) => {
                assert_eq!(report.epochs.len(), 1);
                assert_eq!(report.epochs[0].predicted_cost, Some(0.5));
            }
            NodeFinish::Remote(_) => panic!("local node"),
        }
    }

    #[test]
    fn bad_wire_curves_are_typed_errors_not_panics() {
        let bad = WireCurve {
            accesses: 10,
            misses: 5,
            samples_bits: vec![2.0f64.to_bits()],
        };
        let err = tenant_curve_of_wire(bad).expect_err("out of range");
        assert!(matches!(err, NodeError::Protocol(_)), "{err:?}");
        assert!(err.to_string().contains("outside [0, 1]"));

        let nan = WireCurve {
            accesses: 1,
            misses: 0,
            samples_bits: vec![f64::NAN.to_bits()],
        };
        assert!(tenant_curve_of_wire(nan).is_err(), "NaN is not a ratio");

        let empty = WireCurve {
            accesses: 0,
            misses: 0,
            samples_bits: vec![],
        };
        let curve = tenant_curve_of_wire(empty).expect("empty = never observed");
        assert!(curve.curve.is_none());
    }
}
