//! The two-level hierarchical dynamic program.
//!
//! A cluster splits one logical cache of `C` units across `N` nodes,
//! each hosting a group of tenants under a physical capacity cap. The
//! flat `O(P·C²)` DP of `cps-core` does not see node boundaries; the
//! hierarchical solve recovers them in two passes:
//!
//! 1. **Node frontiers** — one [`DpSolver::solve_frontier`] pass per
//!    node over its members' cost curves yields the node's min-cost
//!    frontier `F_n[k]`: the best accumulated cost of giving the node
//!    exactly `k` units, for every `k` up to its capacity.
//! 2. **Top-level DP** — the frontiers, padded to `C` with
//!    [`FORBIDDEN`] beyond each node's cap, are themselves cost curves;
//!    one more DP pass splits `C` into per-node budgets, and
//!    [`DpFrontier::allocation`] backtracks each node's local split at
//!    its budget without re-solving.
//!
//! **Exactness.** When every node hosts a single tenant and caps don't
//! bind, pass 1 copies each tenant's cost curve verbatim (a
//! one-program frontier *is* its curve) and pass 2 runs the flat DP on
//! exactly the same values in the same order — the result is
//! bit-for-bit the flat solve, allocation and recomputed cost alike
//! (the identity property `tests/two_level.rs` proves). With real
//! groups the hierarchy only *restricts* the flat search space (units
//! cannot straddle a node), so its cost is bounded below by the flat
//! optimum and the gap is exactly the price of the placement.

use cps_core::cost::FORBIDDEN;
use cps_core::{CostCurve, DpFrontier, DpSolver, Objective};

/// What the two-level solve produced.
#[derive(Clone, Debug, PartialEq)]
pub struct TwoLevelResult {
    /// Accumulated group cost, recomputed from the allocation by the
    /// same identity-seeded left fold the flat DP uses (which is what
    /// makes singleton-group results bit-identical to flat results).
    pub cost: f64,
    /// Units budgeted to each node; sums to the total.
    pub budgets: Vec<usize>,
    /// Per-tenant units, aligned with the input `costs`; tenant `i`'s
    /// entry lies within its node's budget. Members of an empty group
    /// never exist, so every unit lands in some group's member.
    pub allocation: Vec<usize>,
}

/// Runs the hierarchical solve: per-node frontiers, then the top-level
/// DP across nodes. `groups[n]` lists the indices into `costs` hosted
/// by node `n` and `node_caps[n]` is that node's physical capacity; an
/// empty group contributes a curve that is zero at zero units and
/// [`FORBIDDEN`] everywhere else, forcing its budget to 0 (neutral
/// under both accumulation modes for the non-negative costs miss
/// ratios produce). Both DP levels run under `objective`, so the
/// coordinator and every node provably optimize the same thing.
///
/// Returns `None` when no feasible split exists — every tenant
/// forbidden everywhere, or the occupied nodes' caps cannot absorb
/// `total_units` (the DP's exact-sum semantics: all units must land).
///
/// # Panics
/// Panics if `groups` and `node_caps` differ in length, or if the
/// groups are not a partition of `0..costs.len()` (every tenant placed
/// exactly once).
pub fn solve_two_level(
    solver: &mut DpSolver,
    costs: &[CostCurve],
    groups: &[Vec<usize>],
    node_caps: &[usize],
    total_units: usize,
    objective: &Objective,
) -> Option<TwoLevelResult> {
    assert_eq!(groups.len(), node_caps.len(), "one capacity per node");
    let mut seen = vec![false; costs.len()];
    for &i in groups.iter().flatten() {
        assert!(!seen[i], "tenant {i} placed on two nodes");
        seen[i] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "every tenant must be placed on a node"
    );
    if costs.is_empty() {
        return None;
    }

    let mut frontiers: Vec<Option<DpFrontier>> = Vec::with_capacity(groups.len());
    let mut node_curves: Vec<CostCurve> = Vec::with_capacity(groups.len());
    for (group, &cap) in groups.iter().zip(node_caps) {
        if group.is_empty() {
            let mut raw = vec![FORBIDDEN; total_units + 1];
            raw[0] = 0.0;
            frontiers.push(None);
            node_curves.push(CostCurve::from_raw(raw));
            continue;
        }
        let members: Vec<CostCurve> = group.iter().map(|&i| costs[i].clone()).collect();
        let frontier = solver
            .solve_frontier(&members, cap.min(total_units), objective)
            .expect("group is non-empty");
        let mut raw = frontier.costs().to_vec();
        raw.resize(total_units + 1, FORBIDDEN);
        node_curves.push(CostCurve::from_raw(raw));
        frontiers.push(Some(frontier));
    }

    let top = solver.solve(&node_curves, total_units, objective)?;
    let budgets = top.allocation;
    let mut allocation = vec![0usize; costs.len()];
    for ((group, frontier), &budget) in groups.iter().zip(&frontiers).zip(&budgets) {
        let Some(frontier) = frontier else {
            debug_assert_eq!(budget, 0, "empty node must get a zero budget");
            continue;
        };
        let local = frontier
            .allocation(budget)
            .expect("top-level DP only picks feasible budgets");
        for (&i, &units) in group.iter().zip(&local) {
            allocation[i] = units;
        }
    }
    Some(TwoLevelResult {
        cost: top.cost,
        budgets,
        allocation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(costs: &[f64]) -> CostCurve {
        CostCurve::from_raw(costs.to_vec())
    }

    #[test]
    fn singleton_groups_reproduce_the_flat_solve() {
        let costs = vec![
            curve(&[1.0, 1.0, 1.0, 0.0, 0.0]), // cliff at 3
            curve(&[0.3, 0.2, 0.1, 0.05, 0.02]),
            curve(&[0.5, 0.4, 0.4, 0.4, 0.4]),
        ];
        let mut solver = DpSolver::new();
        let flat = solver.solve(&costs, 4, &Objective::MissRatioSum).unwrap();
        let groups = vec![vec![0], vec![1], vec![2]];
        let two = solve_two_level(
            &mut solver,
            &costs,
            &groups,
            &[4, 4, 4],
            4,
            &Objective::MissRatioSum,
        )
        .expect("feasible");
        assert_eq!(two.allocation, flat.allocation);
        assert_eq!(two.cost.to_bits(), flat.cost.to_bits());
        assert_eq!(two.budgets, flat.allocation);
    }

    #[test]
    fn node_caps_bind_and_the_gap_is_the_price_of_placement() {
        // Flat wants to feed the cliff 3 units, but its node is capped
        // at 2 — the hierarchy must settle for the runner-up split.
        let costs = vec![
            curve(&[1.0, 1.0, 1.0, 0.0]), // cliff at 3
            curve(&[0.6, 0.5, 0.4, 0.3]),
        ];
        let mut solver = DpSolver::new();
        let flat = solver.solve(&costs, 3, &Objective::MissRatioSum).unwrap();
        assert_eq!(flat.allocation, vec![3, 0]);
        let two = solve_two_level(
            &mut solver,
            &costs,
            &[vec![0], vec![1]],
            &[2, 3],
            3,
            &Objective::MissRatioSum,
        )
        .expect("still feasible");
        assert!(two.budgets[0] <= 2, "cap respected: {:?}", two.budgets);
        assert!(two.cost >= flat.cost, "hierarchy can never beat flat");
    }

    #[test]
    fn empty_nodes_are_forced_to_a_zero_budget() {
        let costs = vec![curve(&[0.9, 0.5, 0.1]), curve(&[0.8, 0.6, 0.4])];
        let mut solver = DpSolver::new();
        let two = solve_two_level(
            &mut solver,
            &costs,
            &[vec![0, 1], vec![]],
            &[2, 2],
            2,
            &Objective::MissRatioSum,
        )
        .expect("occupied node absorbs everything");
        assert_eq!(two.budgets, vec![2, 0]);
        assert_eq!(two.allocation.iter().sum::<usize>(), 2);
    }

    #[test]
    fn infeasible_when_occupied_caps_cannot_absorb_the_total() {
        // 4 units must all land, but the only occupied node holds 2.
        let costs = vec![curve(&[0.9, 0.5, 0.1, 0.1, 0.1])];
        let mut solver = DpSolver::new();
        let two = solve_two_level(
            &mut solver,
            &costs,
            &[vec![0], vec![]],
            &[2, 8],
            4,
            &Objective::MissRatioSum,
        );
        assert_eq!(two, None);
    }

    #[test]
    fn grouped_members_split_their_node_budget_optimally() {
        // One node hosts both tenants: the node frontier is a joint DP,
        // and the backtracked local split matches the flat solve at the
        // node's budget.
        let costs = vec![curve(&[1.0, 0.2, 0.1, 0.1]), curve(&[0.9, 0.8, 0.2, 0.1])];
        let mut solver = DpSolver::new();
        let two = solve_two_level(
            &mut solver,
            &costs,
            &[vec![0, 1], vec![]],
            &[3, 3],
            3,
            &Objective::MissRatioSum,
        )
        .expect("feasible");
        let flat = solver.solve(&costs, 3, &Objective::MissRatioSum).unwrap();
        assert_eq!(two.allocation, flat.allocation);
        assert_eq!(two.cost.to_bits(), flat.cost.to_bits());
    }

    #[test]
    #[should_panic(expected = "placed on two nodes")]
    fn double_placement_is_rejected() {
        let costs = vec![curve(&[0.5, 0.1])];
        solve_two_level(
            &mut DpSolver::new(),
            &costs,
            &[vec![0], vec![0]],
            &[1, 1],
            1,
            &Objective::MissRatioSum,
        );
    }
}
