//! Property-based tests for the optimizer-layer helpers.

use cps_core::config::CacheConfig;
use cps_core::natural::round_to_units;
use cps_core::sharing::{enumerate_set_partitions, for_each_composition};
use cps_core::sweep::all_k_subsets;
use proptest::prelude::*;

proptest! {
    #[test]
    fn rounding_is_exact_and_close(
        raw in prop::collection::vec(0.0f64..20.0, 1..8),
        slack in 0usize..10,
    ) {
        let total = raw.iter().sum::<f64>().ceil() as usize + slack;
        let out = round_to_units(&raw, total);
        prop_assert_eq!(out.iter().sum::<usize>(), total);
        for (o, t) in out.iter().zip(&raw) {
            // Never rounds below floor(target).
            prop_assert!(*o >= t.floor() as usize);
        }
        // Without slack, each entry is within 1 of its target.
        if slack == 0 && (total as f64 - raw.iter().sum::<f64>()).abs() < 1.0 {
            for (o, t) in out.iter().zip(&raw) {
                prop_assert!((*o as f64 - t).abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn set_partitions_are_partitions(n in 1usize..7) {
        let parts = enumerate_set_partitions(n);
        // Bell numbers for n = 1..6.
        let bell = [1usize, 2, 5, 15, 52, 203];
        prop_assert_eq!(parts.len(), bell[n - 1]);
        for p in &parts {
            let mut seen = vec![false; n];
            for group in p {
                prop_assert!(!group.is_empty());
                for &e in group {
                    prop_assert!(!seen[e], "element {e} duplicated");
                    seen[e] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "missing element");
        }
        // All partitions distinct.
        let mut canon: Vec<String> = parts.iter().map(|p| {
            let mut gs: Vec<String> = p.iter().map(|g| format!("{g:?}")).collect();
            gs.sort();
            gs.join("|")
        }).collect();
        canon.sort();
        canon.dedup();
        prop_assert_eq!(canon.len(), parts.len());
    }

    #[test]
    fn compositions_count_stars_and_bars(total in 1usize..15, parts in 1usize..5) {
        let mut all: Vec<Vec<usize>> = Vec::new();
        for_each_composition(total, parts, &mut |c| all.push(c.to_vec()));
        for c in &all {
            prop_assert_eq!(c.iter().sum::<usize>(), total);
            prop_assert!(c.iter().all(|&v| v >= 1));
        }
        let count = all.len();
        let expect = cps_combin::binomial(total as u64 - 1, parts as u64 - 1).unwrap();
        if total >= parts {
            prop_assert_eq!(count as u128, expect);
        } else {
            prop_assert_eq!(count, 0);
        }
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), count, "compositions must be unique");
    }

    #[test]
    fn equal_split_sums_and_balances(units in 1usize..200, k in 1usize..10) {
        let cfg = CacheConfig::new(units, 1);
        let split = cfg.equal_split(k);
        prop_assert_eq!(split.len(), k);
        prop_assert_eq!(split.iter().sum::<usize>(), units);
        let max = split.iter().max().unwrap();
        let min = split.iter().min().unwrap();
        prop_assert!(max - min <= 1, "split {split:?} unbalanced");
    }

    #[test]
    fn subsets_strictly_increasing_and_unique(n in 1usize..10, k in 1usize..6) {
        let subs = all_k_subsets(n, k);
        if k > n {
            prop_assert!(subs.is_empty());
        } else {
            prop_assert_eq!(subs.len() as u128, cps_combin::binomial(n as u64, k as u64).unwrap());
            for s in &subs {
                prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(s.iter().all(|&e| e < n));
            }
            let mut sorted = subs.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), subs.len());
        }
    }
}
