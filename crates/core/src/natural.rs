//! Integer-unit Natural Cache Partitions.
//!
//! `cps-hotl::compose` computes the natural partition as fractional block
//! occupancies; the schemes and baseline constraints need it as an
//! integer *unit* allocation summing exactly to the cache. This module
//! does the conversion with largest-remainder rounding (deterministic,
//! exact-sum, and never more than one unit from the real occupancy).

use crate::config::CacheConfig;
use crate::cost::caps_at_allocation;
use cps_hotl::{CoRunModel, MissRatioCurve, SoloProfile};

/// Rounds fractional unit targets to integers summing to `total`.
///
/// Largest-remainder method: floor everything, then hand the leftover
/// units to the largest fractional parts (ties broken by index for
/// determinism).
///
/// # Panics
/// Panics if `targets` is empty, contains negatives/non-finite values,
/// or sums to more than `total + 1e-6` (callers pass occupancies that
/// sum to at most the cache).
pub fn round_to_units(targets: &[f64], total: usize) -> Vec<usize> {
    assert!(!targets.is_empty(), "nothing to round");
    assert!(
        targets.iter().all(|t| t.is_finite() && *t >= 0.0),
        "targets must be finite and non-negative"
    );
    let sum: f64 = targets.iter().sum();
    assert!(
        sum <= total as f64 + 1e-6,
        "targets sum {sum} exceeds total {total}"
    );
    let mut alloc: Vec<usize> = targets.iter().map(|t| t.floor() as usize).collect();
    let mut leftover = total - alloc.iter().sum::<usize>();
    // Hand out by descending fractional part.
    let mut order: Vec<usize> = (0..targets.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = targets[a] - targets[a].floor();
        let fb = targets[b] - targets[b].floor();
        fb.partial_cmp(&fa).expect("finite").then(a.cmp(&b))
    });
    // One unit per program by fractional priority; if slack remains
    // (occupancies summed below the cache), keep round-robining it —
    // slack is free space and affects no miss ratio.
    let mut cursor = 0usize;
    while leftover > 0 {
        alloc[order[cursor % order.len()]] += 1;
        leftover -= 1;
        cursor += 1;
    }
    debug_assert_eq!(alloc.iter().sum::<usize>(), total);
    alloc
}

/// The Natural Cache Partition in integer units for a co-run group.
///
/// Occupancies are computed in blocks by the composition model, scaled
/// to units, and rounded to sum exactly to `config.units` (when the
/// cache does not fill, the slack is distributed round-robin — it is
/// free space and affects no miss ratio).
pub fn natural_partition_units(model: &CoRunModel<'_>, config: &CacheConfig) -> Vec<usize> {
    let np = model.natural_partition(config.blocks() as f64);
    let targets: Vec<f64> = np
        .occupancy
        .iter()
        .map(|blocks| blocks / config.blocks_per_unit as f64)
        .collect();
    round_to_units(&targets, config.units)
}

/// Caps for the *natural-partition* baseline of Section VI: each
/// program must do no worse than at its natural (free-sharing) cache
/// occupancy. The occupancy model is built from `members`; the caps are
/// read off `mrcs` (callers may pass blended online curves rather than
/// the members' own, as the repartitioning engine does).
///
/// # Panics
/// Panics if `members` is empty or `mrcs` has a different length.
pub fn natural_baseline_caps(
    members: &[&SoloProfile],
    mrcs: &[&MissRatioCurve],
    config: &CacheConfig,
) -> Vec<f64> {
    assert_eq!(members.len(), mrcs.len(), "one curve per member");
    let model = CoRunModel::new(members.to_vec());
    let alloc = natural_partition_units(&model, config);
    caps_at_allocation(mrcs, config, &alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    #[test]
    fn rounding_preserves_total_and_proximity() {
        let targets = [2.7, 3.3, 4.0];
        let out = round_to_units(&targets, 10);
        assert_eq!(out.iter().sum::<usize>(), 10);
        for (o, t) in out.iter().zip(&targets) {
            assert!((*o as f64 - t).abs() <= 1.0 + 1e-9);
        }
        // Largest remainder (.7) gets the spare unit.
        assert_eq!(out, vec![3, 3, 4]);
    }

    #[test]
    fn slack_is_distributed() {
        let out = round_to_units(&[1.0, 2.0], 10);
        assert_eq!(out.iter().sum::<usize>(), 10);
        assert!(out[0] >= 1 && out[1] >= 2);
    }

    #[test]
    fn exact_targets_round_trip() {
        assert_eq!(round_to_units(&[4.0, 6.0], 10), vec![4, 6]);
    }

    #[test]
    #[should_panic(expected = "exceeds total")]
    fn oversum_panics() {
        let _ = round_to_units(&[5.0, 6.0], 10);
    }

    #[test]
    fn natural_units_for_identical_loops() {
        let mk = |seed: u64| {
            let t = WorkloadSpec::SequentialLoop { working_set: 100 }.generate(30_000, seed);
            SoloProfile::from_trace(format!("p{seed}"), &t.blocks, 1.0, 128)
        };
        let (a, b) = (mk(1), mk(2));
        let model = CoRunModel::new(vec![&a, &b]);
        let cfg = CacheConfig::new(64, 2); // 128 blocks
        let units = natural_partition_units(&model, &cfg);
        assert_eq!(units.iter().sum::<usize>(), 64);
        assert!((units[0] as i64 - units[1] as i64).abs() <= 1);
    }

    #[test]
    fn natural_caps_are_curves_at_natural_allocation() {
        let mk = |ws: u64, seed: u64| {
            let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(30_000, seed);
            SoloProfile::from_trace(format!("p{seed}"), &t.blocks, 1.0, 128)
        };
        let (a, b) = (mk(40, 1), mk(90, 2));
        let cfg = CacheConfig::new(64, 2);
        let members = vec![&a, &b];
        let caps = natural_baseline_caps(&members, &[&a.mrc, &b.mrc], &cfg);
        let model = CoRunModel::new(members);
        let alloc = natural_partition_units(&model, &cfg);
        assert_eq!(caps[0], a.mrc.at(cfg.to_blocks(alloc[0])));
        assert_eq!(caps[1], b.mrc.at(cfg.to_blocks(alloc[1])));
    }
}
