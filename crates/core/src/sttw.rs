//! The Stone–Thiebaut–Turek–Wolf (STTW) cache partitioning
//! (Stone et al. 1992; paper Eq. 12–14 and Section VII-B).
//!
//! STTW allocates the next cache unit to the program with the largest
//! miss-count derivative, stopping when derivatives are as equal as
//! possible — provably optimal **when every miss-ratio curve is convex**.
//! Real curves have working-set cliffs, and on those the equal-derivative
//! condition identifies the wrong allocation; the paper measures STTW at
//! least 10% worse than Optimal in 34% of co-run groups, and *worse than
//! free-for-all sharing* on average.
//!
//! The faithful formulation is marginal-gain greedy over the **lower
//! convex envelope** of each cost curve (the convexification the
//! equal-derivative condition implicitly assumes), with the resulting
//! allocation then costed on the *true* curves. On convex inputs the
//! envelope is the curve itself and the greedy is exactly optimal; on
//! cliff curves the envelope strands allocations mid-cliff, reproducing
//! the classic failure mode.

use crate::cost::CostCurve;
use crate::dp::PartitionResult;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: the gain of giving program `program` its `next`-th unit
/// (envelope cost drop from `next − 1` to `next`).
struct Candidate {
    gain: f64,
    program: usize,
    next: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by gain; ties broken by program index then unit for
        // determinism.
        self.gain
            .partial_cmp(&other.gain)
            .expect("gains are finite")
            .then_with(|| other.program.cmp(&self.program))
            .then_with(|| other.next.cmp(&self.next))
    }
}

/// Runs STTW: greedy equal-derivative allocation of `total_units`.
///
/// The returned [`PartitionResult::cost`] is the **true** summed cost of
/// the allocation (not the envelope cost), so it is directly comparable
/// with [`crate::dp::optimal_partition`].
///
/// # Examples
///
/// ```
/// use cps_core::{sttw_partition, CostCurve};
/// // Convex (quadratic) costs: greedy is exactly optimal.
/// let a = CostCurve::from_raw(vec![9.0, 4.0, 1.0, 0.0]);
/// let b = CostCurve::from_raw(vec![18.0, 8.0, 2.0, 0.0]);
/// let r = sttw_partition(&[a, b], 4);
/// assert_eq!(r.allocation.iter().sum::<usize>(), 4);
/// assert_eq!(r.allocation, vec![2, 2]); // equal marginal gains
/// ```
///
/// # Panics
/// Panics if `costs` is empty or any cost is non-finite (STTW cannot
/// express baseline constraints — Section VII-B notes it "cannot
/// optimize for fairness").
pub fn sttw_partition(costs: &[CostCurve], total_units: usize) -> PartitionResult {
    assert!(!costs.is_empty(), "STTW needs at least one program");
    let envelopes: Vec<CostCurve> = costs.iter().map(|c| c.convex_envelope()).collect();
    let mut alloc = vec![0usize; costs.len()];
    let mut heap = BinaryHeap::with_capacity(costs.len());
    for (i, env) in envelopes.iter().enumerate() {
        heap.push(Candidate {
            gain: env.at(0) - env.at(1),
            program: i,
            next: 1,
        });
    }
    for _ in 0..total_units {
        let Some(c) = heap.pop() else { break };
        alloc[c.program] = c.next;
        let env = &envelopes[c.program];
        heap.push(Candidate {
            gain: env.at(c.next) - env.at(c.next + 1),
            program: c.program,
            next: c.next + 1,
        });
    }
    // Unissued units (if the heap ever emptied — impossible with the
    // refill above, but kept for safety) go to program 0.
    let used: usize = alloc.iter().sum();
    alloc[0] += total_units - used;
    let cost = costs.iter().zip(&alloc).map(|(c, &a)| c.at(a)).sum::<f64>();
    PartitionResult {
        allocation: alloc,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimal_partition;
    use crate::objective::Objective;

    fn curve(v: Vec<f64>) -> CostCurve {
        CostCurve::from_raw(v)
    }

    /// Strictly convex curve: quadratic decay.
    fn convex(scale: f64, len: usize) -> CostCurve {
        curve(
            (0..len)
                .map(|i| scale * ((len - 1 - i) as f64).powi(2))
                .collect(),
        )
    }

    #[test]
    fn optimal_on_convex_curves() {
        for (sa, sb, total) in [(1.0, 2.0, 8), (0.5, 0.7, 10), (3.0, 1.0, 6)] {
            let a = convex(sa, 12);
            let b = convex(sb, 12);
            let sttw = sttw_partition(&[a.clone(), b.clone()], total);
            let dp = optimal_partition(&[a, b], total, &Objective::MissRatioSum).unwrap();
            assert!(
                (sttw.cost - dp.cost).abs() < 1e-9,
                "convex case must match: sttw {} vs dp {}",
                sttw.cost,
                dp.cost
            );
        }
    }

    #[test]
    fn allocation_sums_to_total() {
        let a = convex(1.0, 20);
        let b = convex(2.0, 20);
        let c = convex(0.3, 20);
        let r = sttw_partition(&[a, b, c], 17);
        assert_eq!(r.allocation.iter().sum::<usize>(), 17);
    }

    #[test]
    fn suboptimal_on_cliff_curves() {
        // A has a cliff at 4 units; B has shallow steady gains. The
        // envelope spreads A's cliff into a constant slope smaller than
        // B's initial slopes, so STTW feeds B first and strands A below
        // its cliff — the paper's failure mode.
        let a = curve(vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        let b = curve(vec![0.9, 0.55, 0.3, 0.28, 0.26, 0.24, 0.22]);
        let total = 4;
        let sttw = sttw_partition(&[a.clone(), b.clone()], total);
        let dp = optimal_partition(&[a, b], total, &Objective::MissRatioSum).unwrap();
        assert_eq!(dp.allocation, vec![4, 0], "optimal feeds the cliff");
        assert!(
            sttw.cost > dp.cost + 0.1,
            "sttw {} should be clearly worse than dp {}",
            sttw.cost,
            dp.cost
        );
    }

    #[test]
    fn beyond_curve_end_gains_are_zero() {
        // One tiny program (flat after 1 unit) and plenty of cache: the
        // extra units flow to the other program.
        let a = curve(vec![1.0, 0.0]);
        let b = convex(1.0, 10);
        let r = sttw_partition(&[a, b], 9);
        assert_eq!(r.allocation[0] + r.allocation[1], 9);
        assert!(r.allocation[1] >= 8, "allocation {:?}", r.allocation);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let a = curve(vec![1.0, 0.5, 0.0]);
        let b = curve(vec![1.0, 0.5, 0.0]);
        let r1 = sttw_partition(&[a.clone(), b.clone()], 2);
        let r2 = sttw_partition(&[a, b], 2);
        assert_eq!(r1.allocation, r2.allocation);
        assert_eq!(r1.allocation.iter().sum::<usize>(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one program")]
    fn empty_panics() {
        let _ = sttw_partition(&[], 4);
    }
}
