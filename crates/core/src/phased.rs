//! Phase-aware (time-varying) cache partitioning — the extension the
//! paper's Figure 1 begs for.
//!
//! Static partitioning is optimal under the random-phase assumption;
//! when co-runners have *synchronized* phases, "no cache partition can
//! give the performance of cache sharing" (Section VIII). But a
//! partition that is re-drawn per phase can: profile each program per
//! time segment, run the optimal-partitioning DP per segment, and
//! repartition at segment boundaries. On anti-phase workloads this
//! recovers what partition-sharing gains while keeping the protection of
//! fences — at the cost of profiling per segment and paying
//! repartitioning transients (evictions on shrink), which the simulator
//! in `cps-cachesim` measures faithfully via `LruCache::resize`.
//!
//! A hysteresis knob suppresses repartitioning when the predicted gain
//! is below a threshold, so stationary groups degenerate to one static
//! partition.

use crate::config::CacheConfig;
use crate::cost::CostCurve;
use crate::dp::optimal_partition;
use crate::objective::Objective;
use cps_hotl::SoloProfile;
use cps_trace::Block;

/// A program profiled per time segment.
#[derive(Clone, Debug)]
pub struct PhasedProfile {
    /// Program name.
    pub name: String,
    /// Relative access rate.
    pub access_rate: f64,
    /// One solo profile per segment, all of equal trace length
    /// (the final segment may be shorter).
    pub segments: Vec<SoloProfile>,
    /// Accesses per segment.
    pub segment_len: usize,
}

impl PhasedProfile {
    /// Splits `trace` into `num_segments` equal slices and profiles each.
    ///
    /// # Panics
    /// Panics if `num_segments` is 0 or the trace is shorter than the
    /// segment count.
    pub fn from_trace(
        name: impl Into<String>,
        trace: &[Block],
        access_rate: f64,
        max_cache_blocks: usize,
        num_segments: usize,
    ) -> Self {
        assert!(num_segments > 0, "need at least one segment");
        assert!(
            trace.len() >= num_segments,
            "trace shorter than segment count"
        );
        let name = name.into();
        let segment_len = trace.len().div_ceil(num_segments);
        let segments = trace
            .chunks(segment_len)
            .enumerate()
            .map(|(i, chunk)| {
                SoloProfile::from_trace(
                    format!("{name}[{i}]"),
                    chunk,
                    access_rate,
                    max_cache_blocks,
                )
            })
            .collect();
        PhasedProfile {
            name,
            access_rate,
            segments,
            segment_len,
        }
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }
}

/// A per-segment partition plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhasedPlan {
    /// `allocations[s][p]` = units for program `p` during segment `s`.
    pub allocations: Vec<Vec<usize>>,
}

impl PhasedPlan {
    /// Number of repartitioning events (segment transitions where any
    /// allocation changes).
    pub fn reconfigurations(&self) -> usize {
        self.allocations.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// Computes the phase-aware plan: an optimal-partitioning DP per
/// segment, with hysteresis — a segment keeps the previous segment's
/// partition unless its own optimum is more than `switch_threshold`
/// (relative) better.
///
/// `switch_threshold = 0.0` repartitions eagerly every segment;
/// `f64::INFINITY` degenerates to the first segment's static partition.
///
/// # Panics
/// Panics if profiles is empty or segment counts differ.
pub fn phase_aware_partition(
    profiles: &[&PhasedProfile],
    config: &CacheConfig,
    switch_threshold: f64,
) -> PhasedPlan {
    assert!(!profiles.is_empty(), "need programs");
    let segments = profiles[0].num_segments();
    assert!(
        profiles.iter().all(|p| p.num_segments() == segments),
        "segment counts must match across programs"
    );
    let total_rate: f64 = profiles.iter().map(|p| p.access_rate).sum();
    let mut allocations: Vec<Vec<usize>> = Vec::with_capacity(segments);
    let mut previous: Option<Vec<usize>> = None;
    for s in 0..segments {
        let costs: Vec<CostCurve> = profiles
            .iter()
            .map(|p| {
                CostCurve::from_miss_ratio(&p.segments[s].mrc, config, p.access_rate / total_rate)
            })
            .collect();
        let optimal = optimal_partition(&costs, config.units, &Objective::MissRatioSum)
            .expect("unconstrained DP feasible");
        let chosen = match &previous {
            Some(prev) => {
                let prev_cost: f64 = costs.iter().zip(prev).map(|(c, &u)| c.at(u)).sum();
                if prev_cost > optimal.cost * (1.0 + switch_threshold) {
                    optimal.allocation
                } else {
                    prev.clone()
                }
            }
            None => optimal.allocation,
        };
        previous = Some(chosen.clone());
        allocations.push(chosen);
    }
    PhasedPlan { allocations }
}

/// Model-predicted group miss ratio of a plan (share-weighted across
/// programs and segments; ignores repartitioning transients, which the
/// simulator accounts for).
pub fn predicted_plan_miss_ratio(
    profiles: &[&PhasedProfile],
    config: &CacheConfig,
    plan: &PhasedPlan,
) -> f64 {
    let total_rate: f64 = profiles.iter().map(|p| p.access_rate).sum();
    let segments = profiles[0].num_segments();
    let mut acc = 0.0;
    for s in 0..segments {
        for (p, profile) in profiles.iter().enumerate() {
            let units = plan.allocations[s][p];
            acc += profile.access_rate / total_rate
                * profile.segments[s].mrc.at(config.to_blocks(units));
        }
    }
    acc / segments as f64
}

/// Simulates one program through its per-segment capacity schedule
/// (partitions are private, so programs simulate independently), and
/// returns `(accesses, misses)` including repartitioning transients.
pub fn simulate_phase_partitioned_program(
    trace: &[Block],
    segment_len: usize,
    capacities_blocks: &[usize],
) -> (u64, u64) {
    use cps_cachesim::LruCache;
    assert!(segment_len > 0, "segment length must be positive");
    let mut cache = LruCache::new(capacities_blocks.first().copied().unwrap_or(0));
    let mut misses = 0u64;
    for (i, &b) in trace.iter().enumerate() {
        if i % segment_len == 0 {
            let seg = i / segment_len;
            let cap = capacities_blocks
                .get(seg)
                .or(capacities_blocks.last())
                .copied()
                .unwrap_or(0);
            cache.resize(cap);
        }
        if !cache.access(b) {
            misses += 1;
        }
    }
    (trace.len() as u64, misses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    fn anti_phase_pair(
        blocks: usize,
        segment: usize,
        segments: usize,
    ) -> (Vec<Block>, Vec<Block>, PhasedProfile, PhasedProfile) {
        let len = segment * segments;
        let big = WorkloadSpec::SequentialLoop { working_set: 100 };
        let small = WorkloadSpec::SequentialLoop { working_set: 4 };
        let a_spec = WorkloadSpec::Phased {
            phases: vec![
                (big.clone(), segment as u64),
                (small.clone(), segment as u64),
            ],
        };
        let b_spec = WorkloadSpec::Phased {
            phases: vec![(small, segment as u64), (big, segment as u64)],
        };
        let ta = a_spec.generate(len, 1).blocks;
        let tb = b_spec.generate(len, 2).blocks;
        let pa = PhasedProfile::from_trace("a", &ta, 1.0, blocks, segments);
        let pb = PhasedProfile::from_trace("b", &tb, 1.0, blocks, segments);
        (ta, tb, pa, pb)
    }

    #[test]
    fn segmentation_counts_and_names() {
        let trace: Vec<Block> = (0..1000).map(|i| i % 7).collect();
        let p = PhasedProfile::from_trace("x", &trace, 1.5, 64, 4);
        assert_eq!(p.num_segments(), 4);
        assert_eq!(p.segment_len, 250);
        assert_eq!(p.segments[2].name, "x[2]");
        assert_eq!(p.segments[0].accesses, 250);
    }

    #[test]
    fn plan_tracks_alternating_phases() {
        let blocks = 128;
        let (_, _, pa, pb) = anti_phase_pair(blocks, 4_000, 6);
        let cfg = CacheConfig::new(blocks, 1);
        let plan = phase_aware_partition(&[&pa, &pb], &cfg, 0.0);
        assert_eq!(plan.allocations.len(), 6);
        // In segments where A runs its big loop, A gets ≥ 100 blocks.
        for (s, alloc) in plan.allocations.iter().enumerate() {
            let (big_ix, _small_ix) = if s % 2 == 0 { (0, 1) } else { (1, 0) };
            assert!(
                alloc[big_ix] >= 100,
                "segment {s}: big-phase program got {alloc:?}"
            );
        }
        assert!(plan.reconfigurations() >= 4, "plan must actually switch");
    }

    #[test]
    fn hysteresis_suppresses_switching_on_stationary_workloads() {
        let blocks = 96;
        let spec = WorkloadSpec::Zipfian {
            region: 200,
            alpha: 0.8,
        };
        let ta = spec.generate(24_000, 3).blocks;
        let tb = WorkloadSpec::SequentialLoop { working_set: 40 }
            .generate(24_000, 4)
            .blocks;
        let pa = PhasedProfile::from_trace("a", &ta, 1.0, blocks, 6);
        let pb = PhasedProfile::from_trace("b", &tb, 1.0, blocks, 6);
        let cfg = CacheConfig::new(blocks, 1);
        let plan = phase_aware_partition(&[&pa, &pb], &cfg, 0.05);
        assert_eq!(
            plan.reconfigurations(),
            0,
            "stationary group should keep one partition: {:?}",
            plan.allocations
        );
    }

    #[test]
    fn infinite_threshold_is_static() {
        let blocks = 64;
        let (_, _, pa, pb) = anti_phase_pair(blocks, 2_000, 4);
        let cfg = CacheConfig::new(blocks, 1);
        let plan = phase_aware_partition(&[&pa, &pb], &cfg, f64::INFINITY);
        assert_eq!(plan.reconfigurations(), 0);
    }

    #[test]
    fn phase_aware_beats_static_on_anti_phase_pair_in_simulation() {
        let blocks = 128usize;
        let segment = 4_000usize;
        let segments = 6usize;
        let (ta, tb, pa, pb) = anti_phase_pair(blocks, segment, segments);
        let cfg = CacheConfig::new(blocks, 1);
        let plan = phase_aware_partition(&[&pa, &pb], &cfg, 0.0);
        // Simulate the plan (partitions are private → independent sims).
        let caps_a: Vec<usize> = plan.allocations.iter().map(|a| a[0]).collect();
        let caps_b: Vec<usize> = plan.allocations.iter().map(|a| a[1]).collect();
        let (acc_a, miss_a) = simulate_phase_partitioned_program(&ta, segment, &caps_a);
        let (acc_b, miss_b) = simulate_phase_partitioned_program(&tb, segment, &caps_b);
        let phase_mr = (miss_a + miss_b) as f64 / (acc_a + acc_b) as f64;
        // Static half-split simulation.
        let (sa, sm) = simulate_phase_partitioned_program(&ta, segment, &[blocks / 2]);
        let (sb, sn) = simulate_phase_partitioned_program(&tb, segment, &[blocks / 2]);
        let static_mr = (sm + sn) as f64 / (sa + sb) as f64;
        assert!(
            phase_mr < static_mr - 0.2,
            "phase-aware {phase_mr} should clearly beat static {static_mr}"
        );
    }

    #[test]
    fn predicted_ratio_matches_simulation_roughly() {
        let blocks = 128usize;
        let segment = 4_000usize;
        let (ta, tb, pa, pb) = anti_phase_pair(blocks, segment, 6);
        let cfg = CacheConfig::new(blocks, 1);
        let plan = phase_aware_partition(&[&pa, &pb], &cfg, 0.0);
        let predicted = predicted_plan_miss_ratio(&[&pa, &pb], &cfg, &plan);
        let caps_a: Vec<usize> = plan.allocations.iter().map(|a| a[0]).collect();
        let caps_b: Vec<usize> = plan.allocations.iter().map(|a| a[1]).collect();
        let (aa, ma) = simulate_phase_partitioned_program(&ta, segment, &caps_a);
        let (ab, mb) = simulate_phase_partitioned_program(&tb, segment, &caps_b);
        let measured = (ma + mb) as f64 / (aa + ab) as f64;
        assert!(
            (predicted - measured).abs() < 0.1,
            "predicted {predicted} vs measured {measured}"
        );
    }
}
