//! First-class, serializable optimization objectives.
//!
//! The DP of [`crate::dp`] needs no convexity and no particular cost
//! semantics: any *decomposable* objective — one that assigns each
//! program a cost curve over its own allocation and accumulates the
//! per-program costs with an associative, monotone operator — drops in
//! unchanged. This module makes that pluggability explicit. The
//! [`CostModel`] trait captures what the solver stack needs from an
//! objective (per-tenant cost-curve construction plus [`Combine`]
//! accumulation semantics), and [`Objective`] is its canonical,
//! serializable implementation:
//!
//! * [`Objective::MissRatioSum`] — the paper's throughput objective
//!   (Eq. 12): minimize the access-share-weighted group miss ratio.
//!   This is the **default** and reproduces the pre-objective engine
//!   bit for bit.
//! * [`Objective::MaxMissRatio`] — the paper's QoS objective: minimize
//!   the worst member's raw miss ratio (max-min fairness).
//! * [`Objective::Utility`] — concave per-tenant utility of hit rate
//!   (Dehghan et al.-style utility-maximizing sharing): maximize
//!   `Σ f_i · (1 − mr_i)^curvature`, encoded as a negated cost so the
//!   minimizing DP applies unchanged.
//! * [`Objective::ValueWeighted`] — Memshare-style per-tenant
//!   value-of-hit weights: minimize `Σ f_i · v_i · mr_i`, where `v_i`
//!   prices tenant `i`'s misses.
//! * [`Objective::MaxSlowdown`] — fairness across tenants: minimize the
//!   worst *degradation* `mr_i(c_i) − mr_i(full cache)`, each tenant
//!   measured against its own best case.
//!
//! Objectives serialize to compact spec strings ([`Objective::name`] /
//! [`Objective::parse`] round-trip) so they can ride in journals, wire
//! handshakes, and CLI flags, and every layer can cross-validate that
//! it is optimizing the same thing as its peers.

use crate::config::CacheConfig;
use crate::cost::{CostCurve, FORBIDDEN};
use crate::dp::Combine;
use cps_hotl::MissRatioCurve;

/// Default curvature of the [`Objective::Utility`] objective: square
/// root utility, a standard concave "diminishing returns" shape.
pub const DEFAULT_UTILITY_CURVATURE: f64 = 0.5;

/// What the solver stack needs from an objective: how to turn one
/// tenant's miss-ratio curve into a cost curve, and how per-tenant
/// costs accumulate into the group objective. [`Objective`] is the
/// canonical implementation; the trait exists so experiments can plug
/// in models without touching the enum.
pub trait CostModel {
    /// Accumulation semantics: how per-tenant costs fold into the
    /// group objective (including the identity element and the
    /// infeasibility encoding — see [`Combine`]).
    fn combine(&self) -> Combine;

    /// Builds tenant `index`'s cost over `0..=config.units` units from
    /// its miss-ratio curve and access share. With a `cap`, allocations
    /// at which the tenant's own miss ratio exceeds the cap (plus
    /// numerical slack) are [`FORBIDDEN`] — the baseline constraint of
    /// the paper's Section VI, applied uniformly across objectives.
    fn tenant_cost(
        &self,
        index: usize,
        mrc: &MissRatioCurve,
        config: &CacheConfig,
        share: f64,
        cap: Option<f64>,
    ) -> CostCurve;

    /// Accumulated group cost of a fixed allocation under this model
    /// (identity-seeded left fold, the same order the DP uses, so the
    /// result is bit-identical to a DP solve that picked `allocation`).
    fn group_cost(&self, costs: &[CostCurve], allocation: &[usize]) -> f64 {
        let combine = self.combine();
        let mut acc = combine.identity();
        for (cost, &units) in costs.iter().zip(allocation) {
            acc = combine.apply(acc, cost.at(units));
        }
        acc
    }
}

/// A serializable, first-class objective; see the module docs for the
/// semantics of each variant.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Objective {
    /// Access-share-weighted group miss ratio (the paper's throughput
    /// objective, Eq. 12). The default.
    #[default]
    MissRatioSum,
    /// Worst member's raw miss ratio (the paper's QoS / max-min
    /// objective).
    MaxMissRatio,
    /// Concave utility of hit rate: maximize
    /// `Σ f_i · (1 − mr_i)^curvature` (Dehghan-style).
    Utility {
        /// Concavity exponent in `(0, 1]`; 1 is linear hit rate,
        /// smaller is stronger diminishing returns.
        curvature: f64,
    },
    /// Per-tenant value-of-hit weights (Memshare-style): minimize
    /// `Σ f_i · v_i · mr_i`.
    ValueWeighted {
        /// One positive value weight per tenant; empty means every
        /// tenant weighs 1 (pure [`Objective::MissRatioSum`] costs).
        weights: Vec<f64>,
    },
    /// Worst per-tenant slowdown `mr_i(c_i) − mr_i(full cache)`:
    /// max-min fairness on degradation rather than raw miss ratio.
    MaxSlowdown,
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl Objective {
    /// Canonical spec string; [`Objective::parse`] inverts it exactly
    /// (floats use Rust's shortest round-trip formatting).
    pub fn name(&self) -> String {
        match self {
            Objective::MissRatioSum => "miss-ratio".to_string(),
            Objective::MaxMissRatio => "maxmin".to_string(),
            Objective::Utility { curvature } => format!("utility:{curvature}"),
            Objective::ValueWeighted { weights } => {
                if weights.is_empty() {
                    "value-weighted".to_string()
                } else {
                    let list: Vec<String> = weights.iter().map(|w| format!("{w}")).collect();
                    format!("value-weighted:{}", list.join(","))
                }
            }
            Objective::MaxSlowdown => "max-slowdown".to_string(),
        }
    }

    /// Parses a spec string. Accepted forms (aliases in parentheses):
    ///
    /// * `miss-ratio` (`miss-ratio-sum`, `throughput`)
    /// * `maxmin` (`max-miss-ratio`, `qos`)
    /// * `utility` or `utility:CURVATURE` with curvature in `(0, 1]`
    /// * `value-weighted` or `value-weighted:W1,W2,...` with positive
    ///   finite weights
    /// * `max-slowdown`
    pub fn parse(spec: &str) -> Result<Objective, String> {
        let (head, tail) = match spec.split_once(':') {
            Some((h, t)) => (h, Some(t)),
            None => (spec, None),
        };
        let no_params = |obj: Objective| match tail {
            None => Ok(obj),
            Some(_) => Err(format!("objective `{head}` takes no parameters")),
        };
        match head {
            "miss-ratio" | "miss-ratio-sum" | "throughput" => no_params(Objective::MissRatioSum),
            "maxmin" | "max-miss-ratio" | "qos" => no_params(Objective::MaxMissRatio),
            "max-slowdown" => no_params(Objective::MaxSlowdown),
            "utility" => {
                let curvature = match tail {
                    None => DEFAULT_UTILITY_CURVATURE,
                    Some(t) => t
                        .parse::<f64>()
                        .map_err(|_| format!("bad utility curvature `{t}`"))?,
                };
                if !curvature.is_finite() || curvature <= 0.0 || curvature > 1.0 {
                    return Err(format!(
                        "utility curvature must lie in (0, 1], got {curvature}"
                    ));
                }
                Ok(Objective::Utility { curvature })
            }
            "value-weighted" => {
                let weights: Vec<f64> = match tail {
                    None => Vec::new(),
                    Some(t) => t
                        .split(',')
                        .map(|w| {
                            w.parse::<f64>()
                                .map_err(|_| format!("bad value weight `{w}`"))
                        })
                        .collect::<Result<_, _>>()?,
                };
                if let Some(bad) = weights.iter().find(|w| !w.is_finite() || **w <= 0.0) {
                    return Err(format!(
                        "value weights must be positive and finite, got {bad}"
                    ));
                }
                Ok(Objective::ValueWeighted { weights })
            }
            other => Err(format!(
                "unknown objective `{other}` \
                 (miss-ratio|maxmin|utility[:CURVATURE]|value-weighted[:W1,W2,...]|max-slowdown)"
            )),
        }
    }

    /// Checks the objective against a concrete tenant count: a
    /// non-empty [`Objective::ValueWeighted`] weight vector must name
    /// exactly one weight per tenant.
    pub fn validate_for(&self, tenants: usize) -> Result<(), String> {
        match self {
            Objective::ValueWeighted { weights }
                if !weights.is_empty() && weights.len() != tenants =>
            {
                Err(format!(
                    "value-weighted names {} weights for {tenants} tenants",
                    weights.len()
                ))
            }
            _ => Ok(()),
        }
    }

    /// Builds the whole per-tenant cost-curve vector, one call per
    /// group — the objective-parameterized successor of the old
    /// `build_cost_curves` free function (which now delegates here).
    ///
    /// # Panics
    /// Panics if `mrcs`, `shares`, and any `caps` differ in length.
    pub fn cost_curves(
        &self,
        mrcs: &[&MissRatioCurve],
        config: &CacheConfig,
        shares: &[f64],
        caps: Option<&[f64]>,
    ) -> Vec<CostCurve> {
        assert_eq!(mrcs.len(), shares.len(), "one share per program");
        if let Some(caps) = caps {
            assert_eq!(mrcs.len(), caps.len(), "one cap per program");
        }
        mrcs.iter()
            .zip(shares)
            .enumerate()
            .map(|(i, (m, &share))| self.tenant_cost(i, m, config, share, caps.map(|c| c[i])))
            .collect()
    }
}

impl CostModel for Objective {
    fn combine(&self) -> Combine {
        match self {
            Objective::MissRatioSum
            | Objective::Utility { .. }
            | Objective::ValueWeighted { .. } => Combine::Sum,
            Objective::MaxMissRatio | Objective::MaxSlowdown => Combine::Max,
        }
    }

    fn tenant_cost(
        &self,
        index: usize,
        mrc: &MissRatioCurve,
        config: &CacheConfig,
        share: f64,
        cap: Option<f64>,
    ) -> CostCurve {
        match self {
            // The weight-scaled objectives route through the original
            // constructors so the default path executes the exact float
            // operations of the pre-objective code (bit-for-bit).
            Objective::MissRatioSum | Objective::MaxMissRatio | Objective::ValueWeighted { .. } => {
                let weight = match self {
                    Objective::MissRatioSum => share,
                    Objective::MaxMissRatio => 1.0,
                    Objective::ValueWeighted { weights } => {
                        share * weights.get(index).copied().unwrap_or(1.0)
                    }
                    _ => unreachable!(),
                };
                match cap {
                    Some(cap) => CostCurve::with_baseline_cap(mrc, config, weight, cap),
                    None => CostCurve::from_miss_ratio(mrc, config, weight),
                }
            }
            Objective::Utility { curvature } => curve_with_cap(mrc, config, cap, |mr| {
                -(share * (1.0 - mr).max(0.0).powf(*curvature))
            }),
            Objective::MaxSlowdown => {
                let best = mrc.at(config.blocks());
                curve_with_cap(mrc, config, cap, |mr| mr - best)
            }
        }
    }
}

/// Samples `cost(mr)` over `0..=config.units`, forbidding allocations
/// whose miss ratio exceeds `cap` — the same slack rule as
/// [`CostCurve::with_baseline_cap`].
fn curve_with_cap(
    mrc: &MissRatioCurve,
    config: &CacheConfig,
    cap: Option<f64>,
    cost: impl Fn(f64) -> f64,
) -> CostCurve {
    let slack = cap.map(|c| 1e-9 + c * 1e-9);
    let costs = (0..=config.units)
        .map(|u| {
            let mr = mrc.at(config.to_blocks(u));
            match (cap, slack) {
                (Some(cap), Some(slack)) if mr > cap + slack => FORBIDDEN,
                _ => cost(mr),
            }
        })
        .collect();
    CostCurve::from_raw(costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_hotl::Footprint;

    fn loop_mrc(ws: u64, len: usize, max_blocks: usize) -> MissRatioCurve {
        let trace: Vec<u64> = (0..len as u64).map(|i| i % ws).collect();
        MissRatioCurve::from_footprint(&Footprint::from_trace(&trace), max_blocks)
    }

    #[test]
    fn names_and_parse_round_trip() {
        let cases = [
            Objective::MissRatioSum,
            Objective::MaxMissRatio,
            Objective::Utility { curvature: 0.5 },
            Objective::Utility { curvature: 0.875 },
            Objective::ValueWeighted { weights: vec![] },
            Objective::ValueWeighted {
                weights: vec![1.0, 2.5, 0.125],
            },
            Objective::MaxSlowdown,
        ];
        for obj in cases {
            let spec = obj.name();
            assert_eq!(Objective::parse(&spec), Ok(obj), "{spec}");
        }
    }

    #[test]
    fn aliases_parse_to_the_same_objective() {
        for alias in ["miss-ratio", "miss-ratio-sum", "throughput"] {
            assert_eq!(Objective::parse(alias), Ok(Objective::MissRatioSum));
        }
        for alias in ["maxmin", "max-miss-ratio", "qos"] {
            assert_eq!(Objective::parse(alias), Ok(Objective::MaxMissRatio));
        }
        assert_eq!(
            Objective::parse("utility"),
            Ok(Objective::Utility {
                curvature: DEFAULT_UTILITY_CURVATURE
            })
        );
    }

    #[test]
    fn bad_specs_are_friendly_errors() {
        for (spec, needle) in [
            ("speed", "unknown objective"),
            ("utility:0", "curvature must lie in (0, 1]"),
            ("utility:1.5", "curvature must lie in (0, 1]"),
            ("utility:x", "bad utility curvature"),
            ("value-weighted:1,-2", "must be positive"),
            ("value-weighted:1,nope", "bad value weight"),
            ("miss-ratio:9", "takes no parameters"),
            ("max-slowdown:1", "takes no parameters"),
        ] {
            let err = Objective::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn validate_for_checks_weight_counts() {
        let obj = Objective::ValueWeighted {
            weights: vec![1.0, 2.0],
        };
        assert!(obj.validate_for(2).is_ok());
        let err = obj.validate_for(3).unwrap_err();
        assert!(err.contains("2 weights for 3 tenants"), "{err}");
        assert!(Objective::ValueWeighted { weights: vec![] }
            .validate_for(7)
            .is_ok());
        assert!(Objective::MissRatioSum.validate_for(7).is_ok());
    }

    #[test]
    fn default_objective_costs_match_legacy_construction() {
        // The default path must execute the exact float operations of
        // the pre-objective code.
        let m1 = loop_mrc(16, 2000, 64);
        let m2 = loop_mrc(40, 2000, 64);
        let cfg = CacheConfig::new(32, 2);
        let shares = crate::cost::access_shares(&[300.0, 100.0]);
        let built = Objective::MissRatioSum.cost_curves(&[&m1, &m2], &cfg, &shares, None);
        assert_eq!(built[0], CostCurve::from_miss_ratio(&m1, &cfg, shares[0]));
        assert_eq!(built[1], CostCurve::from_miss_ratio(&m2, &cfg, shares[1]));

        let max = Objective::MaxMissRatio.cost_curves(&[&m1, &m2], &cfg, &shares, None);
        assert_eq!(max[0], CostCurve::from_miss_ratio(&m1, &cfg, 1.0));

        // All-ones value weights reproduce the default costs exactly
        // (share * 1.0 is the identical multiply).
        let ones = Objective::ValueWeighted {
            weights: vec![1.0, 1.0],
        }
        .cost_curves(&[&m1, &m2], &cfg, &shares, None);
        for (a, b) in ones.iter().zip(&built) {
            for u in 0..=cfg.units {
                assert_eq!(a.at(u).to_bits(), b.at(u).to_bits());
            }
        }
    }

    #[test]
    fn utility_costs_are_negated_concave_utility() {
        let m = loop_mrc(16, 2000, 64);
        let cfg = CacheConfig::new(16, 2);
        let obj = Objective::Utility { curvature: 0.5 };
        let cost = obj.tenant_cost(0, &m, &cfg, 0.25, None);
        for u in 0..=cfg.units {
            let mr = m.at(cfg.to_blocks(u));
            let expect = -(0.25 * (1.0 - mr).max(0.0).sqrt());
            assert!((cost.at(u) - expect).abs() < 1e-12, "u={u}");
            assert!(cost.at(u) <= 0.0, "utility costs are non-positive");
        }
        // More cache → more hits → higher utility → lower (more
        // negative) cost for a loop workload.
        assert!(cost.at(cfg.units) <= cost.at(0));
    }

    #[test]
    fn max_slowdown_is_zero_at_full_cache() {
        let m = loop_mrc(16, 2000, 64);
        let cfg = CacheConfig::new(16, 2);
        let cost = Objective::MaxSlowdown.tenant_cost(0, &m, &cfg, 0.5, None);
        assert!(cost.at(cfg.units).abs() < 1e-12, "no slowdown at full");
        for u in 0..=cfg.units {
            assert!(cost.at(u) >= -1e-12, "slowdown is non-negative, u={u}");
        }
    }

    #[test]
    fn caps_forbid_uniformly_across_objectives() {
        let m = loop_mrc(16, 2000, 32);
        let cfg = CacheConfig::new(32, 1);
        let cap = m.at(16); // baseline: the working set fits
        for obj in [
            Objective::MissRatioSum,
            Objective::Utility { curvature: 0.5 },
            Objective::ValueWeighted { weights: vec![] },
            Objective::MaxSlowdown,
        ] {
            let cost = obj.tenant_cost(0, &m, &cfg, 1.0, Some(cap));
            assert_eq!(cost.at(4), FORBIDDEN, "{obj}: thrashing is forbidden");
            assert!(cost.at(16).is_finite(), "{obj}: baseline is feasible");
        }
    }

    #[test]
    fn group_cost_is_the_dp_fold_order() {
        let costs = vec![
            CostCurve::from_raw(vec![0.5, 0.25]),
            CostCurve::from_raw(vec![0.4, 0.1]),
            CostCurve::from_raw(vec![0.3, 0.2]),
        ];
        let sum = Objective::MissRatioSum.group_cost(&costs, &[1, 0, 1]);
        assert_eq!(sum.to_bits(), (((0.0f64 + 0.25) + 0.4) + 0.2).to_bits());
        let max = Objective::MaxMissRatio.group_cost(&costs, &[0, 1, 0]);
        assert_eq!(max, 0.5);
    }
}
