//! The optimal cache-partitioning dynamic program (Section V-B).
//!
//! Given per-program cost curves `cost_i(c)` over `0..=C` units, find the
//! allocation `(c_1, …, c_P)` with `Σ c_i = C` minimizing the accumulated
//! cost (Eq. 15). The recurrence (Eq. 16) adds one program at a time:
//!
//! ```text
//! dp_i[k] = min_{c ≤ k}  dp_{i−1}[k − c] ⊕ cost_i(c)
//! ```
//!
//! where `⊕` is `+` for throughput objectives or `max` for max-min /
//! QoS objectives. Unlike STTW this examines the entire solution space,
//! so the miss-ratio curves may be **any** function — cliffs, plateaus,
//! even non-monotone — and baseline constraints are just `+∞` entries.
//! Complexity `O(P·C²)` time, `O(P·C)` space (the paper's numbers; the
//! choice table for backtracking is the `O(P·C)` part).

use crate::cost::CostCurve;
use crate::objective::{CostModel, Objective};

/// How per-program costs accumulate into the group objective — the
/// low-level accumulation vocabulary beneath [`Objective`]. Objectives
/// choose their `Combine` via [`CostModel::combine`]; the DP only ever
/// sees this enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combine {
    /// Throughput: minimize the sum (access-share-weighted group miss
    /// ratio, Eq. 12).
    Sum,
    /// QoS: minimize the worst member cost (max-min fairness).
    Max,
}

impl Combine {
    /// Folds one more per-program cost into the accumulator.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            Combine::Sum => a + b,
            Combine::Max => a.max(b),
        }
    }

    /// Identity element of the accumulation.
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            Combine::Sum => 0.0,
            Combine::Max => f64::NEG_INFINITY,
        }
    }

    /// Accumulated cost of a fixed allocation: the identity-seeded
    /// left fold `acc = apply(acc, costs[i].at(allocation[i]))` — the
    /// one shared accumulation path behind [`DpSolver::solve`]'s
    /// self-check, [`brute_force_partition`], and
    /// [`CostModel::group_cost`]. Returns [`f64::INFINITY`] if any
    /// member's cost is forbidden.
    pub fn accumulate(self, costs: &[CostCurve], allocation: &[usize]) -> f64 {
        let mut acc = self.identity();
        for (cost, &units) in costs.iter().zip(allocation) {
            let v = cost.at(units);
            if v.is_infinite() {
                return f64::INFINITY;
            }
            acc = self.apply(acc, v);
        }
        acc
    }
}

/// An optimal (or heuristic) partition and its accumulated cost.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionResult {
    /// Units allocated to each program; sums to the cache size.
    pub allocation: Vec<usize>,
    /// Accumulated group cost of the allocation.
    pub cost: f64,
}

/// A reusable DP solver holding the `O(P·C)` scratch tables.
///
/// One-shot callers can use [`optimal_partition`]; repeated callers (an
/// epoch-driven repartitioning controller re-solving every epoch) keep a
/// `DpSolver` alive so the `dp` / `next` rows and the backtracking table
/// are allocated once and reused, leaving the hot loop allocation-free
/// after the first solve at a given problem size.
///
/// # Examples
///
/// ```
/// use cps_core::{CostCurve, DpSolver, Objective};
/// let mut solver = DpSolver::new();
/// let a = CostCurve::from_raw(vec![1.0, 0.9, 0.1, 0.05]);
/// let b = CostCurve::from_raw(vec![1.0, 0.2, 0.15, 0.1]);
/// let r = solver.solve(&[a, b], 3, &Objective::MissRatioSum).unwrap();
/// assert_eq!(r.allocation, vec![2, 1]);
/// // The same solver can be reused for any later instance.
/// ```
#[derive(Clone, Debug, Default)]
pub struct DpSolver {
    dp: Vec<f64>,
    next: Vec<f64>,
    choice: Vec<Vec<u32>>,
}

impl DpSolver {
    /// Creates a solver with empty scratch tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// The DP table fill shared by [`DpSolver::solve`] and
    /// [`DpSolver::solve_frontier`]: after this, `self.dp[k]` is the
    /// best accumulated cost allocating exactly `k` units across all
    /// `costs`, and `self.choice[i][k]` the units given to program `i`
    /// in that best solution. The float operations here are the whole
    /// identity story — both entry points must observe the same bits.
    fn fill_tables(&mut self, costs: &[CostCurve], c: usize, combine: Combine) {
        let p = costs.len();
        let dp = &mut self.dp;
        let next = &mut self.next;
        let choice = &mut self.choice;
        dp.clear();
        dp.extend((0..=c).map(|k| costs[0].at(k)));
        next.clear();
        next.resize(c + 1, f64::INFINITY);
        if choice.len() < p {
            choice.resize_with(p, Vec::new);
        }
        {
            let row = &mut choice[0];
            row.clear();
            row.extend(0..=c as u32);
        }
        for (i, cost_i) in costs.iter().enumerate().skip(1) {
            let row = &mut choice[i];
            row.clear();
            row.resize(c + 1, 0);
            for (k, slot) in next.iter_mut().enumerate() {
                let mut best = f64::INFINITY;
                let mut best_c = 0u32;
                for ci in 0..=k {
                    let prev = dp[k - ci];
                    if prev.is_infinite() {
                        continue;
                    }
                    let own = cost_i.at(ci);
                    if own.is_infinite() {
                        continue;
                    }
                    let total = combine.apply(prev, own);
                    if total < best {
                        best = total;
                        best_c = ci as u32;
                    }
                }
                *slot = best;
                row[k] = best_c;
            }
            std::mem::swap(dp, next);
        }
    }

    /// Runs the DP under `objective`'s accumulation semantics. Returns
    /// `None` when no allocation satisfies every program's constraints
    /// (some cost curve forbids everything reachable), or when `costs`
    /// is empty.
    ///
    /// Exact-sum semantics: all `total_units` are distributed. Because
    /// cost curves are non-increasing in practice, using the whole cache
    /// is never worse; forbidden (infinite) regions only ever exclude
    /// *small* allocations, so exactness does not affect feasibility.
    pub fn solve(
        &mut self,
        costs: &[CostCurve],
        total_units: usize,
        objective: &Objective,
    ) -> Option<PartitionResult> {
        if costs.is_empty() {
            return None;
        }
        let p = costs.len();
        let c = total_units;
        let combine = objective.combine();
        self.fill_tables(costs, c, combine);
        if self.dp[c].is_infinite() {
            return None;
        }
        // For Combine::Max with all-identity costs dp[c] can be -inf only
        // if identity() leaked; costs are finite here, so dp[c] is a real
        // cost.
        let mut allocation = vec![0usize; p];
        let mut k = c;
        for i in (0..p).rev() {
            let ci = self.choice[i][k] as usize;
            allocation[i] = ci;
            k -= ci;
        }
        debug_assert_eq!(k, 0, "backtrack must consume the whole cache");
        // Recompute the cost from the allocation as a self-check (and to
        // normalize Max-combine identity handling).
        let acc = combine.accumulate(costs, &allocation);
        Some(PartitionResult {
            allocation,
            cost: acc,
        })
    }
}

/// The min-cost frontier of one DP instance: for every capacity
/// `k ∈ 0..=max_units`, the best accumulated cost of allocating
/// *exactly* `k` units across the programs, with backtracking at any
/// `k`.
///
/// This is the shape a hierarchical (cluster) solve needs from each
/// node: one local DP pass produces the node's whole cost-vs-budget
/// curve, the top-level DP across nodes picks each node's budget, and
/// [`DpFrontier::allocation`] recovers the node-local split at that
/// budget without re-solving. Entries are [`f64::INFINITY`] where no
/// feasible allocation of exactly `k` units exists.
#[derive(Clone, Debug, PartialEq)]
pub struct DpFrontier {
    costs: Vec<f64>,
    choice: Vec<Vec<u32>>,
}

impl DpFrontier {
    /// Largest capacity the frontier covers.
    pub fn max_units(&self) -> usize {
        self.costs.len() - 1
    }

    /// Number of programs the frontier was built over.
    pub fn programs(&self) -> usize {
        self.choice.len()
    }

    /// Best accumulated cost at exactly `k` units (`+∞` = infeasible).
    ///
    /// # Panics
    /// Panics if `k > max_units`.
    pub fn cost(&self, k: usize) -> f64 {
        self.costs[k]
    }

    /// The whole frontier, `costs()[k]` = best cost at exactly `k`.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Backtracks the per-program allocation behind the frontier value
    /// at `k`. Returns `None` when `cost(k)` is infinite.
    ///
    /// # Panics
    /// Panics if `k > max_units`.
    pub fn allocation(&self, k: usize) -> Option<Vec<usize>> {
        if self.costs[k].is_infinite() {
            return None;
        }
        let p = self.choice.len();
        let mut allocation = vec![0usize; p];
        let mut k = k;
        for i in (0..p).rev() {
            let ci = self.choice[i][k] as usize;
            allocation[i] = ci;
            k -= ci;
        }
        debug_assert_eq!(k, 0, "backtrack must consume the whole budget");
        Some(allocation)
    }
}

impl DpSolver {
    /// Runs the same DP as [`DpSolver::solve`] but keeps the **entire**
    /// final row: the best cost at every exact capacity `0..=max_units`,
    /// together with the choice tables for backtracking at any point.
    /// Returns `None` only when `costs` is empty.
    ///
    /// The scratch tables are reused across calls exactly as in
    /// `solve`; the returned frontier owns copies so several frontiers
    /// (one per cluster node) can coexist while the solver moves on.
    pub fn solve_frontier(
        &mut self,
        costs: &[CostCurve],
        max_units: usize,
        objective: &Objective,
    ) -> Option<DpFrontier> {
        if costs.is_empty() {
            return None;
        }
        let p = costs.len();
        self.fill_tables(costs, max_units, objective.combine());
        Some(DpFrontier {
            costs: self.dp.clone(),
            choice: self.choice[..p].to_vec(),
        })
    }
}

/// Runs the DP with one-shot scratch tables. See [`DpSolver::solve`].
///
/// # Examples
///
/// A cliff curve next to a smooth one — the case greedy allocation gets
/// wrong and the DP gets right:
///
/// ```
/// use cps_core::{optimal_partition, CostCurve, Objective};
/// let cliff = CostCurve::from_raw(vec![1.0, 1.0, 1.0, 0.0]); // all-or-nothing at 3 units
/// let smooth = CostCurve::from_raw(vec![0.3, 0.2, 0.1, 0.05]);
/// let best = optimal_partition(&[cliff, smooth], 3, &Objective::MissRatioSum).unwrap();
/// assert_eq!(best.allocation, vec![3, 0]); // feed the cliff
/// assert!((best.cost - 0.3).abs() < 1e-12);
/// ```
pub fn optimal_partition(
    costs: &[CostCurve],
    total_units: usize,
    objective: &Objective,
) -> Option<PartitionResult> {
    DpSolver::new().solve(costs, total_units, objective)
}

/// Exhaustive reference optimizer (`O(C^(P−1))`) — the oracle the tests
/// compare the DP against. Only sensible for tiny instances.
pub fn brute_force_partition(
    costs: &[CostCurve],
    total_units: usize,
    objective: &Objective,
) -> Option<PartitionResult> {
    // Iterative odometer over all compositions of total_units into p
    // parts: enumerate the first p−1 digits, the last is the remainder.
    if costs.is_empty() {
        return None;
    }
    let combine = objective.combine();
    let p = costs.len();
    let mut alloc = vec![0usize; p];
    let mut best: Option<PartitionResult> = None;
    loop {
        let head: usize = alloc[..p - 1].iter().sum();
        if head <= total_units {
            alloc[p - 1] = total_units - head;
            let acc = combine.accumulate(costs, &alloc);
            if acc.is_finite() && best.as_ref().is_none_or(|b| acc < b.cost) {
                best = Some(PartitionResult {
                    allocation: alloc.clone(),
                    cost: acc,
                });
            }
        }
        // Advance the odometer over the first p−1 digits.
        let mut i = 0;
        loop {
            if i == p - 1 {
                return best;
            }
            alloc[i] += 1;
            if alloc[..p - 1].iter().sum::<usize>() <= total_units {
                break;
            }
            alloc[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FORBIDDEN;

    fn curve(v: Vec<f64>) -> CostCurve {
        CostCurve::from_raw(v)
    }

    #[test]
    fn single_program_takes_everything() {
        let c = curve(vec![1.0, 0.5, 0.2, 0.1]);
        let r = optimal_partition(&[c], 3, &Objective::MissRatioSum).unwrap();
        assert_eq!(r.allocation, vec![3]);
        assert!((r.cost - 0.1).abs() < 1e-12);
    }

    #[test]
    fn two_programs_split_optimally() {
        // Program A gains a lot from 2 units; program B from 1.
        let a = curve(vec![1.0, 0.9, 0.1, 0.05]);
        let b = curve(vec![1.0, 0.2, 0.15, 0.1]);
        let r = optimal_partition(&[a, b], 3, &Objective::MissRatioSum).unwrap();
        assert_eq!(r.allocation, vec![2, 1]);
        assert!((r.cost - 0.3).abs() < 1e-12);
    }

    #[test]
    fn handles_cliff_curves_where_greedy_fails() {
        // A: huge drop only at 3 units. B: small steady gains.
        // Greedy-by-next-unit would feed B; optimal gives A its cliff.
        let a = curve(vec![1.0, 1.0, 1.0, 0.0]);
        let b = curve(vec![0.3, 0.2, 0.1, 0.05]);
        let r = optimal_partition(&[a, b], 3, &Objective::MissRatioSum).unwrap();
        assert_eq!(r.allocation, vec![3, 0]);
        assert!((r.cost - 0.3).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_curves() {
        let mut x = 42u64;
        let mut rnd = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..20 {
            let p = 3;
            let c = 12;
            let costs: Vec<CostCurve> = (0..p)
                .map(|_| {
                    // Random non-increasing curve.
                    let mut v: Vec<f64> = (0..=c).map(|_| rnd()).collect();
                    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
                    curve(v)
                })
                .collect();
            let dp = optimal_partition(&costs, c, &Objective::MissRatioSum).unwrap();
            let bf = brute_force_partition(&costs, c, &Objective::MissRatioSum).unwrap();
            assert!(
                (dp.cost - bf.cost).abs() < 1e-9,
                "dp {} vs brute force {}",
                dp.cost,
                bf.cost
            );
            assert_eq!(dp.allocation.iter().sum::<usize>(), c);
        }
    }

    #[test]
    fn matches_brute_force_with_non_monotone_curves() {
        // "Any function" support: costs that go *up* with more cache.
        let a = curve(vec![0.5, 0.1, 0.9, 0.2]);
        let b = curve(vec![0.3, 0.6, 0.0, 0.4]);
        let dp = optimal_partition(&[a.clone(), b.clone()], 3, &Objective::MissRatioSum).unwrap();
        let bf = brute_force_partition(&[a, b], 3, &Objective::MissRatioSum).unwrap();
        assert_eq!(dp.cost, bf.cost);
        assert_eq!(dp.allocation, vec![1, 2]);
    }

    #[test]
    fn max_combine_minimizes_worst_member() {
        // Sum-optimal would starve B (give everything to A); max-combine
        // balances.
        let a = curve(vec![0.9, 0.5, 0.3, 0.1]);
        let b = curve(vec![0.8, 0.4, 0.2, 0.05]);
        let sum = optimal_partition(&[a.clone(), b.clone()], 3, &Objective::MissRatioSum).unwrap();
        let max = optimal_partition(&[a.clone(), b.clone()], 3, &Objective::MaxMissRatio).unwrap();
        let worst = |r: &PartitionResult| {
            (0..2)
                .map(|i| [&a, &b][i].at(r.allocation[i]))
                .fold(0.0, f64::max)
        };
        assert!(worst(&max) <= worst(&sum) + 1e-12);
        let bf = brute_force_partition(&[a, b], 3, &Objective::MaxMissRatio).unwrap();
        assert!((max.cost - bf.cost).abs() < 1e-12);
    }

    #[test]
    fn constraints_are_respected() {
        // A needs at least 2 units; B at least 1; cache of 4.
        let a = curve(vec![FORBIDDEN, FORBIDDEN, 0.5, 0.4, 0.3]);
        let b = curve(vec![FORBIDDEN, 0.6, 0.5, 0.45, 0.44]);
        let r = optimal_partition(&[a, b], 4, &Objective::MissRatioSum).unwrap();
        assert!(r.allocation[0] >= 2);
        assert!(r.allocation[1] >= 1);
        assert_eq!(r.allocation.iter().sum::<usize>(), 4);
    }

    #[test]
    fn infeasible_returns_none() {
        // Together they need 5 units; only 4 exist.
        let a = curve(vec![FORBIDDEN, FORBIDDEN, FORBIDDEN, 0.1, 0.1]);
        let b = curve(vec![FORBIDDEN, FORBIDDEN, 0.2, 0.2, 0.2]);
        assert_eq!(
            optimal_partition(&[a, b], 4, &Objective::MissRatioSum),
            None
        );
    }

    #[test]
    fn empty_input_returns_none() {
        assert_eq!(optimal_partition(&[], 4, &Objective::MissRatioSum), None);
    }

    #[test]
    fn zero_cache_allocates_zeros() {
        let a = curve(vec![0.5]);
        let b = curve(vec![0.25]);
        let r = optimal_partition(&[a, b], 0, &Objective::MissRatioSum).unwrap();
        assert_eq!(r.allocation, vec![0, 0]);
        assert!((r.cost - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reused_solver_matches_fresh_solves() {
        // Shrinking and growing the instance between solves must not let
        // stale scratch data leak into results.
        let mut solver = DpSolver::new();
        let instances: Vec<(Vec<CostCurve>, usize)> = vec![
            (
                vec![
                    curve(vec![1.0, 0.5, 0.2, 0.1, 0.05]),
                    curve(vec![1.0, 0.8, 0.3, 0.2, 0.15]),
                    curve(vec![0.9, 0.6, 0.55, 0.5, 0.5]),
                ],
                4,
            ),
            (vec![curve(vec![1.0, 0.0])], 1),
            (
                vec![
                    curve(vec![1.0, 1.0, 1.0, 0.0]),
                    curve(vec![0.3, 0.2, 0.1, 0.05]),
                ],
                3,
            ),
            (
                vec![
                    curve(vec![FORBIDDEN, FORBIDDEN, 0.5, 0.4, 0.3]),
                    curve(vec![FORBIDDEN, 0.6, 0.5, 0.45, 0.44]),
                ],
                4,
            ),
        ];
        for combine in [&Objective::MissRatioSum, &Objective::MaxMissRatio] {
            for (costs, c) in &instances {
                assert_eq!(
                    solver.solve(costs, *c, combine),
                    optimal_partition(costs, *c, combine),
                    "combine {combine:?}, cache {c}"
                );
            }
        }
    }

    #[test]
    fn reused_solver_reports_infeasible_then_recovers() {
        let mut solver = DpSolver::new();
        let a = curve(vec![FORBIDDEN, FORBIDDEN, FORBIDDEN, 0.1, 0.1]);
        let b = curve(vec![FORBIDDEN, FORBIDDEN, 0.2, 0.2, 0.2]);
        assert_eq!(solver.solve(&[a, b], 4, &Objective::MissRatioSum), None);
        let c = curve(vec![1.0, 0.5]);
        let r = solver.solve(&[c], 1, &Objective::MissRatioSum).unwrap();
        assert_eq!(r.allocation, vec![1]);
    }

    #[test]
    fn frontier_at_full_capacity_matches_solve() {
        let mut solver = DpSolver::new();
        let costs = vec![
            curve(vec![1.0, 0.5, 0.2, 0.1, 0.05]),
            curve(vec![1.0, 0.8, 0.3, 0.2, 0.15]),
            curve(vec![0.9, 0.6, 0.55, 0.5, 0.5]),
        ];
        for combine in [&Objective::MissRatioSum, &Objective::MaxMissRatio] {
            let frontier = solver.solve_frontier(&costs, 4, combine).unwrap();
            for k in 0..=4 {
                let direct = solver.solve(&costs, k, combine).unwrap();
                // The DP accumulates left-to-right in both entry points,
                // so the values are bit-identical, not merely close.
                assert_eq!(frontier.cost(k), direct.cost, "k={k} {combine:?}");
                assert_eq!(
                    frontier.allocation(k).unwrap(),
                    direct.allocation,
                    "k={k} {combine:?}"
                );
            }
        }
    }

    #[test]
    fn frontier_of_one_program_is_its_cost_curve() {
        let c = curve(vec![1.0, 0.5, 0.2, 0.1]);
        let frontier = DpSolver::new()
            .solve_frontier(std::slice::from_ref(&c), 5, &Objective::MissRatioSum)
            .unwrap();
        for k in 0..=5 {
            assert_eq!(frontier.cost(k), c.at(k));
            assert_eq!(frontier.allocation(k).unwrap(), vec![k]);
        }
    }

    #[test]
    fn frontier_marks_infeasible_capacities() {
        // A needs ≥ 2 units, B needs ≥ 1: nothing below 3 is feasible.
        let a = curve(vec![FORBIDDEN, FORBIDDEN, 0.5, 0.4, 0.3]);
        let b = curve(vec![FORBIDDEN, 0.6, 0.5, 0.45, 0.44]);
        let frontier = DpSolver::new()
            .solve_frontier(&[a, b], 4, &Objective::MissRatioSum)
            .unwrap();
        for k in 0..3 {
            assert!(frontier.cost(k).is_infinite(), "k={k}");
            assert_eq!(frontier.allocation(k), None);
        }
        for k in 3..=4 {
            assert!(frontier.cost(k).is_finite(), "k={k}");
            let alloc = frontier.allocation(k).unwrap();
            assert!(alloc[0] >= 2 && alloc[1] >= 1);
            assert_eq!(alloc.iter().sum::<usize>(), k);
        }
        assert_eq!(frontier.max_units(), 4);
        assert_eq!(frontier.programs(), 2);
    }

    #[test]
    fn frontier_matches_brute_force_everywhere() {
        let mut x = 7u64;
        let mut rnd = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64) / (u32::MAX as f64)
        };
        let mut solver = DpSolver::new();
        for _ in 0..10 {
            let costs: Vec<CostCurve> = (0..3)
                .map(|_| curve((0..=10).map(|_| rnd()).collect()))
                .collect();
            for combine in [&Objective::MissRatioSum, &Objective::MaxMissRatio] {
                let frontier = solver.solve_frontier(&costs, 10, combine).unwrap();
                for k in 0..=10 {
                    let bf = brute_force_partition(&costs, k, combine).unwrap();
                    assert!(
                        (frontier.cost(k) - bf.cost).abs() < 1e-9,
                        "k={k}: frontier {} vs brute force {}",
                        frontier.cost(k),
                        bf.cost
                    );
                }
            }
        }
    }

    #[test]
    fn frontier_of_empty_input_is_none() {
        assert_eq!(
            DpSolver::new().solve_frontier(&[], 4, &Objective::MissRatioSum),
            None
        );
    }

    #[test]
    fn short_cost_curves_clamp() {
        // A curve shorter than the cache behaves as flat past its end.
        let a = curve(vec![1.0, 0.0]); // flat 0 beyond 1 unit
        let b = curve(vec![1.0, 0.4, 0.3, 0.2, 0.15]);
        let r = optimal_partition(&[a, b], 4, &Objective::MissRatioSum).unwrap();
        assert_eq!(r.allocation, vec![1, 3]);
    }
}
