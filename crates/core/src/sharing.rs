//! Partition-sharing configurations and the reduction theorem
//! (Sections II and V-A).
//!
//! A partition-sharing configuration groups programs and walls the cache
//! between the groups; within each partition the group shares freely.
//! Under the Natural Partition Assumption a shared partition performs
//! like its internal natural partition, so every configuration is
//! performance-equivalent to some pure partitioning — which is why the
//! optimal pure partition (searchable in `O(P·C²)`) upper-bounds the
//! entire `S2 ≈ 180 M`-point partition-sharing space.
//! [`best_partition_sharing`] verifies this numerically by exhaustive
//! search at coarse granularity.

use crate::config::CacheConfig;
use crate::schemes::Scheme;
use cps_hotl::{CoRunModel, SoloProfile};

/// A partition-sharing configuration over a group of programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharingConfig {
    /// `groups[g]` lists member indices sharing partition `g`.
    pub groups: Vec<Vec<usize>>,
    /// Partition sizes in units; sums to the cache.
    pub unit_sizes: Vec<usize>,
}

impl SharingConfig {
    /// Free-for-all: one partition holding everybody.
    pub fn free_for_all(num_programs: usize, units: usize) -> Self {
        SharingConfig {
            groups: vec![(0..num_programs).collect()],
            unit_sizes: vec![units],
        }
    }

    /// Strict partitioning with the given per-program sizes.
    pub fn partitioning(unit_sizes: Vec<usize>) -> Self {
        SharingConfig {
            groups: (0..unit_sizes.len()).map(|i| vec![i]).collect(),
            unit_sizes,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.groups.len()
    }
}

/// HOTL-predicted evaluation of a partition-sharing configuration:
/// returns `(member_miss_ratios, group_miss_ratio)` where the group
/// value is weighted by the members' global access shares.
///
/// Uses the *continuous* composition model: within a shared partition,
/// member occupancies are the fractional natural occupancies. See
/// [`evaluate_sharing_quantized`] for the block-quantized variant the
/// reduction theorem is stated against.
pub fn evaluate_sharing(
    members: &[&SoloProfile],
    config: &CacheConfig,
    sharing: &SharingConfig,
) -> (Vec<f64>, f64) {
    let total_rate: f64 = members.iter().map(|m| m.access_rate).sum();
    let mut member_mrs = vec![0.0; members.len()];
    for (group, &units) in sharing.groups.iter().zip(&sharing.unit_sizes) {
        let subgroup: Vec<&SoloProfile> = group.iter().map(|&i| members[i]).collect();
        let model = CoRunModel::new(subgroup);
        let mrs = model.member_shared_miss_ratios(config.to_blocks(units) as f64);
        for (&i, mr) in group.iter().zip(mrs) {
            member_mrs[i] = mr;
        }
    }
    let group_mr = members
        .iter()
        .zip(&member_mrs)
        .map(|(m, mr)| m.access_rate / total_rate * mr)
        .sum();
    (member_mrs, group_mr)
}

/// Block-quantized evaluation of a partition-sharing configuration.
///
/// Within each shared partition the natural occupancies are rounded to
/// whole blocks (largest remainder) and each member's miss ratio is read
/// off its solo MRC at that occupancy — exactly the Natural Partition
/// Assumption applied at the granularity a physical cache can realize.
/// Every configuration evaluated this way is, by construction,
/// performance-equal to some pure block-granular partition, which is the
/// reduction theorem of Section V-A.
pub fn evaluate_sharing_quantized(
    members: &[&SoloProfile],
    config: &CacheConfig,
    sharing: &SharingConfig,
) -> (Vec<f64>, f64) {
    let total_rate: f64 = members.iter().map(|m| m.access_rate).sum();
    let mut member_mrs = vec![0.0; members.len()];
    for (group, &units) in sharing.groups.iter().zip(&sharing.unit_sizes) {
        let partition_blocks = config.to_blocks(units);
        let subgroup: Vec<&SoloProfile> = group.iter().map(|&i| members[i]).collect();
        let model = CoRunModel::new(subgroup);
        let np = model.natural_partition(partition_blocks as f64);
        let blocks = crate::natural::round_to_units(&np.occupancy, partition_blocks);
        for (&i, b) in group.iter().zip(blocks) {
            member_mrs[i] = members[i].mrc.at(b);
        }
    }
    let group_mr = members
        .iter()
        .zip(&member_mrs)
        .map(|(m, mr)| m.access_rate / total_rate * mr)
        .sum();
    (member_mrs, group_mr)
}

/// All set partitions of `{0, …, n−1}` (Bell(n) of them), each as a list
/// of groups in canonical order.
pub fn enumerate_set_partitions(n: usize) -> Vec<Vec<Vec<usize>>> {
    let mut out = Vec::new();
    let mut current: Vec<Vec<usize>> = Vec::new();
    fn recurse(i: usize, n: usize, current: &mut Vec<Vec<usize>>, out: &mut Vec<Vec<Vec<usize>>>) {
        if i == n {
            out.push(current.clone());
            return;
        }
        for g in 0..current.len() {
            current[g].push(i);
            recurse(i + 1, n, current, out);
            current[g].pop();
        }
        current.push(vec![i]);
        recurse(i + 1, n, current, out);
        current.pop();
    }
    recurse(0, n, &mut current, &mut out);
    out
}

/// Calls `f` for every composition of `total` into `parts` positive
/// summands.
pub fn for_each_composition(total: usize, parts: usize, f: &mut impl FnMut(&[usize])) {
    if parts == 0 || total < parts {
        return;
    }
    let mut buf = vec![0usize; parts];
    fn recurse(idx: usize, remaining: usize, buf: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        let parts_left = buf.len() - idx;
        if parts_left == 1 {
            buf[idx] = remaining;
            f(buf);
            return;
        }
        // Each remaining part needs ≥ 1.
        for v in 1..=(remaining - (parts_left - 1)) {
            buf[idx] = v;
            recurse(idx + 1, remaining - v, buf, f);
        }
    }
    recurse(0, total, &mut buf, f);
}

/// The best configuration found by exhaustive search, with its group
/// miss ratio.
#[derive(Clone, Debug)]
pub struct SharingSearchResult {
    /// The winning configuration.
    pub config: SharingConfig,
    /// Its predicted group miss ratio.
    pub group_miss_ratio: f64,
    /// Number of configurations examined (Σ over groupings of the wall
    /// placements — Eq. 2 at this granularity).
    pub examined: u64,
}

/// Exhaustively searches **all** partition-sharing configurations of the
/// group at the given (coarse) granularity — every set partition of the
/// programs times every wall placement (Eq. 2) — and returns the best
/// under the continuous composition model.
///
/// Cost grows as `S2(P, units)`; keep `units` small (≤ 64 for 4
/// programs).
pub fn best_partition_sharing(
    members: &[&SoloProfile],
    config: &CacheConfig,
) -> SharingSearchResult {
    best_partition_sharing_with(members, config, evaluate_sharing)
}

/// [`best_partition_sharing`] with the block-quantized evaluator — the
/// variant whose winner is provably matched by the DP's optimal pure
/// partition (the reduction theorem).
pub fn best_partition_sharing_quantized(
    members: &[&SoloProfile],
    config: &CacheConfig,
) -> SharingSearchResult {
    best_partition_sharing_with(members, config, evaluate_sharing_quantized)
}

fn best_partition_sharing_with(
    members: &[&SoloProfile],
    config: &CacheConfig,
    evaluate: impl Fn(&[&SoloProfile], &CacheConfig, &SharingConfig) -> (Vec<f64>, f64),
) -> SharingSearchResult {
    assert!(!members.is_empty(), "group needs members");
    let mut best: Option<(SharingConfig, f64)> = None;
    let mut examined = 0u64;
    for grouping in enumerate_set_partitions(members.len()) {
        let parts = grouping.len();
        let mut consider = |sizes: &[usize]| {
            let cand = SharingConfig {
                groups: grouping.clone(),
                unit_sizes: sizes.to_vec(),
            };
            let (_, mr) = evaluate(members, config, &cand);
            examined += 1;
            if best.as_ref().is_none_or(|(_, b)| mr < *b) {
                best = Some((cand, mr));
            }
        };
        for_each_composition(config.units, parts, &mut consider);
    }
    let (cfg, mr) = best.expect("at least free-for-all exists");
    SharingSearchResult {
        config: cfg,
        group_miss_ratio: mr,
        examined,
    }
}

/// Convenience: the scheme label a configuration corresponds to, if any.
pub fn classify(config: &SharingConfig, num_programs: usize) -> Option<Scheme> {
    if config.groups.len() == 1 && config.groups[0].len() == num_programs {
        Some(Scheme::Natural)
    } else {
        // Pure partitioning or a mixed scheme: which named scheme (if
        // any) depends on the wall sizes, not just the grouping.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostCurve;
    use crate::dp::optimal_partition;
    use crate::objective::Objective;
    use cps_trace::WorkloadSpec;

    fn profile(name: &str, ws: u64, rate: f64, max_blocks: usize) -> SoloProfile {
        let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(30_000, ws * 3 + 1);
        SoloProfile::from_trace(name, &t.blocks, rate, max_blocks)
    }

    #[test]
    fn set_partition_counts_are_bell_numbers() {
        for (n, bell) in [(1usize, 1usize), (2, 2), (3, 5), (4, 15), (5, 52)] {
            assert_eq!(enumerate_set_partitions(n).len(), bell, "Bell({n})");
        }
    }

    #[test]
    fn set_partitions_cover_all_elements() {
        for p in enumerate_set_partitions(4) {
            let mut all: Vec<usize> = p.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn composition_count_is_stars_and_bars() {
        // Compositions of 10 into 3 positive parts: C(9, 2) = 36.
        let mut count = 0;
        for_each_composition(10, 3, &mut |c| {
            assert_eq!(c.iter().sum::<usize>(), 10);
            assert!(c.iter().all(|&v| v >= 1));
            count += 1;
        });
        assert_eq!(count, 36);
    }

    #[test]
    fn composition_degenerate_cases() {
        let mut seen = Vec::new();
        for_each_composition(3, 1, &mut |c| seen.push(c.to_vec()));
        assert_eq!(seen, vec![vec![3]]);
        let mut none = 0;
        for_each_composition(2, 3, &mut |_| none += 1);
        assert_eq!(none, 0, "cannot split 2 into 3 positive parts");
    }

    #[test]
    fn free_for_all_matches_corun_model() {
        let a = profile("a", 60, 1.0, 96);
        let b = profile("b", 80, 2.0, 96);
        let members = vec![&a, &b];
        let cfg = CacheConfig::new(96, 1);
        let ffa = SharingConfig::free_for_all(2, 96);
        let (mrs, group) = evaluate_sharing(&members, &cfg, &ffa);
        let model = CoRunModel::new(members.clone());
        let expect = model.member_shared_miss_ratios(96.0);
        for (got, exp) in mrs.iter().zip(&expect) {
            assert!((got - exp).abs() < 1e-9);
        }
        assert!((group - model.shared_group_miss_ratio(96.0)).abs() < 1e-9);
    }

    #[test]
    fn partitioning_matches_solo_curves() {
        let a = profile("a", 40, 1.0, 96);
        let b = profile("b", 70, 1.0, 96);
        let members = vec![&a, &b];
        let cfg = CacheConfig::new(96, 1);
        let part = SharingConfig::partitioning(vec![50, 46]);
        let (mrs, _) = evaluate_sharing(&members, &cfg, &part);
        // Singleton groups: shared-within-partition = solo at partition.
        assert!((mrs[0] - a.footprint.miss_ratio(50.0)).abs() < 1e-6);
        assert!((mrs[1] - b.footprint.miss_ratio(46.0)).abs() < 1e-6);
    }

    #[test]
    fn reduction_theorem_optimal_partitioning_wins() {
        // Under NPA (which our evaluator embodies), the best pure
        // partition is at least as good as the best partition-sharing.
        let a = profile("a", 30, 1.0, 48);
        let b = profile("b", 20, 1.4, 48);
        let c = profile("c", 45, 0.8, 48);
        let members = vec![&a, &b, &c];
        let cfg = CacheConfig::new(24, 2); // 48 blocks, coarse units
        let search = best_partition_sharing(&members, &cfg);
        let shares: Vec<f64> = {
            let t: f64 = members.iter().map(|m| m.access_rate).sum();
            members.iter().map(|m| m.access_rate / t).collect()
        };
        let costs: Vec<CostCurve> = members
            .iter()
            .zip(&shares)
            .map(|(m, &s)| CostCurve::from_miss_ratio(&m.mrc, &cfg, s))
            .collect();
        let dp = optimal_partition(&costs, cfg.units, &Objective::MissRatioSum).unwrap();
        assert!(
            dp.cost <= search.group_miss_ratio + 1e-6,
            "optimal partitioning {} must upper-bound partition-sharing {}",
            dp.cost,
            search.group_miss_ratio
        );
        // Sanity on the search-space size: Σ_npa S(3,npa)·C(23, npa−1)
        // = 1·1 + 3·23 + 1·253 = 323.
        assert_eq!(search.examined, 323);
    }

    #[test]
    fn classify_recognizes_free_for_all() {
        let ffa = SharingConfig::free_for_all(4, 32);
        assert_eq!(classify(&ffa, 4), Some(Scheme::Natural));
        let part = SharingConfig::partitioning(vec![8, 8, 8, 8]);
        assert_eq!(classify(&part, 4), None);
    }
}
