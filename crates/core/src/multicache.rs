//! Sharing across multiple caches (Section II, sub-problem 1).
//!
//! With `nc` separate caches and `npr` programs, the only decision is the
//! *grouping* — which programs co-run on which cache — and the search
//! space is the Stirling number `S(npr, nc)` (Eq. 1). Each cache then
//! behaves like one free-for-all group, predicted by footprint
//! composition; or, if the hardware supports it, each cache can also be
//! partitioned optimally among its tenants.
//!
//! This module evaluates a grouping under both policies and searches the
//! grouping space exhaustively (fine for the paper-scale `S(8, 2) = 127`
//! or `S(16, 4) = 171,798,901`-style problems only when `npr` is small;
//! a greedy fallback handles bigger instances).

use crate::config::CacheConfig;
use crate::cost::CostCurve;
use crate::dp::optimal_partition;
use crate::objective::Objective;
use cps_hotl::{CoRunModel, SoloProfile};

/// How each cache's space is managed among its tenants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// Free-for-all sharing within each cache (the paper's problem 1).
    Shared,
    /// Optimal partitioning within each cache (problem 1 upgraded with
    /// the paper's DP).
    Partitioned,
}

/// A program-to-cache assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheAssignment {
    /// `groups[c]` lists program indices placed on cache `c`. Groups may
    /// not be empty (every cache is used).
    pub groups: Vec<Vec<usize>>,
}

/// Result of evaluating one assignment.
#[derive(Clone, Debug)]
pub struct AssignmentEval {
    /// Per-program miss ratios.
    pub member_miss_ratios: Vec<f64>,
    /// Access-share-weighted overall miss ratio (shares computed over
    /// **all** programs, so assignments are comparable).
    pub overall_miss_ratio: f64,
}

/// Evaluates an assignment of `members` onto equal caches of
/// `config.blocks()` each.
pub fn evaluate_assignment(
    members: &[&SoloProfile],
    config: &CacheConfig,
    assignment: &CacheAssignment,
    policy: CachePolicy,
) -> AssignmentEval {
    let total_rate: f64 = members.iter().map(|m| m.access_rate).sum();
    let mut member_miss_ratios = vec![0.0; members.len()];
    for group in &assignment.groups {
        let tenants: Vec<&SoloProfile> = group.iter().map(|&i| members[i]).collect();
        match policy {
            CachePolicy::Shared => {
                let model = CoRunModel::new(tenants);
                let mrs = model.member_shared_miss_ratios(config.blocks() as f64);
                for (&i, mr) in group.iter().zip(mrs) {
                    member_miss_ratios[i] = mr;
                }
            }
            CachePolicy::Partitioned => {
                let group_rate: f64 = tenants.iter().map(|m| m.access_rate).sum();
                let costs: Vec<CostCurve> = tenants
                    .iter()
                    .map(|m| CostCurve::from_miss_ratio(&m.mrc, config, m.access_rate / group_rate))
                    .collect();
                let result = optimal_partition(&costs, config.units, &Objective::MissRatioSum)
                    .expect("unconstrained DP is feasible");
                for ((&i, t), &units) in group.iter().zip(&tenants).zip(&result.allocation) {
                    member_miss_ratios[i] = t.mrc.at(config.to_blocks(units));
                }
            }
        }
    }
    let overall = members
        .iter()
        .zip(&member_miss_ratios)
        .map(|(m, mr)| m.access_rate / total_rate * mr)
        .sum();
    AssignmentEval {
        member_miss_ratios,
        overall_miss_ratio: overall,
    }
}

/// Enumerates every way to split `n` programs into exactly `caches`
/// non-empty groups (`S(n, caches)` of them).
pub fn enumerate_assignments(n: usize, caches: usize) -> Vec<CacheAssignment> {
    let mut out = Vec::new();
    if caches == 0 || caches > n {
        return out;
    }
    let mut current: Vec<Vec<usize>> = Vec::new();
    fn recurse(
        i: usize,
        n: usize,
        caches: usize,
        current: &mut Vec<Vec<usize>>,
        out: &mut Vec<CacheAssignment>,
    ) {
        // Prune: remaining elements must be able to fill the remaining
        // new groups.
        let remaining = n - i;
        let missing = caches.saturating_sub(current.len());
        if remaining < missing {
            return;
        }
        if i == n {
            if current.len() == caches {
                out.push(CacheAssignment {
                    groups: current.clone(),
                });
            }
            return;
        }
        for g in 0..current.len() {
            current[g].push(i);
            recurse(i + 1, n, caches, current, out);
            current[g].pop();
        }
        if current.len() < caches {
            current.push(vec![i]);
            recurse(i + 1, n, caches, current, out);
            current.pop();
        }
    }
    recurse(0, n, caches, &mut current, &mut out);
    out
}

/// The best assignment found and its evaluation.
#[derive(Clone, Debug)]
pub struct AssignmentSearchResult {
    /// The winning assignment.
    pub assignment: CacheAssignment,
    /// Its evaluation.
    pub eval: AssignmentEval,
    /// Number of assignments examined (`S(npr, nc)` for the exhaustive
    /// search).
    pub examined: u64,
}

/// Exhaustive search over all `S(npr, nc)` groupings. Use only when the
/// Stirling number is small; see [`greedy_assignment`] otherwise.
pub fn best_assignment(
    members: &[&SoloProfile],
    config: &CacheConfig,
    caches: usize,
    policy: CachePolicy,
) -> Option<AssignmentSearchResult> {
    let mut best: Option<AssignmentSearchResult> = None;
    let mut examined = 0u64;
    for assignment in enumerate_assignments(members.len(), caches) {
        let eval = evaluate_assignment(members, config, &assignment, policy);
        examined += 1;
        if best
            .as_ref()
            .is_none_or(|b| eval.overall_miss_ratio < b.eval.overall_miss_ratio)
        {
            best = Some(AssignmentSearchResult {
                assignment,
                eval,
                examined,
            });
        }
    }
    best.map(|mut b| {
        b.examined = examined;
        b
    })
}

/// Greedy assignment for large `npr`: programs are placed one at a time
/// (largest footprint first) onto the cache where they currently raise
/// the overall miss ratio least. `O(npr² · nc)` evaluations.
pub fn greedy_assignment(
    members: &[&SoloProfile],
    config: &CacheConfig,
    caches: usize,
    policy: CachePolicy,
) -> Option<AssignmentSearchResult> {
    if caches == 0 || members.len() < caches {
        return None;
    }
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by(|&a, &b| {
        members[b]
            .footprint
            .distinct
            .cmp(&members[a].footprint.distinct)
    });
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); caches];
    let mut examined = 0u64;
    for &prog in &order {
        let mut best_cache = 0;
        let mut best_mr = f64::INFINITY;
        for c in 0..caches {
            // A cache must not be left empty if the remaining programs
            // can't fill the other empties — simple rule: prefer empty
            // caches first.
            groups[c].push(prog);
            let placed: Vec<usize> = groups.iter().flatten().copied().collect();
            let assignment = CacheAssignment {
                groups: groups.iter().filter(|g| !g.is_empty()).cloned().collect(),
            };
            let sub: Vec<&SoloProfile> = placed.iter().map(|&i| members[i]).collect();
            // Re-index the assignment onto the placed subset.
            let index_of = |p: usize| placed.iter().position(|&x| x == p).unwrap();
            let sub_assignment = CacheAssignment {
                groups: assignment
                    .groups
                    .iter()
                    .map(|g| g.iter().map(|&p| index_of(p)).collect())
                    .collect(),
            };
            let eval = evaluate_assignment(&sub, config, &sub_assignment, policy);
            examined += 1;
            let empties = groups.iter().filter(|g| g.is_empty()).count();
            // Strongly prefer filling empty caches (free space).
            let score = eval.overall_miss_ratio + empties as f64;
            if score < best_mr {
                best_mr = score;
                best_cache = c;
            }
            groups[c].pop();
        }
        groups[best_cache].push(prog);
    }
    let assignment = CacheAssignment { groups };
    let eval = evaluate_assignment(members, config, &assignment, policy);
    Some(AssignmentSearchResult {
        assignment,
        eval,
        examined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    fn profile(name: &str, ws: u64, rate: f64, blocks: usize) -> SoloProfile {
        let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(30_000, ws + 7);
        SoloProfile::from_trace(name, &t.blocks, rate, blocks)
    }

    #[test]
    fn enumeration_counts_are_stirling_numbers() {
        assert_eq!(enumerate_assignments(4, 2).len(), 7); // S(4,2)
        assert_eq!(enumerate_assignments(4, 3).len(), 6); // S(4,3)
        assert_eq!(enumerate_assignments(5, 2).len(), 15); // S(5,2)
        assert_eq!(enumerate_assignments(3, 4).len(), 0);
        assert_eq!(enumerate_assignments(3, 0).len(), 0);
    }

    #[test]
    fn every_assignment_covers_all_programs() {
        for a in enumerate_assignments(5, 3) {
            let mut all: Vec<usize> = a.groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4]);
            assert!(a.groups.iter().all(|g| !g.is_empty()));
        }
    }

    #[test]
    fn antagonists_get_separated() {
        // Two cache-hungry loops (90 each) and two tiny ones, two caches
        // of 128: the best grouping must not co-locate the two big loops
        // (together they thrash one cache while the other idles).
        let blocks = 128;
        let cfg = CacheConfig::new(blocks, 1);
        let ps = [
            profile("big-a", 90, 1.0, blocks),
            profile("big-b", 90, 1.0, blocks),
            profile("tiny-a", 10, 1.0, blocks),
            profile("tiny-b", 10, 1.0, blocks),
        ];
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let best = best_assignment(&members, &cfg, 2, CachePolicy::Shared).unwrap();
        assert_eq!(best.examined, 7);
        let together = best
            .assignment
            .groups
            .iter()
            .any(|g| g.contains(&0) && g.contains(&1));
        assert!(
            !together,
            "the two 90-block loops must be split: {:?}",
            best.assignment.groups
        );
        assert!(best.eval.overall_miss_ratio < 0.1);
    }

    #[test]
    fn partitioned_policy_never_loses_to_shared() {
        let blocks = 96;
        let cfg = CacheConfig::new(blocks, 1);
        let ps = [
            profile("a", 70, 1.0, blocks),
            profile("b", 40, 1.3, blocks),
            profile("c", 25, 0.9, blocks),
        ];
        let members: Vec<&SoloProfile> = ps.iter().collect();
        for assignment in enumerate_assignments(3, 2) {
            let shared = evaluate_assignment(&members, &cfg, &assignment, CachePolicy::Shared);
            let parted = evaluate_assignment(&members, &cfg, &assignment, CachePolicy::Partitioned);
            assert!(
                parted.overall_miss_ratio <= shared.overall_miss_ratio + 1e-6,
                "{:?}: partitioned {} vs shared {}",
                assignment.groups,
                parted.overall_miss_ratio,
                shared.overall_miss_ratio
            );
        }
    }

    #[test]
    fn greedy_is_reasonable_vs_exhaustive() {
        let blocks = 128;
        let cfg = CacheConfig::new(blocks, 1);
        let ps = [
            profile("p0", 90, 1.0, blocks),
            profile("p1", 60, 1.5, blocks),
            profile("p2", 35, 0.8, blocks),
            profile("p3", 20, 1.2, blocks),
            profile("p4", 110, 1.0, blocks),
        ];
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let exact = best_assignment(&members, &cfg, 2, CachePolicy::Shared).unwrap();
        let greedy = greedy_assignment(&members, &cfg, 2, CachePolicy::Shared).unwrap();
        assert!(
            greedy.eval.overall_miss_ratio <= exact.eval.overall_miss_ratio * 1.5 + 1e-6,
            "greedy {} too far from exact {}",
            greedy.eval.overall_miss_ratio,
            exact.eval.overall_miss_ratio
        );
        // Greedy fills every cache.
        assert!(greedy.assignment.groups.iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn single_cache_assignment_is_free_for_all() {
        let blocks = 64;
        let cfg = CacheConfig::new(blocks, 1);
        let ps = [profile("x", 30, 1.0, blocks), profile("y", 50, 1.0, blocks)];
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let best = best_assignment(&members, &cfg, 1, CachePolicy::Shared).unwrap();
        assert_eq!(best.examined, 1);
        let model = CoRunModel::new(members.clone());
        let expect = model.shared_group_miss_ratio(blocks as f64);
        assert!((best.eval.overall_miss_ratio - expect).abs() < 1e-9);
    }
}
