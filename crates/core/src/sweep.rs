//! Whole-study evaluation: every k-program co-run group, in parallel
//! (Section VII's 1820-group methodology).
//!
//! The paper enumerates all `C(16, 4) = 1820` co-run groups of its
//! program set and evaluates the six schemes for each — exhaustive
//! because "a random subset … can mislead". Groups are independent, so
//! the sweep is a textbook `par_iter` over group indices; each group
//! runs three `O(P·C²)` DPs (Optimal and the two baselines) plus the
//! cheap schemes.

use crate::config::CacheConfig;
use crate::objective::Objective;
use crate::schemes::{evaluate_group_with, GroupEvaluation, Scheme};
use cps_dstruct::stats::{fraction_at_least, Summary};
use cps_hotl::SoloProfile;
use cps_trace::ProgramSpec;
use rayon::prelude::*;

/// A profiled study set: the 16 programs plus the cache geometry.
#[derive(Clone, Debug)]
pub struct Study {
    /// Solo profiles, one per program.
    pub profiles: Vec<SoloProfile>,
    /// Cache geometry shared by all evaluations.
    pub config: CacheConfig,
}

impl Study {
    /// Generates and profiles every program of `specs` in parallel.
    pub fn build(specs: &[ProgramSpec], config: CacheConfig) -> Study {
        let profiles = specs
            .par_iter()
            .map(|spec| {
                let trace = spec.trace();
                SoloProfile::from_trace(spec.name, &trace.blocks, spec.access_rate, config.blocks())
            })
            .collect();
        Study { profiles, config }
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if the study has no programs.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Index of a program by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.profiles.iter().position(|p| p.name == name)
    }
}

/// One evaluated co-run group.
#[derive(Clone, Debug)]
pub struct GroupRecord {
    /// Indices into the study's program list.
    pub indices: Vec<usize>,
    /// The six-scheme evaluation.
    pub evaluation: GroupEvaluation,
}

/// All `C(n, k)` index subsets in lexicographic order.
pub fn all_k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut cur: Vec<usize> = (0..k).collect();
    loop {
        out.push(cur.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if cur[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        cur[i] += 1;
        for j in i + 1..k {
            cur[j] = cur[j - 1] + 1;
        }
    }
}

/// Evaluates every `k`-program group of the study under the default
/// miss-ratio-sum objective, in parallel.
pub fn sweep_groups(study: &Study, k: usize) -> Vec<GroupRecord> {
    sweep_groups_with(study, k, &Objective::MissRatioSum)
}

/// Evaluates every `k`-program group of the study under `objective`, in
/// parallel — one tournament leg.
pub fn sweep_groups_with(study: &Study, k: usize, objective: &Objective) -> Vec<GroupRecord> {
    let subsets = all_k_subsets(study.len(), k);
    subsets
        .into_par_iter()
        .map(|indices| {
            let members: Vec<&SoloProfile> = indices.iter().map(|&i| &study.profiles[i]).collect();
            GroupRecord {
                evaluation: evaluate_group_with(&members, &study.config, objective),
                indices,
            }
        })
        .collect()
}

/// Table I row: distribution of Optimal's improvement over one scheme.
#[derive(Clone, Copy, Debug)]
pub struct ImprovementStats {
    /// Which scheme Optimal is compared against.
    pub versus: Scheme,
    /// Distribution of per-group improvements, in percent.
    pub summary: Summary,
    /// Fraction of groups improved by ≥ 10%.
    pub improved_10pct: f64,
    /// Fraction of groups improved by ≥ 20%.
    pub improved_20pct: f64,
}

/// Computes one Table I row from swept records.
pub fn improvement_stats(records: &[GroupRecord], versus: Scheme) -> Option<ImprovementStats> {
    let improvements: Vec<f64> = records
        .iter()
        .map(|r| r.evaluation.improvement_of_optimal_over(versus))
        .collect();
    Some(ImprovementStats {
        versus,
        summary: Summary::from_samples(&improvements)?,
        improved_10pct: fraction_at_least(&improvements, 10.0),
        improved_20pct: fraction_at_least(&improvements, 20.0),
    })
}

/// Like [`improvement_stats`] but over the sign-robust
/// [`GroupEvaluation::gap_of_optimal_over`] metric — safe for
/// objectives whose group costs can be negative (utility). This is the
/// tournament's per-objective comparison row.
pub fn gap_stats(records: &[GroupRecord], versus: Scheme) -> Option<ImprovementStats> {
    let gaps: Vec<f64> = records
        .iter()
        .map(|r| r.evaluation.gap_of_optimal_over(versus))
        .collect();
    Some(ImprovementStats {
        versus,
        summary: Summary::from_samples(&gaps)?,
        improved_10pct: fraction_at_least(&gaps, 10.0),
        improved_20pct: fraction_at_least(&gaps, 20.0),
    })
}

/// All five Table I rows (every scheme except Optimal itself).
pub fn table1(records: &[GroupRecord]) -> Vec<ImprovementStats> {
    [
        Scheme::Equal,
        Scheme::EqualBaseline,
        Scheme::Natural,
        Scheme::NaturalBaseline,
        Scheme::Sttw,
    ]
    .into_iter()
    .filter_map(|s| improvement_stats(records, s))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    fn tiny_specs() -> Vec<ProgramSpec> {
        let mk = |name: &'static str, ws: u64, rate: f64| ProgramSpec {
            name,
            workload: WorkloadSpec::SequentialLoop { working_set: ws },
            access_rate: rate,
            trace_len: 20_000,
            seed: ws,
        };
        vec![
            mk("p0", 20, 1.0),
            mk("p1", 40, 1.5),
            mk("p2", 70, 0.8),
            mk("p3", 110, 1.2),
            mk("p4", 25, 1.0),
        ]
    }

    #[test]
    fn subsets_enumerate_binomials() {
        assert_eq!(all_k_subsets(5, 2).len(), 10);
        assert_eq!(all_k_subsets(16, 4).len(), 1820);
        assert_eq!(all_k_subsets(4, 4), vec![vec![0, 1, 2, 3]]);
        assert_eq!(all_k_subsets(3, 5), Vec::<Vec<usize>>::new());
        // Lexicographic and strictly increasing inside each subset.
        let subs = all_k_subsets(5, 3);
        assert_eq!(subs[0], vec![0, 1, 2]);
        assert_eq!(subs.last().unwrap(), &vec![2, 3, 4]);
        for s in &subs {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn study_builds_profiles() {
        let study = Study::build(&tiny_specs(), CacheConfig::new(64, 2));
        assert_eq!(study.len(), 5);
        assert_eq!(study.index_of("p2"), Some(2));
        assert_eq!(study.index_of("nope"), None);
        for p in &study.profiles {
            assert_eq!(p.mrc.max_blocks(), 128);
        }
    }

    #[test]
    fn sweep_covers_all_groups_and_is_deterministic() {
        let study = Study::build(&tiny_specs(), CacheConfig::new(32, 2));
        let records = sweep_groups(&study, 3);
        assert_eq!(records.len(), 10);
        let again = sweep_groups(&study, 3);
        for (a, b) in records.iter().zip(&again) {
            assert_eq!(a.indices, b.indices);
            for s in Scheme::ALL {
                assert_eq!(
                    a.evaluation.get(s).group_miss_ratio,
                    b.evaluation.get(s).group_miss_ratio
                );
            }
        }
    }

    #[test]
    fn table1_rows_are_nonnegative_on_average() {
        let study = Study::build(&tiny_specs(), CacheConfig::new(32, 2));
        let records = sweep_groups(&study, 3);
        let rows = table1(&records);
        assert_eq!(rows.len(), 5);
        for row in rows {
            // Optimal is optimal: improvements can be 0 but the *min*
            // must not be negative beyond numerical noise.
            assert!(
                row.summary.min > -1e-6,
                "{}: min improvement {}",
                row.versus.name(),
                row.summary.min
            );
            assert!(row.improved_10pct >= row.improved_20pct);
        }
    }
}
