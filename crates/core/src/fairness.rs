//! Fairness analysis (Section VII-B, "Unfairness of Optimization").
//!
//! The paper defines fairness by *sharing incentive*: a program is a
//! **gainer** in a co-run group if sharing (Natural) gives it a lower
//! miss ratio than the Equal partition, a **loser** otherwise. Optimal
//! maximizes the group at will, so it can be unfair — it "makes a
//! program worse as often as it makes it better" relative to either
//! baseline. This module extracts those per-member comparisons from a
//! [`GroupEvaluation`] and aggregates them across groups.

use crate::schemes::{GroupEvaluation, Scheme};

/// Numerical slack for "worse than" comparisons of miss ratios.
const EPS: f64 = 1e-9;

/// Per-member fairness classification within one group.
#[derive(Clone, Debug)]
pub struct FairnessReport {
    /// `true` where the member gains from sharing
    /// (Natural < Equal miss ratio).
    pub gainer_from_sharing: Vec<bool>,
    /// `true` where Optimal makes the member worse than Equal.
    pub optimal_worse_than_equal: Vec<bool>,
    /// `true` where Optimal makes the member worse than Natural.
    pub optimal_worse_than_natural: Vec<bool>,
}

impl FairnessReport {
    /// Builds the report for one evaluated group.
    pub fn from_evaluation(eval: &GroupEvaluation) -> Self {
        let equal = &eval.get(Scheme::Equal).member_miss_ratios;
        let natural = &eval.get(Scheme::Natural).member_miss_ratios;
        let optimal = &eval.get(Scheme::Optimal).member_miss_ratios;
        FairnessReport {
            gainer_from_sharing: natural
                .iter()
                .zip(equal)
                .map(|(n, e)| *n < e - EPS)
                .collect(),
            optimal_worse_than_equal: optimal
                .iter()
                .zip(equal)
                .map(|(o, e)| *o > e + EPS)
                .collect(),
            optimal_worse_than_natural: optimal
                .iter()
                .zip(natural)
                .map(|(o, n)| *o > n + EPS)
                .collect(),
        }
    }

    /// Number of members Optimal treats unfairly vs the Equal baseline.
    pub fn unfair_vs_equal(&self) -> usize {
        self.optimal_worse_than_equal.iter().filter(|&&b| b).count()
    }

    /// Number of members Optimal treats unfairly vs the Natural baseline.
    pub fn unfair_vs_natural(&self) -> usize {
        self.optimal_worse_than_natural
            .iter()
            .filter(|&&b| b)
            .count()
    }
}

/// Cross-group aggregate for one program: in how many of its co-run
/// groups it gains from sharing / is hurt by Optimal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgramFairnessTally {
    /// Groups where the program appears.
    pub groups: usize,
    /// Groups where it gains from sharing (Natural < Equal).
    pub gains_from_sharing: usize,
    /// Groups where Optimal makes it worse than Equal.
    pub hurt_by_optimal_vs_equal: usize,
    /// Groups where Optimal makes it worse than Natural.
    pub hurt_by_optimal_vs_natural: usize,
}

impl ProgramFairnessTally {
    /// Folds one group's report entry for this program into the tally.
    pub fn add(&mut self, report: &FairnessReport, member_index: usize) {
        self.groups += 1;
        self.gains_from_sharing += usize::from(report.gainer_from_sharing[member_index]);
        self.hurt_by_optimal_vs_equal += usize::from(report.optimal_worse_than_equal[member_index]);
        self.hurt_by_optimal_vs_natural +=
            usize::from(report.optimal_worse_than_natural[member_index]);
    }

    /// Fraction of groups where the program gains from sharing.
    pub fn sharing_gain_rate(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.gains_from_sharing as f64 / self.groups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::schemes::evaluate_group;
    use cps_hotl::SoloProfile;
    use cps_trace::WorkloadSpec;

    fn profile(name: &str, ws: u64, rate: f64) -> SoloProfile {
        let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(40_000, ws);
        SoloProfile::from_trace(name, &t.blocks, rate, 128)
    }

    #[test]
    fn streaming_peer_makes_small_program_lose() {
        // 100-block loop + 30-block loop in 128 blocks. Natural favors
        // the big loop (it touches more per window), so the small one's
        // natural share shrinks below equal (64): whether it loses
        // depends on crossing its 30-block cliff — with a 100-block
        // thrasher present the natural window is short and the small
        // loop keeps its 30 blocks. Just assert consistency of the
        // classification.
        let a = profile("big", 100, 1.0);
        let b = profile("small", 30, 1.0);
        let refs = vec![&a, &b];
        let cfg = CacheConfig::new(128, 1);
        let eval = evaluate_group(&refs, &cfg);
        let rep = FairnessReport::from_evaluation(&eval);
        let equal = &eval.get(Scheme::Equal).member_miss_ratios;
        let natural = &eval.get(Scheme::Natural).member_miss_ratios;
        for i in 0..2 {
            assert_eq!(
                rep.gainer_from_sharing[i],
                natural[i] < equal[i] - 1e-9,
                "member {i}"
            );
        }
    }

    #[test]
    fn unfair_counts_match_flags() {
        let a = profile("x", 90, 1.2);
        let b = profile("y", 50, 0.8);
        let c = profile("z", 20, 1.0);
        let refs = vec![&a, &b, &c];
        let cfg = CacheConfig::new(64, 2);
        let eval = evaluate_group(&refs, &cfg);
        let rep = FairnessReport::from_evaluation(&eval);
        assert_eq!(
            rep.unfair_vs_equal(),
            rep.optimal_worse_than_equal.iter().filter(|&&x| x).count()
        );
        assert_eq!(
            rep.unfair_vs_natural(),
            rep.optimal_worse_than_natural
                .iter()
                .filter(|&&x| x)
                .count()
        );
    }

    #[test]
    fn tally_accumulates() {
        let rep = FairnessReport {
            gainer_from_sharing: vec![true, false],
            optimal_worse_than_equal: vec![false, true],
            optimal_worse_than_natural: vec![true, true],
        };
        let mut t = ProgramFairnessTally::default();
        t.add(&rep, 0);
        t.add(&rep, 1);
        assert_eq!(t.groups, 2);
        assert_eq!(t.gains_from_sharing, 1);
        assert_eq!(t.hurt_by_optimal_vs_equal, 1);
        assert_eq!(t.hurt_by_optimal_vs_natural, 2);
        assert!((t.sharing_gain_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_rate_is_zero() {
        assert_eq!(ProgramFairnessTally::default().sharing_gain_rate(), 0.0);
    }
}
