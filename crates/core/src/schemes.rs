//! The six cache-allocation schemes of Section VII-A.
//!
//! For every co-run group the paper models:
//!
//! | Scheme | Meaning |
//! |---|---|
//! | **Equal** | each program gets `C/P` (the "socialist" allocation) |
//! | **Natural** | free-for-all sharing, modeled by the natural partition (the "capitalist" allocation) |
//! | **Equal baseline** | group-optimal subject to nobody missing more than under Equal |
//! | **Natural baseline** | group-optimal subject to nobody missing more than under Natural |
//! | **Optimal** | unconstrained group-optimal (the DP) |
//! | **STTW** | the classic convexity-assuming solution |
//!
//! Group miss ratio is always the access-share-weighted mean of member
//! miss ratios (`Σ f_i · mr_i`, Eq. 12/14), so all six are directly
//! comparable.

use crate::config::CacheConfig;
use crate::dp::optimal_partition;
use crate::natural::natural_partition_units;
use crate::objective::{CostModel, Objective};
use crate::sttw::sttw_partition;
use cps_hotl::{CoRunModel, MissRatioCurve, SoloProfile};

/// The six evaluated schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Equal partitioning: `C/P` each.
    Equal,
    /// Free-for-all sharing (≡ the natural partition under NPA).
    Natural,
    /// Baseline optimization against the Equal baseline (Section VI).
    EqualBaseline,
    /// Baseline optimization against the Natural baseline (Section VI).
    NaturalBaseline,
    /// The unconstrained optimal partition (Section V-B).
    Optimal,
    /// Stone–Thiebaut–Turek–Wolf greedy (Section VII-B).
    Sttw,
}

impl Scheme {
    /// All six schemes, in the paper's reporting order.
    pub const ALL: [Scheme; 6] = [
        Scheme::Equal,
        Scheme::Natural,
        Scheme::EqualBaseline,
        Scheme::NaturalBaseline,
        Scheme::Optimal,
        Scheme::Sttw,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Equal => "Equal",
            Scheme::Natural => "Natural",
            Scheme::EqualBaseline => "Equal baseline",
            Scheme::NaturalBaseline => "Natural baseline",
            Scheme::Optimal => "Optimal",
            Scheme::Sttw => "STTW",
        }
    }
}

/// One scheme's outcome for one group.
#[derive(Clone, Debug)]
pub struct SchemeResult {
    /// Which scheme.
    pub scheme: Scheme,
    /// The partition in units (for Natural: the rounded natural
    /// partition the sharing is equivalent to).
    pub allocation: Vec<usize>,
    /// Each member's predicted miss ratio under the scheme.
    pub member_miss_ratios: Vec<f64>,
    /// Group cost of the allocation under the evaluated objective. Under
    /// the default [`Objective::MissRatioSum`] this is the
    /// access-share-weighted group miss ratio (the field's historical
    /// meaning, kept for compatibility).
    pub group_miss_ratio: f64,
}

/// All six schemes evaluated on one co-run group.
#[derive(Clone, Debug)]
pub struct GroupEvaluation {
    /// Member program names.
    pub names: Vec<String>,
    /// Normalized access shares `f_i`.
    pub shares: Vec<f64>,
    /// Results in [`Scheme::ALL`] order.
    pub results: Vec<SchemeResult>,
}

impl GroupEvaluation {
    /// The result for one scheme.
    pub fn get(&self, scheme: Scheme) -> &SchemeResult {
        self.results
            .iter()
            .find(|r| r.scheme == scheme)
            .expect("all schemes evaluated")
    }

    /// Relative improvement (in percent) of Optimal's group miss ratio
    /// over `scheme`'s: `(mr_s / mr_opt − 1) · 100`.
    ///
    /// Two guards keep the ratio meaningful at the extremes: when both
    /// miss ratios are numerically zero the improvement is 0, and the
    /// ratio is capped at 100× (9900%) — beyond that Optimal has
    /// essentially eliminated the misses and the quotient measures only
    /// floating-point noise. (The paper's largest reported improvement
    /// is 4746%, comfortably inside the cap.)
    pub fn improvement_of_optimal_over(&self, scheme: Scheme) -> f64 {
        let opt = self.get(Scheme::Optimal).group_miss_ratio;
        let other = self.get(scheme).group_miss_ratio;
        if other <= 1e-12 && opt <= 1e-12 {
            return 0.0;
        }
        let ratio = (other / opt.max(1e-12)).min(100.0);
        (ratio - 1.0) * 100.0
    }

    /// Relative gap (in percent) between `scheme`'s group cost and
    /// Optimal's, robust to objectives whose costs can be negative
    /// (utility): `(cost_s − cost_opt) / max(|cost_opt|, 1e-12) · 100`,
    /// capped at 9900%. Coincides with
    /// [`GroupEvaluation::improvement_of_optimal_over`] up to rounding
    /// when both costs are positive.
    pub fn gap_of_optimal_over(&self, scheme: Scheme) -> f64 {
        let opt = self.get(Scheme::Optimal).group_miss_ratio;
        let other = self.get(scheme).group_miss_ratio;
        if (other - opt).abs() <= 1e-12 {
            return 0.0;
        }
        (((other - opt) / opt.abs().max(1e-12)) * 100.0).min(9900.0)
    }
}

fn members_at(members: &[&SoloProfile], config: &CacheConfig, allocation: &[usize]) -> Vec<f64> {
    members
        .iter()
        .zip(allocation)
        .map(|(p, &u)| p.mrc.at(config.to_blocks(u)))
        .collect()
}

/// Evaluates all six schemes for one co-run group under the default
/// miss-ratio-sum objective.
///
/// # Panics
/// Panics if `members` is empty or any member's MRC was sampled short of
/// the cache size.
pub fn evaluate_group(members: &[&SoloProfile], config: &CacheConfig) -> GroupEvaluation {
    evaluate_group_with(members, config, &Objective::MissRatioSum)
}

/// Evaluates all six schemes for one co-run group under `objective`.
///
/// Every scheme's allocation is costed by
/// [`CostModel::group_cost`], so the six results are directly comparable
/// under the chosen objective; `member_miss_ratios` always reports raw
/// miss ratios regardless of objective. Under
/// [`Objective::MissRatioSum`] this reproduces [`evaluate_group`]'s
/// historical output bit-for-bit.
///
/// # Panics
/// Panics if `members` is empty, any member's MRC was sampled short of
/// the cache size, or the objective does not validate for the group size
/// (see [`Objective::validate_for`]).
pub fn evaluate_group_with(
    members: &[&SoloProfile],
    config: &CacheConfig,
    objective: &Objective,
) -> GroupEvaluation {
    assert!(!members.is_empty(), "group needs members");
    for p in members {
        assert!(
            p.mrc.max_blocks() >= config.blocks(),
            "{}: MRC sampled to {} blocks but cache is {}",
            p.name,
            p.mrc.max_blocks(),
            config.blocks()
        );
    }
    if let Err(e) = objective.validate_for(members.len()) {
        panic!("{e}");
    }
    let model = CoRunModel::new(members.to_vec());
    let shares = model.shares().to_vec();
    let p = members.len();
    let mrcs: Vec<&MissRatioCurve> = members.iter().map(|m| &m.mrc).collect();
    let costs = objective.cost_curves(&mrcs, config, &shares, None);

    // -- Equal ------------------------------------------------------------
    let equal_alloc = config.equal_split(p);
    let equal_mrs = members_at(members, config, &equal_alloc);
    let equal = SchemeResult {
        scheme: Scheme::Equal,
        group_miss_ratio: objective.group_cost(&costs, &equal_alloc),
        allocation: equal_alloc.clone(),
        member_miss_ratios: equal_mrs.clone(),
    };

    // -- Natural (free-for-all sharing) ------------------------------------
    let natural_alloc = natural_partition_units(&model, config);
    // Under NPA, sharing performs like the natural partition; we evaluate
    // the members at the *rounded* natural partition so that the Natural
    // baseline below is attainable by a legal unit allocation.
    let natural_mrs = members_at(members, config, &natural_alloc);
    let natural = SchemeResult {
        scheme: Scheme::Natural,
        group_miss_ratio: objective.group_cost(&costs, &natural_alloc),
        allocation: natural_alloc.clone(),
        member_miss_ratios: natural_mrs.clone(),
    };

    // -- Optimal ------------------------------------------------------------
    let opt = optimal_partition(&costs, config.units, objective)
        .expect("unconstrained DP is always feasible");
    let optimal = SchemeResult {
        scheme: Scheme::Optimal,
        member_miss_ratios: members_at(members, config, &opt.allocation),
        group_miss_ratio: opt.cost,
        allocation: opt.allocation,
    };

    // -- STTW ----------------------------------------------------------------
    let st = sttw_partition(&costs, config.units);
    let sttw = SchemeResult {
        scheme: Scheme::Sttw,
        member_miss_ratios: members_at(members, config, &st.allocation),
        group_miss_ratio: objective.group_cost(&costs, &st.allocation),
        allocation: st.allocation,
    };

    // -- Baseline optimizations (Section VI) ----------------------------------
    let baseline_result = |scheme: Scheme, caps: &[f64], fallback: &SchemeResult| {
        let capped = objective.cost_curves(&mrcs, config, &shares, Some(caps));
        match optimal_partition(&capped, config.units, objective) {
            Some(r) => SchemeResult {
                scheme,
                member_miss_ratios: members_at(members, config, &r.allocation),
                group_miss_ratio: r.cost,
                allocation: r.allocation,
            },
            // The baseline allocation itself is always feasible; this
            // arm only guards numerical slack pathologies.
            None => SchemeResult {
                scheme,
                ..fallback.clone()
            },
        }
    };
    let equal_baseline = baseline_result(Scheme::EqualBaseline, &equal_mrs, &equal);
    let natural_baseline = baseline_result(Scheme::NaturalBaseline, &natural_mrs, &natural);

    GroupEvaluation {
        names: members.iter().map(|m| m.name.clone()).collect(),
        shares,
        results: vec![
            equal,
            natural,
            equal_baseline,
            natural_baseline,
            optimal,
            sttw,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    fn profile(name: &str, spec: WorkloadSpec, rate: f64, max_blocks: usize) -> SoloProfile {
        let t = spec.generate(40_000, name.len() as u64 * 31 + 7);
        SoloProfile::from_trace(name, &t.blocks, rate, max_blocks)
    }

    fn small_group(max_blocks: usize) -> Vec<SoloProfile> {
        vec![
            profile(
                "loop-big",
                WorkloadSpec::SequentialLoop { working_set: 90 },
                1.0,
                max_blocks,
            ),
            profile(
                "loop-small",
                WorkloadSpec::SequentialLoop { working_set: 30 },
                1.5,
                max_blocks,
            ),
            profile(
                "zipf",
                WorkloadSpec::Zipfian {
                    region: 300,
                    alpha: 0.7,
                },
                0.8,
                max_blocks,
            ),
        ]
    }

    #[test]
    fn all_schemes_produce_valid_partitions() {
        let ps = small_group(128);
        let refs: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(32, 4); // 128 blocks
        let eval = evaluate_group(&refs, &cfg);
        assert_eq!(eval.results.len(), 6);
        for r in &eval.results {
            assert_eq!(
                r.allocation.iter().sum::<usize>(),
                cfg.units,
                "{}: allocation must use the whole cache",
                r.scheme.name()
            );
            assert_eq!(r.member_miss_ratios.len(), 3);
            assert!(
                (0.0..=1.0).contains(&r.group_miss_ratio),
                "{}: group mr {}",
                r.scheme.name(),
                r.group_miss_ratio
            );
        }
    }

    #[test]
    fn optimal_is_best_of_all_partitions() {
        let ps = small_group(128);
        let refs: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(32, 4);
        let eval = evaluate_group(&refs, &cfg);
        let opt = eval.get(Scheme::Optimal).group_miss_ratio;
        for s in Scheme::ALL {
            assert!(
                opt <= eval.get(s).group_miss_ratio + 1e-9,
                "Optimal must not lose to {}",
                s.name()
            );
        }
    }

    #[test]
    fn baselines_never_hurt_members() {
        let ps = small_group(128);
        let refs: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(32, 4);
        let eval = evaluate_group(&refs, &cfg);
        for (constrained, base) in [
            (Scheme::EqualBaseline, Scheme::Equal),
            (Scheme::NaturalBaseline, Scheme::Natural),
        ] {
            let con = eval.get(constrained);
            let b = eval.get(base);
            for i in 0..3 {
                assert!(
                    con.member_miss_ratios[i] <= b.member_miss_ratios[i] + 1e-6,
                    "{}: member {i} {} worse than baseline {}",
                    constrained.name(),
                    con.member_miss_ratios[i],
                    b.member_miss_ratios[i]
                );
            }
            assert!(
                con.group_miss_ratio <= b.group_miss_ratio + 1e-9,
                "{} group mr must not exceed {}",
                constrained.name(),
                base.name()
            );
        }
    }

    #[test]
    fn scheme_ordering_chain() {
        // Optimal ≤ NaturalBaseline ≤ Natural and
        // Optimal ≤ EqualBaseline ≤ Equal, for any group.
        let ps = small_group(128);
        let refs: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(32, 4);
        let e = evaluate_group(&refs, &cfg);
        let mr = |s| e.get(s).group_miss_ratio;
        assert!(mr(Scheme::Optimal) <= mr(Scheme::NaturalBaseline) + 1e-9);
        assert!(mr(Scheme::NaturalBaseline) <= mr(Scheme::Natural) + 1e-9);
        assert!(mr(Scheme::Optimal) <= mr(Scheme::EqualBaseline) + 1e-9);
        assert!(mr(Scheme::EqualBaseline) <= mr(Scheme::Equal) + 1e-9);
    }

    #[test]
    fn improvement_metric_guards_zero() {
        let ps = [
            profile(
                "tiny-a",
                WorkloadSpec::SequentialLoop { working_set: 4 },
                1.0,
                64,
            ),
            profile(
                "tiny-b",
                WorkloadSpec::SequentialLoop { working_set: 4 },
                1.0,
                64,
            ),
        ];
        let refs: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(64, 1);
        let eval = evaluate_group(&refs, &cfg);
        // Both fit trivially: everything ≈ 0, improvement defined as 0.
        assert_eq!(eval.improvement_of_optimal_over(Scheme::Equal), 0.0);
    }

    #[test]
    fn default_objective_reproduces_evaluate_group_bitwise() {
        let ps = small_group(128);
        let refs: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(32, 4);
        let legacy = evaluate_group(&refs, &cfg);
        let with = evaluate_group_with(&refs, &cfg, &Objective::MissRatioSum);
        for (a, b) in legacy.results.iter().zip(&with.results) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.allocation, b.allocation);
            assert_eq!(a.member_miss_ratios, b.member_miss_ratios);
            assert_eq!(a.group_miss_ratio.to_bits(), b.group_miss_ratio.to_bits());
        }
    }

    #[test]
    fn every_objective_keeps_optimal_ahead() {
        let ps = small_group(128);
        let refs: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(32, 4);
        for objective in [
            Objective::MissRatioSum,
            Objective::MaxMissRatio,
            Objective::Utility { curvature: 0.5 },
            Objective::ValueWeighted {
                weights: vec![2.0, 1.0, 0.5],
            },
            Objective::MaxSlowdown,
        ] {
            let eval = evaluate_group_with(&refs, &cfg, &objective);
            let opt = eval.get(Scheme::Optimal).group_miss_ratio;
            for s in Scheme::ALL {
                let r = eval.get(s);
                assert_eq!(r.allocation.iter().sum::<usize>(), cfg.units);
                assert!(
                    opt <= r.group_miss_ratio + 1e-9,
                    "{objective}: Optimal must not lose to {}",
                    s.name()
                );
            }
            assert!(eval.gap_of_optimal_over(Scheme::Natural) >= -1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "value-weighted names 2 weights")]
    fn mismatched_value_weights_panic() {
        let ps = small_group(64);
        let refs: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(64, 1);
        let _ = evaluate_group_with(
            &refs,
            &cfg,
            &Objective::ValueWeighted {
                weights: vec![1.0, 2.0],
            },
        );
    }

    #[test]
    fn names_and_shares_recorded() {
        let ps = small_group(64);
        let refs: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(64, 1);
        let eval = evaluate_group(&refs, &cfg);
        assert_eq!(eval.names, vec!["loop-big", "loop-small", "zipf"]);
        assert!((eval.shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
