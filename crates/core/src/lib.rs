//! Optimal cache partition-sharing (Brock, Ye, Ding, Li, Wang, Luo —
//! ICPP 2015).
//!
//! This crate is the paper's contribution, built on the substrates in
//! `cps-hotl` (locality theory), `cps-trace` (workloads), `cps-cachesim`
//! (oracles), and `cps-combin` (search-space arithmetic):
//!
//! * [`config`] — cache geometry (partition units × blocks per unit).
//! * [`cost`] — per-program allocation cost curves, with optional
//!   baseline caps (the fairness constraint of Section VI).
//! * [`dp`] — the **optimal partitioning dynamic program** (Section V-B,
//!   Eq. 15/16): `O(P·C²)` time, `O(P·C)` space, no convexity
//!   assumption, pluggable accumulation (throughput or max-min).
//! * [`objective`] — first-class, serializable objectives over the DP:
//!   miss-ratio sum (default), max-min QoS, concave utility of hit
//!   rate, value-weighted misses, and max-slowdown fairness.
//! * [`sttw`] — the classic Stone–Thiebaut–Turek–Wolf equal-derivative
//!   solution (Eq. 12–14), implemented as marginal-gain greedy over the
//!   lower convex envelope — optimal exactly when the true curves are
//!   convex.
//! * [`natural`] — integer-unit Natural Cache Partitions.
//! * [`schemes`] — the six evaluation schemes of Section VII-A (Equal,
//!   Natural, Equal baseline, Natural baseline, Optimal, STTW).
//! * [`fairness`] — gainer/loser classification and unfairness counts
//!   (Section VII-B).
//! * [`sharing`] — HOTL evaluation of arbitrary partition-sharing
//!   configurations and exhaustive search over them (the reduction
//!   theorem, Section V-A, checked numerically).
//! * [`sweep`] — rayon-parallel evaluation of every k-program co-run
//!   group of a study set (the paper's 1820-group evaluation) and the
//!   Table I aggregation.
//! * [`multicache`] — sharing across multiple caches (Section II,
//!   sub-problem 1): exhaustive Stirling-space grouping search plus a
//!   greedy heuristic.
//! * [`perf`] — miss ratio → CPI/time estimation (Section VIII's
//!   locality-performance correlation) and multiprogramming metrics.
//! * [`stall`] — the introduction's stall-scheduling application:
//!   serialize thrashing co-runners when the model predicts everybody
//!   finishes sooner.
//! * [`phased`] — phase-aware time-varying partitioning (the Figure 1
//!   regime where static partitions provably cannot match sharing):
//!   per-segment profiling, per-segment DP with hysteresis, and
//!   transient-faithful repartitioning simulation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cost;
pub mod dp;
pub mod elastic;
pub mod fairness;
pub mod multicache;
pub mod natural;
pub mod objective;
pub mod perf;
pub mod phased;
pub mod schemes;
pub mod sharing;
pub mod stall;
pub mod sttw;
pub mod sweep;

pub use config::CacheConfig;
pub use cost::{access_shares, build_cost_curves, equal_baseline_caps, CostCurve};
pub use dp::{optimal_partition, Combine, DpFrontier, DpSolver, PartitionResult};
pub use natural::{natural_baseline_caps, natural_partition_units};
pub use objective::{CostModel, Objective, DEFAULT_UTILITY_CURVATURE};
pub use schemes::{evaluate_group, evaluate_group_with, GroupEvaluation, Scheme, SchemeResult};
pub use sttw::sttw_partition;
pub use sweep::{
    all_k_subsets, gap_stats, improvement_stats, sweep_groups, sweep_groups_with, table1,
    GroupRecord, ImprovementStats, Study,
};
