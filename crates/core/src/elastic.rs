//! Elastic cache utility — the θ-parameterized fairness guarantee
//! (the paper's citation \[18\], Ye et al.'s RECU).
//!
//! Section VI's two baselines are all-or-nothing: a program is entitled
//! to exactly its Equal-partition or Natural-partition performance. The
//! elastic generalization scales the entitlement: each program is
//! guaranteed the miss ratio it would have with a `θ`-fraction of its
//! equal share (`θ·C/P` units), for `θ ∈ [0, 1]`:
//!
//! * `θ = 1` is the Equal baseline (full guarantee, least headroom);
//! * `θ = 0` is unconstrained Optimal (no guarantee, full headroom);
//! * intermediate θ traces the **fairness–throughput Pareto frontier**,
//!   which the `elastic` experiment sweeps.

use crate::config::CacheConfig;
use crate::cost::CostCurve;
use crate::dp::{optimal_partition, PartitionResult};
use crate::objective::Objective;
use cps_hotl::SoloProfile;

/// One point of the elastic trade-off.
#[derive(Clone, Debug)]
pub struct ElasticResult {
    /// The guarantee strength used.
    pub theta: f64,
    /// The optimal allocation under the guarantee.
    pub result: PartitionResult,
    /// Per-program miss ratios at that allocation.
    pub member_miss_ratios: Vec<f64>,
    /// The per-program miss-ratio caps that were enforced.
    pub caps: Vec<f64>,
}

/// The miss-ratio caps for guarantee strength `theta`: each program's
/// solo miss ratio at `θ · C/P` units (rounded down, minimum 0).
pub fn elastic_caps(members: &[&SoloProfile], config: &CacheConfig, theta: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
    let equal = config.equal_split(members.len());
    members
        .iter()
        .zip(&equal)
        .map(|(m, &u)| {
            let scaled_units = (theta * u as f64).floor() as usize;
            m.mrc.at(config.to_blocks(scaled_units))
        })
        .collect()
}

/// Group-optimal partitioning subject to the θ-guarantee. Always
/// feasible: the scaled-equal allocation itself satisfies every cap and
/// fits in the cache.
pub fn elastic_partition(
    members: &[&SoloProfile],
    config: &CacheConfig,
    theta: f64,
) -> ElasticResult {
    assert!(!members.is_empty(), "group needs members");
    let caps = elastic_caps(members, config, theta);
    let total_rate: f64 = members.iter().map(|m| m.access_rate).sum();
    let costs: Vec<CostCurve> = members
        .iter()
        .zip(&caps)
        .map(|(m, &cap)| {
            CostCurve::with_baseline_cap(&m.mrc, config, m.access_rate / total_rate, cap)
        })
        .collect();
    let result = optimal_partition(&costs, config.units, &Objective::MissRatioSum)
        .expect("theta-scaled equal allocation is always feasible");
    let member_miss_ratios = members
        .iter()
        .zip(&result.allocation)
        .map(|(m, &u)| m.mrc.at(config.to_blocks(u)))
        .collect();
    ElasticResult {
        theta,
        result,
        member_miss_ratios,
        caps,
    }
}

/// Sweeps θ over `steps + 1` evenly spaced points in `[0, 1]` and
/// returns the trade-off curve (θ ascending).
pub fn elastic_sweep(
    members: &[&SoloProfile],
    config: &CacheConfig,
    steps: usize,
) -> Vec<ElasticResult> {
    assert!(steps >= 1, "need at least two sweep points");
    (0..=steps)
        .map(|i| elastic_partition(members, config, i as f64 / steps as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    fn profile(name: &str, ws: u64, rate: f64, blocks: usize) -> SoloProfile {
        let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(30_000, ws);
        SoloProfile::from_trace(name, &t.blocks, rate, blocks)
    }

    fn group(blocks: usize) -> Vec<SoloProfile> {
        vec![
            profile("hungry", 150, 1.2, blocks),
            profile("mid", 70, 1.0, blocks),
            profile("small", 30, 0.9, blocks),
        ]
    }

    #[test]
    fn theta_zero_is_unconstrained_optimal() {
        let blocks = 240;
        let ps = group(blocks);
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(blocks, 1);
        let elastic = elastic_partition(&members, &cfg, 0.0);
        let total_rate: f64 = members.iter().map(|m| m.access_rate).sum();
        let costs: Vec<CostCurve> = members
            .iter()
            .map(|m| CostCurve::from_miss_ratio(&m.mrc, &cfg, m.access_rate / total_rate))
            .collect();
        let unconstrained = optimal_partition(&costs, cfg.units, &Objective::MissRatioSum).unwrap();
        assert!((elastic.result.cost - unconstrained.cost).abs() < 1e-12);
    }

    #[test]
    fn theta_one_matches_equal_baseline_caps() {
        let blocks = 240;
        let ps = group(blocks);
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(blocks, 1);
        let caps = elastic_caps(&members, &cfg, 1.0);
        let equal = cfg.equal_split(3);
        for ((m, &u), &cap) in members.iter().zip(&equal).zip(&caps) {
            assert_eq!(cap, m.mrc.at(cfg.to_blocks(u)));
        }
        // And the constrained optimum respects every cap.
        let e = elastic_partition(&members, &cfg, 1.0);
        for (mr, cap) in e.member_miss_ratios.iter().zip(&e.caps) {
            assert!(mr <= &(cap + 1e-6), "member {mr} above cap {cap}");
        }
    }

    #[test]
    fn group_cost_is_monotone_in_theta() {
        // Tighter guarantees can only hurt the group objective.
        let blocks = 240;
        let ps = group(blocks);
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(blocks, 1);
        let sweep = elastic_sweep(&members, &cfg, 10);
        assert_eq!(sweep.len(), 11);
        for pair in sweep.windows(2) {
            assert!(
                pair[0].result.cost <= pair[1].result.cost + 1e-9,
                "θ={} cost {} > θ={} cost {}",
                pair[0].theta,
                pair[0].result.cost,
                pair[1].theta,
                pair[1].result.cost
            );
        }
    }

    #[test]
    fn caps_loosen_as_theta_shrinks() {
        let blocks = 240;
        let ps = group(blocks);
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let cfg = CacheConfig::new(blocks, 1);
        let tight = elastic_caps(&members, &cfg, 1.0);
        let loose = elastic_caps(&members, &cfg, 0.3);
        for (t, l) in tight.iter().zip(&loose) {
            assert!(l >= t, "smaller theta must not tighten caps");
        }
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn theta_out_of_range_panics() {
        let blocks = 120;
        let ps = group(blocks);
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let _ = elastic_caps(&members, &CacheConfig::new(blocks, 1), 1.5);
    }
}
