//! Per-program allocation cost curves.
//!
//! The dynamic program minimizes an accumulated cost `Σ_i cost_i(c_i)`
//! (or `max_i`, for QoS). For throughput the natural cost is the
//! program's contribution to the group miss ratio: its access share
//! times its miss ratio at the allocation (Eq. 12/14's `f_i · mr_i(c_i)`).
//! Section VI's *baseline optimization* adds a per-program fairness cap:
//! any allocation at which the program would miss more than its baseline
//! is **forbidden** (`+∞` cost), and the DP simply never picks it.

use crate::config::CacheConfig;
use crate::objective::Objective;
use cps_hotl::MissRatioCurve;

/// Cost forbidden by a baseline constraint.
pub const FORBIDDEN: f64 = f64::INFINITY;

/// Normalizes non-negative activity weights (access counts or rates)
/// into shares `f_i` summing to 1, falling back to an equal split when
/// the total is zero — the DP's throughput weights.
///
/// # Panics
/// Panics if `weights` is empty or contains a negative/non-finite value.
pub fn access_shares(weights: &[f64]) -> Vec<f64> {
    assert!(!weights.is_empty(), "need at least one program");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        vec![1.0 / weights.len() as f64; weights.len()]
    } else {
        weights.iter().map(|w| w / total).collect()
    }
}

/// Per-program baseline caps at a fixed allocation:
/// `mrcs[i].at(to_blocks(alloc[i]))` — the miss ratio each program
/// achieves under `alloc`, which the baseline-constrained DP must not
/// let it exceed.
///
/// # Panics
/// Panics if `mrcs` and `alloc` lengths differ.
pub fn caps_at_allocation(
    mrcs: &[&MissRatioCurve],
    config: &CacheConfig,
    alloc: &[usize],
) -> Vec<f64> {
    assert_eq!(mrcs.len(), alloc.len(), "one allocation per program");
    mrcs.iter()
        .zip(alloc)
        .map(|(m, &u)| m.at(config.to_blocks(u)))
        .collect()
}

/// Caps for the *equal-partition* baseline of Section VI: each program
/// must do no worse than it would in a `1/P` share of the cache.
pub fn equal_baseline_caps(mrcs: &[&MissRatioCurve], config: &CacheConfig) -> Vec<f64> {
    caps_at_allocation(mrcs, config, &config.equal_split(mrcs.len()))
}

/// Builds the DP's per-program cost-curve vector in one call.
///
/// Per-program cost construction follows the objective — see
/// [`Objective::cost_curves`], to which this delegates. Under the
/// default [`Objective::MissRatioSum`] each program is weighted by its
/// access share (summed costs equal the group miss ratio); under
/// [`Objective::MaxMissRatio`] every program weighs 1 (max-min on raw
/// miss ratios). With `caps`, allocations violating a program's
/// baseline become [`FORBIDDEN`] under every objective.
///
/// # Panics
/// Panics if `mrcs`, `shares`, and any `caps` differ in length.
pub fn build_cost_curves(
    mrcs: &[&MissRatioCurve],
    config: &CacheConfig,
    shares: &[f64],
    objective: &Objective,
    caps: Option<&[f64]>,
) -> Vec<CostCurve> {
    objective.cost_curves(mrcs, config, shares, caps)
}

/// Cost of giving a program `0..=units` partition units.
#[derive(Clone, Debug, PartialEq)]
pub struct CostCurve {
    costs: Vec<f64>,
}

impl CostCurve {
    /// Wraps raw per-unit costs (`costs[u]` = cost at `u` units).
    ///
    /// # Panics
    /// Panics if empty or if any value is NaN (infinities are allowed —
    /// they encode forbidden allocations).
    pub fn from_raw(costs: Vec<f64>) -> Self {
        assert!(!costs.is_empty(), "cost curve needs at least one entry");
        assert!(costs.iter().all(|c| !c.is_nan()), "costs must not be NaN");
        CostCurve { costs }
    }

    /// Throughput cost: `weight · mr(u · blocks_per_unit)` for
    /// `u ∈ 0..=config.units`. `weight` is the program's access share
    /// `f_i` so that summed costs equal the group miss ratio.
    pub fn from_miss_ratio(mrc: &MissRatioCurve, config: &CacheConfig, weight: f64) -> Self {
        assert!(weight >= 0.0, "weight must be non-negative");
        let costs = (0..=config.units)
            .map(|u| weight * mrc.at(config.to_blocks(u)))
            .collect();
        CostCurve { costs }
    }

    /// Like [`CostCurve::from_miss_ratio`] but with a baseline cap:
    /// allocations where the program's own miss ratio exceeds
    /// `cap_miss_ratio` (plus numerical slack) become [`FORBIDDEN`].
    pub fn with_baseline_cap(
        mrc: &MissRatioCurve,
        config: &CacheConfig,
        weight: f64,
        cap_miss_ratio: f64,
    ) -> Self {
        assert!(weight >= 0.0, "weight must be non-negative");
        let slack = 1e-9 + cap_miss_ratio * 1e-9;
        let costs = (0..=config.units)
            .map(|u| {
                let mr = mrc.at(config.to_blocks(u));
                if mr > cap_miss_ratio + slack {
                    FORBIDDEN
                } else {
                    weight * mr
                }
            })
            .collect();
        CostCurve { costs }
    }

    /// Cost at `u` units (clamped to the last entry).
    #[inline]
    pub fn at(&self, u: usize) -> f64 {
        self.costs[u.min(self.costs.len() - 1)]
    }

    /// Largest representable allocation.
    pub fn max_units(&self) -> usize {
        self.costs.len() - 1
    }

    /// The raw values.
    pub fn raw(&self) -> &[f64] {
        &self.costs
    }

    /// Smallest allocation with finite cost, or `None` if all are
    /// forbidden.
    pub fn min_feasible(&self) -> Option<usize> {
        self.costs.iter().position(|c| c.is_finite())
    }

    /// Replaces the curve with its lower convex envelope (finite part) —
    /// what the convexity-assuming STTW solution effectively optimizes.
    ///
    /// # Panics
    /// Panics if any entry is infinite (STTW has no constraint support,
    /// which is one of the paper's criticisms of it).
    pub fn convex_envelope(&self) -> CostCurve {
        assert!(
            self.costs.iter().all(|c| c.is_finite()),
            "convex envelope undefined with forbidden allocations"
        );
        let curve = cps_dstruct::MonotoneCurve::from_samples(self.costs.clone());
        CostCurve {
            costs: curve.lower_convex_envelope().samples().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_hotl::Footprint;

    fn loop_mrc(ws: u64, len: usize, max_blocks: usize) -> MissRatioCurve {
        let trace: Vec<u64> = (0..len as u64).map(|i| i % ws).collect();
        MissRatioCurve::from_footprint(&Footprint::from_trace(&trace), max_blocks)
    }

    #[test]
    fn throughput_cost_is_weighted_mrc() {
        let mrc = loop_mrc(16, 2000, 32);
        let cfg = CacheConfig::new(16, 2);
        let cost = CostCurve::from_miss_ratio(&mrc, &cfg, 0.25);
        for u in 0..=16 {
            assert!((cost.at(u) - 0.25 * mrc.at(2 * u)).abs() < 1e-12);
        }
        assert_eq!(cost.max_units(), 16);
    }

    #[test]
    fn baseline_cap_forbids_high_miss_allocations() {
        let mrc = loop_mrc(16, 2000, 32);
        let cfg = CacheConfig::new(32, 1);
        let cap = mrc.at(16); // baseline: the working set fits
        let cost = CostCurve::with_baseline_cap(&mrc, &cfg, 1.0, cap);
        // Below the cliff the loop thrashes (mr ≈ 1 > cap) → forbidden.
        assert_eq!(cost.at(4), FORBIDDEN);
        assert!(cost.at(16).is_finite());
        assert_eq!(cost.min_feasible(), Some(16));
    }

    #[test]
    fn permissive_cap_forbids_nothing() {
        let mrc = loop_mrc(8, 500, 16);
        let cfg = CacheConfig::new(16, 1);
        let cost = CostCurve::with_baseline_cap(&mrc, &cfg, 1.0, 1.0);
        assert_eq!(cost.min_feasible(), Some(0));
    }

    #[test]
    fn envelope_is_convex_lower_bound() {
        let cost = CostCurve::from_raw(vec![1.0, 1.0, 0.9, 0.2, 0.2, 0.1]);
        let env = cost.convex_envelope();
        for u in 0..=5 {
            assert!(env.at(u) <= cost.at(u) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "forbidden allocations")]
    fn envelope_rejects_constraints() {
        let cost = CostCurve::from_raw(vec![FORBIDDEN, 0.5, 0.1]);
        let _ = cost.convex_envelope();
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_cost_rejected() {
        let _ = CostCurve::from_raw(vec![0.0, f64::NAN]);
    }

    #[test]
    fn clamping_past_end() {
        let cost = CostCurve::from_raw(vec![0.5, 0.2]);
        assert_eq!(cost.at(10), 0.2);
    }

    #[test]
    fn shares_normalize_and_fall_back_to_equal() {
        let s = access_shares(&[30.0, 10.0]);
        assert!((s[0] - 0.75).abs() < 1e-12);
        assert!((s[1] - 0.25).abs() < 1e-12);
        assert_eq!(access_shares(&[0.0, 0.0, 0.0]), vec![1.0 / 3.0; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one program")]
    fn shares_reject_empty() {
        let _ = access_shares(&[]);
    }

    #[test]
    fn equal_caps_read_curves_at_equal_split() {
        let m1 = loop_mrc(16, 2000, 32);
        let m2 = loop_mrc(8, 2000, 32);
        let cfg = CacheConfig::new(16, 2);
        let caps = equal_baseline_caps(&[&m1, &m2], &cfg);
        // equal_split(2) of 16 units = [8, 8] units = 16 blocks each.
        assert_eq!(caps, vec![m1.at(16), m2.at(16)]);
    }

    #[test]
    fn built_curves_match_hand_built_ones() {
        let m1 = loop_mrc(16, 2000, 64);
        let m2 = loop_mrc(40, 2000, 64);
        let cfg = CacheConfig::new(32, 2);
        let shares = access_shares(&[300.0, 100.0]);

        let sum = build_cost_curves(&[&m1, &m2], &cfg, &shares, &Objective::MissRatioSum, None);
        assert_eq!(sum[0], CostCurve::from_miss_ratio(&m1, &cfg, shares[0]));
        assert_eq!(sum[1], CostCurve::from_miss_ratio(&m2, &cfg, shares[1]));

        // Max-min ignores shares: every program weighs 1.
        let max = build_cost_curves(&[&m1, &m2], &cfg, &shares, &Objective::MaxMissRatio, None);
        assert_eq!(max[0], CostCurve::from_miss_ratio(&m1, &cfg, 1.0));

        let caps = equal_baseline_caps(&[&m1, &m2], &cfg);
        let capped = build_cost_curves(
            &[&m1, &m2],
            &cfg,
            &shares,
            &Objective::MissRatioSum,
            Some(&caps),
        );
        assert_eq!(
            capped[0],
            CostCurve::with_baseline_cap(&m1, &cfg, shares[0], caps[0])
        );
        assert_eq!(
            capped[1],
            CostCurve::with_baseline_cap(&m2, &cfg, shares[1], caps[1])
        );
    }
}
