//! Cache geometry: partition units over blocks.
//!
//! The paper partitions an 8 MB cache in units of 8 KB — 1024 units of
//! 128 64-byte lines — purely to keep the `O(P·C²)` dynamic program
//! cheap (Section VII-A). [`CacheConfig`] captures that two-level
//! geometry; all optimizer allocations are in units, all locality curves
//! in blocks.

/// Cache geometry for partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of partition units (the DP's `C`).
    pub units: usize,
    /// Blocks per unit (the partition granularity).
    pub blocks_per_unit: usize,
}

impl CacheConfig {
    /// Creates a geometry.
    ///
    /// # Panics
    /// Panics if either field is zero.
    pub fn new(units: usize, blocks_per_unit: usize) -> Self {
        assert!(units > 0, "need at least one unit");
        assert!(blocks_per_unit > 0, "unit must hold at least one block");
        CacheConfig {
            units,
            blocks_per_unit,
        }
    }

    /// The paper's evaluation geometry mapped to this repo's default
    /// scale: 1024 units of 1 block over a 1024-block cache (the unit
    /// count — which is what the DP cost depends on — matches the
    /// paper's 1024 × 8 KB).
    pub fn paper_default() -> Self {
        CacheConfig::new(1024, 1)
    }

    /// Total capacity in blocks.
    pub fn blocks(&self) -> usize {
        self.units * self.blocks_per_unit
    }

    /// Converts an allocation in units to blocks.
    pub fn to_blocks(&self, units: usize) -> usize {
        units * self.blocks_per_unit
    }

    /// Equal split of the cache among `k` programs, in units; the first
    /// `units % k` programs receive one extra unit.
    pub fn equal_split(&self, k: usize) -> Vec<usize> {
        assert!(k > 0, "need at least one program");
        let base = self.units / k;
        let extra = self.units % k;
        (0..k).map(|i| base + usize::from(i < extra)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_arithmetic() {
        let c = CacheConfig::new(1024, 8);
        assert_eq!(c.blocks(), 8192);
        assert_eq!(c.to_blocks(3), 24);
    }

    #[test]
    fn paper_default_matches_unit_count() {
        let c = CacheConfig::paper_default();
        assert_eq!(c.units, 1024);
        assert_eq!(c.blocks(), 1024);
    }

    #[test]
    fn equal_split_exact_and_remainder() {
        let c = CacheConfig::new(1024, 1);
        assert_eq!(c.equal_split(4), vec![256; 4]);
        let c = CacheConfig::new(10, 1);
        assert_eq!(c.equal_split(3), vec![4, 3, 3]);
        assert_eq!(c.equal_split(3).iter().sum::<usize>(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_panics() {
        let _ = CacheConfig::new(0, 1);
    }
}
