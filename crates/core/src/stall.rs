//! Stall scheduling — the introduction's motivating application.
//!
//! Section IV: "another possible application … is to monitor performance
//! on-line, and stall individual programs based on the predicted benefit
//! of doing so. For example, if two programs are traversing different
//! 60 MB arrays while sharing a 64 MB cache, stalling one of them will
//! prevent thrashing, and they may both finish sooner."
//!
//! This module turns that observation into a small scheduler: given solo
//! profiles, it evaluates *round schedules* — partitions of the group
//! into batches that co-run internally and execute one after another —
//! using the composition theory for each batch's miss ratios and the
//! linear CPI model for time. A batch's makespan is its slowest member;
//! total time is the sum over batches. Running everything in one batch
//! is ordinary co-run; singleton batches are fully serial.

use crate::config::CacheConfig;
use crate::perf::PerfModel;
use crate::sharing::enumerate_set_partitions;
use cps_hotl::{CoRunModel, SoloProfile};

/// One evaluated schedule.
#[derive(Clone, Debug)]
pub struct ScheduleEval {
    /// The batches, in execution order (order does not affect the
    /// model's total time).
    pub batches: Vec<Vec<usize>>,
    /// Estimated time of each batch (max over members, model cycles).
    pub batch_times: Vec<f64>,
    /// Total estimated time.
    pub total_time: f64,
}

/// Estimated solo execution time of one program (model cycles):
/// `accesses × CPI(mr_solo(cache)) / accesses_per_instr`.
fn member_time(profile: &SoloProfile, miss_ratio: f64, model: &PerfModel) -> f64 {
    profile.accesses as f64 * model.cpi(miss_ratio) / model.accesses_per_instr
}

/// Evaluates one batch schedule.
pub fn evaluate_schedule(
    members: &[&SoloProfile],
    config: &CacheConfig,
    model: &PerfModel,
    batches: &[Vec<usize>],
) -> ScheduleEval {
    let mut batch_times = Vec::with_capacity(batches.len());
    for batch in batches {
        let tenants: Vec<&SoloProfile> = batch.iter().map(|&i| members[i]).collect();
        let corun = CoRunModel::new(tenants.clone());
        let mrs = corun.member_shared_miss_ratios(config.blocks() as f64);
        let time = tenants
            .iter()
            .zip(&mrs)
            .map(|(t, &mr)| member_time(t, mr, model))
            .fold(0.0f64, f64::max);
        batch_times.push(time);
    }
    ScheduleEval {
        batches: batches.to_vec(),
        total_time: batch_times.iter().sum(),
        batch_times,
    }
}

/// The all-co-run baseline (one batch).
pub fn corun_schedule(
    members: &[&SoloProfile],
    config: &CacheConfig,
    model: &PerfModel,
) -> ScheduleEval {
    let all: Vec<usize> = (0..members.len()).collect();
    evaluate_schedule(members, config, model, &[all])
}

/// Searches every batch partition (Bell(n) of them) for the minimum
/// total time. Practical for the scheduling-window sizes the intro has
/// in mind (a handful of programs).
pub fn best_schedule(
    members: &[&SoloProfile],
    config: &CacheConfig,
    model: &PerfModel,
) -> ScheduleEval {
    assert!(!members.is_empty(), "schedule needs members");
    let mut best: Option<ScheduleEval> = None;
    for batches in enumerate_set_partitions(members.len()) {
        let eval = evaluate_schedule(members, config, model, &batches);
        if best.as_ref().is_none_or(|b| eval.total_time < b.total_time) {
            best = Some(eval);
        }
    }
    best.expect("at least the co-run schedule exists")
}

/// Convenience verdict: does stalling (any serialization) beat plain
/// co-run, and by how much? Returns `(best, corun, gain_fraction)`.
pub fn stall_advice(
    members: &[&SoloProfile],
    config: &CacheConfig,
    model: &PerfModel,
) -> (ScheduleEval, ScheduleEval, f64) {
    let corun = corun_schedule(members, config, model);
    let best = best_schedule(members, config, model);
    let gain = 1.0 - best.total_time / corun.total_time;
    (best, corun, gain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_trace::WorkloadSpec;

    fn profile(name: &str, ws: u64, len: usize, blocks: usize) -> SoloProfile {
        let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(len, ws);
        SoloProfile::from_trace(name, &t.blocks, 1.0, blocks)
    }

    /// The paper's 60 MB/64 MB example, scaled: two 60-block arrays and
    /// a 64-block cache.
    #[test]
    fn thrashing_pair_prefers_serial_execution() {
        let blocks = 64;
        let cfg = CacheConfig::new(blocks, 1);
        let a = profile("array-a", 60, 30_000, blocks);
        let b = profile("array-b", 60, 30_000, blocks);
        let members = vec![&a, &b];
        let model = PerfModel::default();
        let (best, corun, gain) = stall_advice(&members, &cfg, &model);
        assert_eq!(
            best.batches.len(),
            2,
            "should serialize: {:?}",
            best.batches
        );
        assert!(
            gain > 0.3,
            "serializing thrashers should save a lot: gain {gain}, \
             best {} vs corun {}",
            best.total_time,
            corun.total_time
        );
    }

    #[test]
    fn friendly_pair_prefers_corun() {
        // Two tiny programs in a big cache: co-running is free, serial
        // wastes time.
        let blocks = 128;
        let cfg = CacheConfig::new(blocks, 1);
        let a = profile("small-a", 20, 30_000, blocks);
        let b = profile("small-b", 30, 30_000, blocks);
        let members = vec![&a, &b];
        let model = PerfModel::default();
        let (best, _corun, _gain) = stall_advice(&members, &cfg, &model);
        assert_eq!(best.batches.len(), 1, "co-run: {:?}", best.batches);
    }

    #[test]
    fn mixed_group_stalls_only_the_antagonists() {
        // Two thrashing arrays + one tiny program: the tiny one should
        // ride along with one of the arrays, the arrays split.
        let blocks = 64;
        let cfg = CacheConfig::new(blocks, 1);
        let a = profile("array-a", 58, 30_000, blocks);
        let b = profile("array-b", 58, 30_000, blocks);
        let c = profile("tiny", 4, 30_000, blocks);
        let members = vec![&a, &b, &c];
        let model = PerfModel::default();
        let best = best_schedule(&members, &cfg, &model);
        // The arrays must not share a batch.
        for batch in &best.batches {
            assert!(
                !(batch.contains(&0) && batch.contains(&1)),
                "arrays co-scheduled: {:?}",
                best.batches
            );
        }
        // And the schedule should use at most 2 batches (tiny rides
        // along for free rather than getting its own round).
        assert!(
            best.batches.len() <= 2,
            "tiny program should not get its own round: {:?}",
            best.batches
        );
    }

    #[test]
    fn schedule_times_are_consistent() {
        let blocks = 96;
        let cfg = CacheConfig::new(blocks, 1);
        let a = profile("x", 40, 20_000, blocks);
        let b = profile("y", 80, 20_000, blocks);
        let members = vec![&a, &b];
        let model = PerfModel::default();
        let eval = evaluate_schedule(&members, &cfg, &model, &[vec![0], vec![1]]);
        assert_eq!(eval.batch_times.len(), 2);
        assert!((eval.total_time - eval.batch_times.iter().sum::<f64>()).abs() < 1e-9);
        // Serial batches run each program at its solo miss ratio.
        let expect_a = a.accesses as f64 * model.cpi(a.mrc.at(blocks)) / model.accesses_per_instr;
        assert!((eval.batch_times[0] - expect_a).abs() < 1e-6 * expect_a);
    }
}
