//! Miss ratio → performance estimation
//! (Section VIII, "Locality-performance Correlation").
//!
//! The paper justifies optimizing the miss ratio by Wang et al.'s
//! measurement: HOTL-predicted miss ratio and co-run execution time are
//! linearly related (correlation coefficient 0.938), so "reducing
//! execution time can be achieved through reducing \[the\] same portion of
//! miss ratio". This module makes that link explicit with the standard
//! linear CPI model
//!
//! ```text
//! CPI(mr) = base_cpi + accesses_per_instr · mr · miss_penalty
//! ```
//!
//! and derives the usual multiprogramming metrics — per-program
//! slowdowns, weighted speedup, harmonic mean of speedups, and Jain's
//! fairness index — from any [`GroupEvaluation`], so scheme comparisons
//! can be read in time units, not just miss ratios.

use crate::schemes::{GroupEvaluation, Scheme};

/// Linear cycles-per-instruction model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfModel {
    /// Cycles per instruction with a perfect cache.
    pub base_cpi: f64,
    /// Memory accesses per instruction (the trace's access density).
    pub accesses_per_instr: f64,
    /// Extra cycles per cache miss (DRAM latency minus overlap).
    pub miss_penalty: f64,
}

impl Default for PerfModel {
    /// A generic out-of-order core: base CPI 0.7, 0.35 accesses per
    /// instruction, 180-cycle effective miss penalty.
    fn default() -> Self {
        PerfModel {
            base_cpi: 0.7,
            accesses_per_instr: 0.35,
            miss_penalty: 180.0,
        }
    }
}

impl PerfModel {
    /// CPI at the given miss ratio.
    pub fn cpi(&self, miss_ratio: f64) -> f64 {
        self.base_cpi + self.accesses_per_instr * miss_ratio * self.miss_penalty
    }

    /// Relative execution time of `mr` vs a reference miss ratio
    /// (`> 1` means slower than the reference).
    pub fn slowdown(&self, mr: f64, reference_mr: f64) -> f64 {
        self.cpi(mr) / self.cpi(reference_mr)
    }

    /// Per-program speedups of `scheme` relative to `reference` for an
    /// evaluated group (`> 1` = faster under `scheme`).
    pub fn speedups(&self, eval: &GroupEvaluation, scheme: Scheme, reference: Scheme) -> Vec<f64> {
        let s = &eval.get(scheme).member_miss_ratios;
        let r = &eval.get(reference).member_miss_ratios;
        s.iter()
            .zip(r)
            .map(|(mr_s, mr_r)| self.cpi(*mr_r) / self.cpi(*mr_s))
            .collect()
    }

    /// Weighted speedup (sum of per-program speedups) of `scheme` vs
    /// `reference` — the standard multiprogramming throughput metric.
    pub fn weighted_speedup(
        &self,
        eval: &GroupEvaluation,
        scheme: Scheme,
        reference: Scheme,
    ) -> f64 {
        self.speedups(eval, scheme, reference).iter().sum()
    }

    /// Harmonic mean of speedups — balances throughput and fairness.
    pub fn harmonic_speedup(
        &self,
        eval: &GroupEvaluation,
        scheme: Scheme,
        reference: Scheme,
    ) -> f64 {
        let sp = self.speedups(eval, scheme, reference);
        sp.len() as f64 / sp.iter().map(|s| 1.0 / s).sum::<f64>()
    }
}

/// Jain's fairness index over a slice of per-program quantities
/// (speedups, allocations, …): `(Σx)² / (n · Σx²)`, ranging from `1/n`
/// (one program takes all) to 1 (perfectly equal).
pub fn jains_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::schemes::evaluate_group;
    use cps_hotl::SoloProfile;
    use cps_trace::WorkloadSpec;

    #[test]
    fn cpi_is_linear_in_miss_ratio() {
        let m = PerfModel::default();
        let at0 = m.cpi(0.0);
        let at1 = m.cpi(1.0);
        assert_eq!(at0, 0.7);
        assert!((at1 - (0.7 + 0.35 * 180.0)).abs() < 1e-12);
        // Midpoint exactly halfway (linearity).
        assert!((m.cpi(0.5) - 0.5 * (at0 + at1)).abs() < 1e-12);
    }

    #[test]
    fn slowdown_of_reference_is_one() {
        let m = PerfModel::default();
        assert_eq!(m.slowdown(0.3, 0.3), 1.0);
        assert!(m.slowdown(0.4, 0.2) > 1.0);
        assert!(m.slowdown(0.1, 0.2) < 1.0);
    }

    #[test]
    fn jains_index_bounds() {
        assert_eq!(jains_index(&[]), 1.0);
        assert_eq!(jains_index(&[2.0, 2.0, 2.0]), 1.0);
        let skewed = jains_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "one-takes-all = 1/n");
        let mid = jains_index(&[1.0, 2.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    #[test]
    fn optimal_scheme_has_weighted_speedup_at_least_group_size_ratio() {
        // Optimal vs Equal: total speedup should be ≥ the number of
        // programs when Optimal strictly dominates... at minimum it must
        // beat the all-ones vector that comparing Equal to itself gives.
        let blocks = 128;
        let mk = |name: &str, ws: u64| {
            let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(30_000, ws);
            SoloProfile::from_trace(name, &t.blocks, 1.0, blocks)
        };
        let ps = [mk("a", 90), mk("b", 40), mk("c", 20)];
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let eval = evaluate_group(&members, &CacheConfig::new(blocks, 1));
        let m = PerfModel::default();
        let self_speedup = m.weighted_speedup(&eval, Scheme::Equal, Scheme::Equal);
        assert!((self_speedup - 3.0).abs() < 1e-12);
        let opt = m.weighted_speedup(&eval, Scheme::Optimal, Scheme::Equal);
        // Optimal lowers the group miss ratio, but an individual program
        // can be slowed; the weighted speedup may dip below P in
        // principle. For this loop group Optimal fits everyone, so it
        // must be >= P.
        assert!(opt >= 3.0 - 1e-9, "weighted speedup {opt}");
    }

    #[test]
    fn speedups_align_with_miss_ratio_changes() {
        let blocks = 96;
        let mk = |name: &str, ws: u64| {
            let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(30_000, ws);
            SoloProfile::from_trace(name, &t.blocks, 1.0, blocks)
        };
        let ps = [mk("a", 70), mk("b", 50)];
        let members: Vec<&SoloProfile> = ps.iter().collect();
        let eval = evaluate_group(&members, &CacheConfig::new(blocks, 1));
        let m = PerfModel::default();
        let sp = m.speedups(&eval, Scheme::Optimal, Scheme::Equal);
        let opt = &eval.get(Scheme::Optimal).member_miss_ratios;
        let eq = &eval.get(Scheme::Equal).member_miss_ratios;
        for i in 0..2 {
            if opt[i] < eq[i] - 1e-12 {
                assert!(sp[i] > 1.0, "member {i} got faster");
            }
            if opt[i] > eq[i] + 1e-12 {
                assert!(sp[i] < 1.0, "member {i} got slower");
            }
        }
    }
}
