//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the handful of `rand` features the workspace actually uses are
//! reimplemented here and wired in via a path dependency. The surface is
//! API-compatible with `rand` 0.8 for the subset below; the generator
//! streams differ from upstream (every consumer in this workspace only
//! relies on *self*-determinism, never on upstream bit-streams):
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`
//! * [`seq::SliceRandom`] with `shuffle` and `choose`

pub mod seq;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full domain
/// (the `Standard` distribution of upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, bound)` without modulo bias (widening
/// multiply; the residual bias at 64 bits is negligible for simulation).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::standard_sample(rng) * (self.end - self.start)
    }
}

/// User-facing generator interface (blanket-implemented for every
/// [`RngCore`], exactly as in upstream `rand`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (splitmix-expanded, matching
    /// the convenience constructor of upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64 expansion
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-1.0..2.0);
            assert!((-1.0..2.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u: usize = rng.gen_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
