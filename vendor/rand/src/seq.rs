//! Slice sampling and shuffling (subset of `rand::seq`).

use crate::{Rng, RngCore};

/// Extension methods on slices (subset of upstream `SliceRandom`).
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_index(rng, self.len())])
        }
    }
}

#[inline]
fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Sm(u64);
    impl crate::RngCore for Sm {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }
    impl SeedableRng for Sm {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Sm(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = Sm::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = Sm::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
