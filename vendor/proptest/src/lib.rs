//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the property-testing surface the workspace uses is reimplemented
//! here: the [`proptest!`] macro, `prop_assert*` macros, numeric-range /
//! tuple / vector / union strategies, `prop_map`, and `any::<T>()`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim; the
//!   deterministic per-test seed makes every failure reproducible.
//! * **Deterministic seeding.** Case generation is seeded from the test
//!   name, so runs are stable across machines and invocations.
//! * Unused upstream features (regex strategies, `proptest-derive`,
//!   persistence files, forking) are simply absent.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec(...)` works as in
    /// upstream proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// Supports the upstream inner attribute
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut rng);
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                                stringify!($name), case, config.cases, msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (`{:?}` vs `{:?}`)", format!($($fmt)+), l, r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (`{:?}` vs `{:?}`)", format!($($fmt)+), l, r
        );
    }};
}

/// Discards the current case (counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
