//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value *tree* (no shrinking): a strategy
/// simply draws a value from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keeps only values satisfying `f` (rejection sampling; panics if
    /// the predicate is satisfied less than once in 1000 draws).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies with one
    /// value type can be mixed (e.g. by [`Union`] / `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}`: predicate rejected 1000 draws",
            self.whence
        );
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let (a, b, c) = ((1u64..5), (0.0f64..1.0), (0usize..=3)).new_value(&mut r);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
            assert!(c <= 3);
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![
            (0u64..10).prop_map(|v| v * 2),
            (100u64..110).prop_map(|v| v + 1),
        ];
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..200 {
            let v = s.new_value(&mut r);
            assert!(v < 20 || (101..111).contains(&v));
            saw_low |= v < 20;
            saw_high |= v >= 101;
        }
        assert!(saw_low && saw_high, "both arms should fire in 200 draws");
    }

    #[test]
    fn filter_rejects() {
        let mut r = rng();
        let s = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut r) % 2, 0);
        }
    }
}
