//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one value from the whole domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag = rng.unit_f64() * 2e6 - 1e6;
        mag
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Full-domain strategy for `T`, as in `any::<u8>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_both_halves() {
        let mut rng = TestRng::deterministic("any-u8");
        let s = any::<u8>();
        let (mut lo, mut hi) = (false, false);
        for _ in 0..300 {
            let v = s.new_value(&mut rng);
            lo |= v < 128;
            hi |= v >= 128;
        }
        assert!(lo && hi);
    }
}
