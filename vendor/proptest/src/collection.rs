//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification accepted by [`vec`]: an exact `usize`, a
/// half-open `Range<usize>`, or an inclusive `RangeInclusive<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_cover_the_requested_range() {
        let mut rng = TestRng::deterministic("vec-lens");
        let s = vec(0u64..10, 2..5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen[v.len() - 2] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen.iter().all(|&s| s), "lengths 2, 3, 4 all appear");
    }

    #[test]
    fn exact_size_vecs() {
        let mut rng = TestRng::deterministic("vec-exact");
        let s = vec(0.0f64..1.0, 7usize);
        for _ in 0..20 {
            assert_eq!(s.new_value(&mut rng).len(), 7);
        }
    }
}
