//! Test-runner plumbing: config, RNG, and case-level error type.

/// Per-`proptest!` configuration (subset of upstream).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps debug-profile test runs
        // quick while still exercising plenty of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed — the property is violated.
    Fail(String),
    /// A `prop_assume!` failed — the case is discarded, not counted.
    Reject(String),
}

/// Result type each generated case evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so each test gets a stable,
    /// distinct stream across runs and machines.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be positive.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("alpha");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("alpha");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::deterministic("beta");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::deterministic("bound");
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
