//! Offline stand-in for the `rayon` API subset this workspace uses.
//!
//! The build environment has no access to crates.io, so `par_iter` /
//! `into_par_iter` here return plain **sequential** `std` iterators —
//! every adaptor (`map`, `filter`, `collect`, `sum`, …) keeps working
//! because they are ordinary `Iterator` methods. Results are identical
//! to real rayon's (same per-item work, deterministic order); only
//! wall-clock parallel speed-up is lost on the iterator side. Swapping
//! the path dependency back to crates.io `rayon` restores iterator
//! parallelism with no code changes.
//!
//! [`scope`] is different: it is backed by `std::thread::scope`, so
//! tasks spawned inside a scope run on **real OS threads** and finish
//! before the scope returns — the same structured-concurrency contract
//! as upstream rayon's `scope`, minus the work-stealing pool (each
//! spawn gets its own thread, so callers should spawn roughly one task
//! per shard/core, not thousands). This is what the sharded
//! repartitioning engine uses for genuine multi-core fan-out.

/// The traits a `use rayon::prelude::*;` is expected to bring in.
pub mod prelude {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Item type of the iterator.
        type Item;
        /// Concrete iterator type produced.
        type Iter: Iterator<Item = Self::Item>;

        /// Consumes `self`, yielding a ("parallel") iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// Referenced item type.
        type Item: 'data;
        /// Concrete iterator type produced.
        type Iter: Iterator<Item = &'data Self::Item>;

        /// Borrows `self`, yielding a ("parallel") iterator of references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.as_slice().iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Referenced item type.
        type Item: 'data;
        /// Concrete iterator type produced.
        type Iter: Iterator<Item = &'data mut Self::Item>;

        /// Mutably borrows `self`, yielding a ("parallel") iterator.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.as_mut_slice().iter_mut()
        }
    }
}

/// Runs the two closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Reports the available parallelism width. Upstream reports the pool
/// size; this stand-in has no pool, so the machine's logical core count
/// is the honest equivalent for sizing a [`scope`] fan-out.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A structured-concurrency scope handed to [`scope`]'s closure.
///
/// Mirrors `rayon::Scope`: [`Scope::spawn`] starts a task that may
/// borrow from outside the scope (`'scope` outlives every task), and
/// the enclosing [`scope`] call does not return until every spawned
/// task has finished.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` onto the scope. Unlike upstream's pooled version,
    /// each spawn is one OS thread — appropriate for per-shard tasks,
    /// not fine-grained work items.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope in which borrowing tasks can be spawned; blocks
/// until all of them complete (`std::thread::scope` underneath, so the
/// tasks run in parallel on real threads).
///
/// # Examples
///
/// ```
/// let mut parts = vec![0u64; 4];
/// rayon::scope(|s| {
///     for (i, p) in parts.iter_mut().enumerate() {
///         s.spawn(move |_| *p = i as u64 * 10);
///     }
/// });
/// assert_eq!(parts, vec![0, 10, 20, 30]);
/// ```
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u64 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn scope_runs_all_tasks_with_borrows() {
        let mut out = vec![0u32; 8];
        super::scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
        });
        assert_eq!(out, (1..=8).collect::<Vec<u32>>());
    }

    #[test]
    fn scope_supports_nested_spawn() {
        let flag = std::sync::atomic::AtomicU32::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    flag.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        });
        assert_eq!(flag.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
