//! Offline sequential stand-in for the `rayon` API subset this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so `par_iter` /
//! `into_par_iter` here return plain **sequential** `std` iterators —
//! every adaptor (`map`, `filter`, `collect`, `sum`, …) keeps working
//! because they are ordinary `Iterator` methods. Results are identical
//! to real rayon's (same per-item work, deterministic order); only
//! wall-clock parallel speed-up is lost. Swapping the path dependency
//! back to crates.io `rayon` restores parallelism with no code changes.

/// The traits a `use rayon::prelude::*;` is expected to bring in.
pub mod prelude {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Item type of the iterator.
        type Item;
        /// Concrete iterator type produced.
        type Iter: Iterator<Item = Self::Item>;

        /// Consumes `self`, yielding a ("parallel") iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// Referenced item type.
        type Item: 'data;
        /// Concrete iterator type produced.
        type Iter: Iterator<Item = &'data Self::Item>;

        /// Borrows `self`, yielding a ("parallel") iterator of references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.as_slice().iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Referenced item type.
        type Item: 'data;
        /// Concrete iterator type produced.
        type Iter: Iterator<Item = &'data mut Self::Item>;

        /// Mutably borrows `self`, yielding a ("parallel") iterator.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.as_mut_slice().iter_mut()
        }
    }
}

/// Runs the two closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Reports the worker-pool width; 1, since this stand-in is sequential.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u64 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
