//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this stand-in provides the `criterion` surface the workspace's
//! benches use — `criterion_group!` / `criterion_main!`, benchmark
//! groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId` — with a simple time-and-print measurement loop instead
//! of upstream's statistical analysis. Median-of-samples wall-clock
//! times are reported on stdout; there are no HTML reports or
//! regression baselines.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (subset of upstream `Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        b.report(id, None);
        self
    }
}

/// Throughput annotation for per-element / per-byte rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        b.report(&id.name, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b, input);
        b.report(&id.name, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    median_nanos: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            median_nanos: None,
        }
    }

    /// Times `routine`, storing a median per-iteration estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration sizing from one probe run.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time.max(once);
        let per_sample = (budget.as_nanos() / once.as_nanos() / self.sample_size as u128)
            .clamp(1, 1_000_000) as usize;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_nanos = Some(samples[samples.len() / 2]);
    }

    /// Times `routine` over a batch prepared by `setup` (setup excluded
    /// from timing; batch size is ignored in this stand-in).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_nanos = Some(samples[samples.len() / 2]);
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let Some(nanos) = self.median_nanos else {
            println!("  {id:<40} (no measurement)");
            return;
        };
        let time = if nanos < 1e3 {
            format!("{nanos:.1} ns")
        } else if nanos < 1e6 {
            format!("{:.2} µs", nanos / 1e3)
        } else if nanos < 1e9 {
            format!("{:.2} ms", nanos / 1e6)
        } else {
            format!("{:.3} s", nanos / 1e9)
        };
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (nanos / 1e9);
                println!("  {id:<40} {time:>12}   {rate:.3e} elem/s");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (nanos / 1e9) / (1 << 20) as f64;
                println!("  {id:<40} {time:>12}   {rate:.1} MiB/s");
            }
            None => println!("  {id:<40} {time:>12}"),
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }
}
