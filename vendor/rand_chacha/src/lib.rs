//! Offline drop-in subset of the `rand_chacha` 0.3 API.
//!
//! Provides [`ChaCha8Rng`] with the `rand` trait surface this workspace
//! uses. The generator is *not* the ChaCha stream cipher — network-less
//! builds cannot fetch the real crate, and nothing in this workspace
//! needs cryptographic output or upstream's exact bit-stream, only a
//! seedable, statistically solid, `Clone`-able deterministic source.
//! Internally this is xoshiro256**, seeded via splitmix64.

use rand::{RngCore, SeedableRng};

/// Drop-in stand-in for `rand_chacha::ChaCha8Rng` (see crate docs).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl ChaCha8Rng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** step.
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                1,
            ];
        }
        ChaCha8Rng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = ChaCha8Rng::from_seed([0; 32]);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let _ = a.gen_range(0..100u64);
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
