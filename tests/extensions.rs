//! The extension modules driven end-to-end through the public facade:
//! elastic guarantees, phase-aware planning, multi-cache grouping, the
//! stall scheduler, Smith's associativity estimate, and the online
//! profiler — each checked against a first-principles expectation.

use cache_partition_sharing::core::multicache::{best_assignment, CachePolicy};
use cache_partition_sharing::core::perf::jains_index;
use cache_partition_sharing::core::stall::stall_advice;
use cache_partition_sharing::hotl::assoc::smith_for_capacity;
use cache_partition_sharing::prelude::*;

fn loop_profile(name: &str, ws: u64, blocks: usize, seed: u64) -> SoloProfile {
    let t = WorkloadSpec::SequentialLoop { working_set: ws }.generate(40_000, seed);
    SoloProfile::from_trace(name, &t.blocks, 1.0, blocks)
}

#[test]
fn elastic_interpolates_between_optimal_and_equal_baseline() {
    let blocks = 240;
    let cfg = CacheConfig::new(blocks, 1);
    let ps = [
        loop_profile("a", 150, blocks, 1),
        loop_profile("b", 70, blocks, 2),
        loop_profile("c", 30, blocks, 3),
    ];
    let members: Vec<&SoloProfile> = ps.iter().collect();
    let sweep = elastic_sweep(&members, &cfg, 4);
    let eval = evaluate_group(&members, &cfg);
    // Endpoints bracket the six-scheme results.
    let opt = eval.get(Scheme::Optimal).group_miss_ratio;
    let eqb = eval.get(Scheme::EqualBaseline).group_miss_ratio;
    assert!((sweep[0].result.cost - opt).abs() < 1e-9, "θ=0 is Optimal");
    assert!(
        (sweep.last().unwrap().result.cost - eqb).abs() < 1e-9,
        "θ=1 is the Equal baseline"
    );
}

#[test]
fn phase_aware_plan_beats_static_on_the_facade_types() {
    let blocks = 128usize;
    let seg = 4_000usize;
    let mk = |first_big: bool, seed: u64| {
        let big = WorkloadSpec::SequentialLoop { working_set: 100 };
        let small = WorkloadSpec::SequentialLoop { working_set: 4 };
        let phases = if first_big {
            vec![(big, seg as u64), (small, seg as u64)]
        } else {
            vec![(small, seg as u64), (big, seg as u64)]
        };
        WorkloadSpec::Phased { phases }.generate(seg * 4, seed)
    };
    let (ta, tb) = (mk(true, 1), mk(false, 2));
    let pa = PhasedProfile::from_trace("a", &ta.blocks, 1.0, blocks, 4);
    let pb = PhasedProfile::from_trace("b", &tb.blocks, 1.0, blocks, 4);
    let cfg = CacheConfig::new(blocks, 1);
    let plan = phase_aware_partition(&[&pa, &pb], &cfg, 0.0);
    assert!(plan.reconfigurations() >= 2);
    // Every segment gives the big-phase program its working set.
    for alloc in &plan.allocations {
        assert!(alloc.iter().max().unwrap() >= &100, "{alloc:?}");
    }
}

#[test]
fn multicache_placement_beats_worst_case_half_split() {
    let blocks = 128;
    let cfg = CacheConfig::new(blocks, 1);
    let ps = [
        loop_profile("big-a", 100, blocks, 1),
        loop_profile("big-b", 100, blocks, 2),
        loop_profile("small-a", 15, blocks, 3),
        loop_profile("small-b", 15, blocks, 4),
    ];
    let members: Vec<&SoloProfile> = ps.iter().collect();
    let best = best_assignment(&members, &cfg, 2, CachePolicy::Shared).unwrap();
    // Pairing each big loop with a small one fits both caches
    // (100 + 15 < 128): near-zero misses.
    assert!(best.eval.overall_miss_ratio < 0.02, "{:?}", best.assignment);
}

#[test]
fn stall_scheduler_and_perf_metrics_cohere() {
    let blocks = 64;
    let cfg = CacheConfig::new(blocks, 1);
    let a = loop_profile("a", 60, blocks, 1);
    let b = loop_profile("b", 60, blocks, 2);
    let model = PerfModel::default();
    let (best, corun, gain) = stall_advice(&[&a, &b], &cfg, &model);
    assert!(gain > 0.0, "thrashers must benefit from serialization");
    assert!(best.total_time < corun.total_time);
    // Jain's index on an equal allocation is 1.
    assert!((jains_index(&[2.0, 2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
}

#[test]
fn smith_estimate_available_from_facade() {
    let p = loop_profile("s", 50, 256, 7);
    let est16 = smith_for_capacity(&p.mrc, 256, 16);
    let fa = p.mrc.at(256);
    assert!((est16 - fa).abs() < 0.05, "16-way {est16} vs FA {fa}");
}

#[test]
fn online_profiler_feeds_the_optimizer() {
    let cfg = CacheConfig::new(96, 1);
    let mut mon = OnlineProfiler::new();
    let t = WorkloadSpec::SequentialLoop { working_set: 40 }.generate(20_000, 5);
    mon.observe_all(&t.blocks);
    let fp = mon.snapshot_footprint();
    let mrc = MissRatioCurve::from_footprint(&fp, cfg.blocks());
    let other = loop_profile("other", 70, cfg.blocks(), 6);
    let costs = [
        CostCurve::from_miss_ratio(&mrc, &cfg, 0.5),
        CostCurve::from_miss_ratio(&other.mrc, &cfg, 0.5),
    ];
    // 40 + 70 > 96: the DP must give one loop its full set and starve
    // the other (cliff economics), never split uselessly down the middle.
    let best = optimal_partition(&costs, cfg.units, &Objective::MissRatioSum).unwrap();
    let covered = (best.allocation[0] >= 40) ^ (best.allocation[1] >= 70);
    assert!(
        covered,
        "exactly one loop can be satisfied: {:?}",
        best.allocation
    );
}
