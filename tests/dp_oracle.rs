//! Property-based validation of the optimizer stack: the DP against the
//! exhaustive oracle, with and without constraints, under both
//! accumulation operators; and STTW's convex-optimality contract.

use cache_partition_sharing::core::dp::brute_force_partition;
use cache_partition_sharing::prelude::*;
use proptest::prelude::*;

/// Strategy: a non-increasing cost curve of `len + 1` entries in [0, 1].
fn monotone_curve(len: usize) -> impl Strategy<Value = CostCurve> {
    prop::collection::vec(0.0f64..1.0, len + 1).prop_map(|mut v| {
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        CostCurve::from_raw(v)
    })
}

/// Strategy: arbitrary (possibly non-monotone) curve.
fn arbitrary_curve(len: usize) -> impl Strategy<Value = CostCurve> {
    prop::collection::vec(0.0f64..1.0, len + 1).prop_map(CostCurve::from_raw)
}

/// Strategy: monotone curve with a forbidden prefix (baseline cap).
fn constrained_curve(len: usize) -> impl Strategy<Value = CostCurve> {
    (
        prop::collection::vec(0.0f64..1.0, len + 1),
        0usize..=len / 2,
    )
        .prop_map(|(mut v, forbidden)| {
            v.sort_by(|a, b| b.partial_cmp(a).unwrap());
            for entry in v.iter_mut().take(forbidden) {
                *entry = f64::INFINITY;
            }
            CostCurve::from_raw(v)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_matches_oracle_sum(curves in prop::collection::vec(monotone_curve(10), 2..4)) {
        let total = 10;
        let dp = optimal_partition(&curves, total, &Objective::MissRatioSum);
        let oracle = brute_force_partition(&curves, total, &Objective::MissRatioSum);
        match (dp, oracle) {
            (Some(d), Some(o)) => {
                prop_assert!((d.cost - o.cost).abs() < 1e-9, "dp {} vs oracle {}", d.cost, o.cost);
                prop_assert_eq!(d.allocation.iter().sum::<usize>(), total);
            }
            (None, None) => {}
            (d, o) => prop_assert!(false, "feasibility mismatch: {d:?} vs {o:?}"),
        }
    }

    #[test]
    fn dp_matches_oracle_on_arbitrary_curves(curves in prop::collection::vec(arbitrary_curve(8), 2..4)) {
        // "The miss ratio curve … can be any function."
        let total = 8;
        let dp = optimal_partition(&curves, total, &Objective::MissRatioSum).unwrap();
        let oracle = brute_force_partition(&curves, total, &Objective::MissRatioSum).unwrap();
        prop_assert!((dp.cost - oracle.cost).abs() < 1e-9);
    }

    #[test]
    fn dp_matches_oracle_max_combine(curves in prop::collection::vec(monotone_curve(8), 2..4)) {
        let total = 8;
        let dp = optimal_partition(&curves, total, &Objective::MaxMissRatio).unwrap();
        let oracle = brute_force_partition(&curves, total, &Objective::MaxMissRatio).unwrap();
        prop_assert!((dp.cost - oracle.cost).abs() < 1e-9);
    }

    #[test]
    fn dp_respects_constraints(curves in prop::collection::vec(constrained_curve(10), 2..4)) {
        let total = 10;
        match (optimal_partition(&curves, total, &Objective::MissRatioSum),
               brute_force_partition(&curves, total, &Objective::MissRatioSum)) {
            (Some(d), Some(o)) => {
                prop_assert!((d.cost - o.cost).abs() < 1e-9);
                // No program sits in its forbidden region.
                for (curve, &alloc) in curves.iter().zip(&d.allocation) {
                    prop_assert!(curve.at(alloc).is_finite(), "allocation in forbidden region");
                }
            }
            (None, None) => {}
            (d, o) => prop_assert!(false, "feasibility mismatch: {d:?} vs {o:?}"),
        }
    }

    #[test]
    fn dp_cost_never_increases_with_more_cache(curves in prop::collection::vec(monotone_curve(12), 2..4)) {
        // More total cache can only help when curves are non-increasing.
        let a = optimal_partition(&curves, 8, &Objective::MissRatioSum).unwrap();
        let b = optimal_partition(&curves, 12, &Objective::MissRatioSum).unwrap();
        prop_assert!(b.cost <= a.cost + 1e-9, "12 units {} vs 8 units {}", b.cost, a.cost);
    }

    #[test]
    fn sttw_is_optimal_on_its_own_envelope(curves in prop::collection::vec(monotone_curve(10), 2..4)) {
        // STTW evaluated on envelope costs must equal the DP on envelope
        // costs (greedy is exactly optimal for convex curves).
        let envelopes: Vec<CostCurve> = curves.iter().map(|c| c.convex_envelope()).collect();
        let total = 10;
        let greedy = sttw_partition(&envelopes, total);
        let dp = optimal_partition(&envelopes, total, &Objective::MissRatioSum).unwrap();
        prop_assert!(
            (greedy.cost - dp.cost).abs() < 1e-9,
            "greedy {} vs dp {} on convex envelopes",
            greedy.cost,
            dp.cost
        );
    }

    #[test]
    fn sttw_never_beats_dp(curves in prop::collection::vec(monotone_curve(10), 2..4)) {
        let total = 10;
        let greedy = sttw_partition(&curves, total);
        let dp = optimal_partition(&curves, total, &Objective::MissRatioSum).unwrap();
        prop_assert!(dp.cost <= greedy.cost + 1e-9);
    }
}
