//! Cross-scheme invariants over randomized studies: the ordering and
//! fairness guarantees that must hold for *every* co-run group, not just
//! the curated study set.

use cache_partition_sharing::core::sweep::{all_k_subsets, sweep_groups};
use cache_partition_sharing::prelude::*;
use cache_partition_sharing::trace::ProgramSpec;

fn random_specs(seed: u64, n: usize) -> Vec<ProgramSpec> {
    // Deterministic variety from a seed: loops, zipfs, mixtures.
    let names: &[&'static str] = &["w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w9"];
    (0..n)
        .map(|i| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 1442695040888963407);
            let ws = 20 + (x >> 32) % 200;
            let workload = match x % 3 {
                0 => WorkloadSpec::SequentialLoop { working_set: ws },
                1 => WorkloadSpec::Zipfian {
                    region: ws * 3,
                    alpha: 0.5 + (x % 5) as f64 / 10.0,
                },
                _ => WorkloadSpec::Mixture {
                    parts: vec![
                        (
                            0.9,
                            WorkloadSpec::SequentialLoop {
                                working_set: ws / 2,
                            },
                        ),
                        (0.1, WorkloadSpec::UniformRandom { region: ws * 4 }),
                    ],
                },
            };
            ProgramSpec {
                name: names[i],
                workload,
                access_rate: 0.5 + (x % 7) as f64 / 4.0,
                trace_len: 25_000,
                seed: x,
            }
        })
        .collect()
}

#[test]
fn optimal_dominates_every_scheme_on_random_studies() {
    for seed in [11u64, 22, 33] {
        let study = Study::build(&random_specs(seed, 6), CacheConfig::new(64, 2));
        for rec in sweep_groups(&study, 3) {
            let opt = rec.evaluation.get(Scheme::Optimal).group_miss_ratio;
            for s in Scheme::ALL {
                assert!(
                    opt <= rec.evaluation.get(s).group_miss_ratio + 1e-9,
                    "seed {seed}, group {:?}: Optimal {opt} loses to {} {}",
                    rec.indices,
                    s.name(),
                    rec.evaluation.get(s).group_miss_ratio
                );
            }
        }
    }
}

#[test]
fn baselines_protect_every_member_on_random_studies() {
    for seed in [44u64, 55] {
        let study = Study::build(&random_specs(seed, 5), CacheConfig::new(48, 2));
        for rec in sweep_groups(&study, 3) {
            let e = &rec.evaluation;
            for (constrained, base) in [
                (Scheme::EqualBaseline, Scheme::Equal),
                (Scheme::NaturalBaseline, Scheme::Natural),
            ] {
                let c = e.get(constrained);
                let b = e.get(base);
                for i in 0..3 {
                    assert!(
                        c.member_miss_ratios[i] <= b.member_miss_ratios[i] + 1e-6,
                        "seed {seed} group {:?}: {} member {i} {} > {} {}",
                        rec.indices,
                        constrained.name(),
                        c.member_miss_ratios[i],
                        base.name(),
                        b.member_miss_ratios[i]
                    );
                }
            }
        }
    }
}

#[test]
fn every_allocation_uses_exactly_the_whole_cache() {
    let study = Study::build(&random_specs(66, 5), CacheConfig::new(40, 3));
    for rec in sweep_groups(&study, 4) {
        for r in &rec.evaluation.results {
            assert_eq!(
                r.allocation.iter().sum::<usize>(),
                40,
                "{} in group {:?}",
                r.scheme.name(),
                rec.indices
            );
        }
    }
}

#[test]
fn sttw_matches_optimal_when_all_curves_are_convex() {
    // Zipf workloads have smooth convex MRCs; STTW should equal the DP.
    let specs: Vec<ProgramSpec> = (0..4)
        .map(|i| ProgramSpec {
            name: ["z0", "z1", "z2", "z3"][i],
            workload: WorkloadSpec::Zipfian {
                region: 150 + 80 * i as u64,
                alpha: 0.9,
            },
            access_rate: 1.0 + i as f64 / 4.0,
            trace_len: 60_000,
            seed: 100 + i as u64,
        })
        .collect();
    let study = Study::build(&specs, CacheConfig::new(128, 1));
    let members: Vec<&SoloProfile> = study.profiles.iter().collect();
    let eval = evaluate_group(&members, &study.config);
    let sttw = eval.get(Scheme::Sttw).group_miss_ratio;
    let opt = eval.get(Scheme::Optimal).group_miss_ratio;
    assert!(
        (sttw - opt) / opt.max(1e-9) < 0.02,
        "convex group: STTW {sttw} vs Optimal {opt}"
    );
}

#[test]
fn group_miss_ratio_is_share_weighted_member_mean() {
    let study = Study::build(&random_specs(77, 4), CacheConfig::new(32, 2));
    let members: Vec<&SoloProfile> = study.profiles.iter().collect();
    let eval = evaluate_group(&members, &study.config);
    for r in &eval.results {
        let weighted: f64 = eval
            .shares
            .iter()
            .zip(&r.member_miss_ratios)
            .map(|(s, m)| s * m)
            .sum();
        assert!(
            (weighted - r.group_miss_ratio).abs() < 1e-6,
            "{}: weighted {weighted} vs reported {}",
            r.scheme.name(),
            r.group_miss_ratio
        );
    }
}

#[test]
fn subset_enumeration_matches_search_space_formula() {
    // Cross-crate consistency: the sweep's subset count equals the
    // binomial from cps-combin.
    use cache_partition_sharing::combin::binomial;
    for (n, k) in [(16usize, 4usize), (10, 3), (6, 6)] {
        assert_eq!(
            all_k_subsets(n, k).len() as u128,
            binomial(n as u64, k as u64).unwrap()
        );
    }
}
