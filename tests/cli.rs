//! End-to-end tests of the `cps` command-line tool: generate → profile →
//! predict → optimize, exercising the real binary and the on-disk
//! formats.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cps(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cps"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn cps")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cps-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_workflow_gen_profile_predict_optimize() {
    let dir = tempdir("workflow");
    let s = stdout(&cps(
        &[
            "gen",
            "--workload",
            "loop:60",
            "--len",
            "30000",
            "--out",
            "a.trace",
            "--seed",
            "3",
        ],
        &dir,
    ));
    assert!(s.contains("60 distinct blocks"), "{s}");
    stdout(&cps(
        &[
            "gen",
            "--workload",
            "zipf:300:0.8",
            "--len",
            "30000",
            "--out",
            "b.trace",
        ],
        &dir,
    ));
    let s = stdout(&cps(
        &[
            "profile",
            "a.trace",
            "--out",
            "a.cpsp",
            "--max-blocks",
            "128",
            "--name",
            "loop60",
        ],
        &dir,
    ));
    assert!(s.contains("profiled `loop60`"), "{s}");
    stdout(&cps(
        &[
            "profile",
            "b.trace",
            "--out",
            "b.cpsp",
            "--max-blocks",
            "128",
        ],
        &dir,
    ));

    let s = stdout(&cps(&["show", "a.cpsp"], &dir));
    assert!(s.contains("loop60"), "{s}");
    assert!(s.contains("miss ratio"), "{s}");

    let s = stdout(&cps(
        &["predict", "a.cpsp", "b.cpsp", "--cache", "128"],
        &dir,
    ));
    assert!(s.contains("natural partition"), "{s}");
    assert!(s.contains("group miss ratio"), "{s}");

    let s = stdout(&cps(
        &["optimize", "a.cpsp", "b.cpsp", "--units", "128"],
        &dir,
    ));
    assert!(s.contains("optimal partition"), "{s}");
    // The loop's working set (60) must be covered by its allocation.
    let loop_line = s.lines().find(|l| l.starts_with("loop60")).expect("row");
    let units: usize = loop_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        units >= 60,
        "loop60 should get its working set, got {units}"
    );

    // Baseline and maxmin variants run too.
    stdout(&cps(
        &[
            "optimize",
            "a.cpsp",
            "b.cpsp",
            "--units",
            "128",
            "--baseline",
            "natural",
        ],
        &dir,
    ));
    stdout(&cps(
        &[
            "optimize",
            "a.cpsp",
            "b.cpsp",
            "--units",
            "64",
            "--bpu",
            "2",
            "--objective",
            "maxmin",
        ],
        &dir,
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_not_panicked() {
    let dir = tempdir("errors");
    // Unknown command.
    let out = cps(&["frobnicate"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // Missing file.
    let out = cps(&["show", "missing.cpsp"], &dir);
    assert!(!out.status.success());
    // Bad workload spec.
    let out = cps(
        &[
            "gen",
            "--workload",
            "nonsense:1",
            "--len",
            "10",
            "--out",
            "x",
        ],
        &dir,
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unrecognized workload"));
    // Garbage profile file.
    std::fs::write(dir.join("junk.cpsp"), b"not a profile").unwrap();
    let out = cps(&["predict", "junk.cpsp", "--cache", "64"], &dir);
    assert!(!out.status.success());
    // Cache bigger than the profile's sampled range.
    stdout(&cps(
        &[
            "gen",
            "--workload",
            "loop:10",
            "--len",
            "1000",
            "--out",
            "t.trace",
        ],
        &dir,
    ));
    stdout(&cps(
        &[
            "profile",
            "t.trace",
            "--out",
            "t.cpsp",
            "--max-blocks",
            "32",
        ],
        &dir,
    ));
    let out = cps(&["optimize", "t.cpsp", "--units", "64"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("re-profile"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampled_profiling_and_stall_advice() {
    let dir = tempdir("sampled");
    stdout(&cps(
        &[
            "gen",
            "--workload",
            "loop:60",
            "--len",
            "40000",
            "--out",
            "a.trace",
            "--seed",
            "1",
        ],
        &dir,
    ));
    stdout(&cps(
        &[
            "gen",
            "--workload",
            "loop:60",
            "--len",
            "40000",
            "--out",
            "b.trace",
            "--seed",
            "2",
        ],
        &dir,
    ));
    // Burst-sampled profile still sees the 60-block working set.
    let s = stdout(&cps(
        &[
            "profile",
            "a.trace",
            "--out",
            "a.cpsp",
            "--max-blocks",
            "128",
            "--burst",
            "2000",
            "--ratio",
            "5",
            "--name",
            "A",
        ],
        &dir,
    ));
    assert!(s.contains("60 distinct blocks"), "{s}");
    stdout(&cps(
        &[
            "profile",
            "b.trace",
            "--out",
            "b.cpsp",
            "--max-blocks",
            "128",
            "--name",
            "B",
        ],
        &dir,
    ));
    // Two 60-block loops in 100 blocks: the advisor must serialize.
    let s = stdout(&cps(&["stall", "a.cpsp", "b.cpsp", "--cache", "100"], &dir));
    assert!(s.contains("STALL"), "{s}");
    assert!(s.contains("; then "), "{s}");
    // In 200 blocks they co-run happily.
    let s = stdout(&cps(&["stall", "a.cpsp", "b.cpsp", "--cache", "200"], &dir));
    assert!(s.contains("co-run freely"), "{s}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn phase_plan_tracks_alternating_working_sets() {
    let dir = tempdir("phaseplan");
    // Build two anti-phase traces by concatenating generated phases.
    let gen = |ws: u64, seed: u64| {
        stdout(&cps(
            &[
                "gen",
                "--workload",
                &format!("loop:{ws}"),
                "--len",
                "8000",
                "--out",
                "tmp.trace",
                "--seed",
                &seed.to_string(),
            ],
            &dir,
        ));
        std::fs::read_to_string(dir.join("tmp.trace")).unwrap()
    };
    let strip = |s: String| {
        s.lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let big = strip(gen(100, 1));
    let small = strip(gen(4, 2));
    std::fs::write(dir.join("a.trace"), format!("{big}\n{small}\n")).unwrap();
    std::fs::write(dir.join("b.trace"), format!("{small}\n{big}\n")).unwrap();
    let s = stdout(&cps(
        &[
            "phase-plan",
            "a.trace",
            "b.trace",
            "--units",
            "120",
            "--segments",
            "2",
        ],
        &dir,
    ));
    assert!(s.contains("repartitionings"), "{s}");
    // Segment 0: program a runs the 100-loop and must get >= 100 units.
    let seg0: Vec<usize> = s
        .lines()
        .find(|l| l.starts_with("0 "))
        .expect("segment 0 row")
        .split_whitespace()
        .skip(1)
        .map(|v| v.parse().unwrap())
        .collect();
    assert!(seg0[0] >= 100, "segment 0 gives a its working set: {s}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_online_sharded_reports_speedup_and_stays_deterministic() {
    let dir = tempdir("sharded");
    let s = stdout(&cps(
        &[
            "replay-online",
            "--workloads",
            "loop:40,zipf:200:0.8",
            "--units",
            "64",
            "--len",
            "20000",
            "--epoch",
            "5000",
            "--shards",
            "3",
        ],
        &dir,
    ));
    assert!(s.contains("cumulative miss ratio"), "{s}");
    // The sharded section appears, with both rows and the identity check.
    assert!(s.contains("allocations identical"), "{s}");
    assert!(s.contains("3-shard"), "{s}");
    assert!(s.contains("speedup"), "{s}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_online_queued_ingest_reports_backpressure() {
    let dir = tempdir("queued");
    let s = stdout(&cps(
        &[
            "replay-online",
            "--workloads",
            "loop:40,zipf:200:0.8",
            "--units",
            "64",
            "--len",
            "12000",
            "--epoch",
            "4000",
            "--shards",
            "2",
            "--ingest",
            "queued",
            "--queue-cap",
            "8",
        ],
        &dir,
    ));
    assert!(s.contains("2-shard queued"), "{s}");
    assert!(s.contains("ingest backpressure"), "{s}");
    assert!(s.contains("8-deep queues"), "{s}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_online_rejects_degenerate_knobs_with_friendly_errors() {
    let dir = tempdir("degenerate");
    let base = [
        "replay-online",
        "--workloads",
        "loop:40,zipf:200:0.8",
        "--units",
        "32",
    ];
    let degenerate: &[&[&str]] = &[
        &["--shards", "0"],
        &["--epoch", "0"],
        &["--units", "0"],
        &["--len", "0"],
        &["--shards", "2", "--ingest", "queued", "--queue-cap", "0"],
        &["--ingest", "queued"], // queued needs --shards
        &["--ingest", "bogus"],
    ];
    for extra in degenerate {
        let args: Vec<&str> = base.iter().chain(extra.iter()).copied().collect();
        let out = cps(&args, &dir);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{extra:?} should fail:\n{stderr}");
        assert!(
            stderr.contains("cps:"),
            "{extra:?} should report through the CLI error path:\n{stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{extra:?} must not panic:\n{stderr}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The observability round trip: `replay-online --journal` writes a
/// journal that `cps inspect` parses and validates, and whose totals
/// match an in-process engine run over the identical (seeded,
/// deterministic) stream. The metrics snapshot agrees too.
#[test]
fn replay_online_journal_round_trips_through_inspect() {
    use cache_partition_sharing::prelude::*;

    let dir = tempdir("journal");
    let s = stdout(&cps(
        &[
            "replay-online",
            "--workloads",
            "loop:40,zipf:200:0.8",
            "--units",
            "64",
            "--len",
            "20000",
            "--epoch",
            "5000",
            "--seed",
            "7",
            "--shards",
            "2",
            "--ingest",
            "queued",
            "--queue-cap",
            "16",
            "--journal",
            "run.jsonl",
            "--metrics-out",
            "metrics.prom",
        ],
        &dir,
    ));
    assert!(s.contains("journal: 4 epochs (queued engine)"), "{s}");
    assert!(s.contains("metrics:"), "{s}");

    // `cps inspect` accepts it and prints every section.
    let s = stdout(&cps(&["inspect", "run.jsonl"], &dir));
    assert!(s.contains("journal OK: queued engine"), "{s}");
    assert!(s.contains("stage time breakdown"), "{s}");
    assert!(s.contains("allocation churn"), "{s}");
    assert!(s.contains("tenant miss-ratio trajectories"), "{s}");
    assert!(s.contains("ingest backpressure"), "{s}");

    // Parse the journal in-process and replay the identical stream
    // through the engine: totals and trajectory must match exactly.
    // The comparator is the buffered 2-shard engine — report-identical
    // to the queued run the journal describes (realized hit counts are
    // shard-layout-dependent, so a single-engine run would not match).
    let text = std::fs::read_to_string(dir.join("run.jsonl")).unwrap();
    let journal = Journal::parse(&text).expect("journal validates");
    let traces = [
        WorkloadSpec::SequentialLoop { working_set: 40 }.generate(20_000, 8),
        WorkloadSpec::Zipfian {
            region: 200,
            alpha: 0.8,
        }
        .generate(20_000, 9),
    ];
    let refs: Vec<&Trace> = traces.iter().collect();
    let co = interleave_proportional(&refs, &[1.0, 1.0], 20_000);
    let cfg = EngineConfig::new(CacheConfig::new(64, 1), 5_000)
        .policy(Policy::Optimal)
        .objective(Objective::MissRatioSum)
        .decay(0.5)
        .hysteresis(1);
    let mut engine = ShardedEngine::new(cfg, 2, 2);
    engine.run(co.tenant_accesses());
    let report = engine.finish();

    assert_eq!(journal.header.tenants, 2);
    assert_eq!(journal.header.units, 64);
    assert_eq!(journal.header.shards, 2);
    assert_eq!(journal.epochs.len(), report.epochs.len());
    assert_eq!(
        journal.summary.accesses,
        report.totals.iter().map(|c| c.accesses).sum::<u64>()
    );
    assert_eq!(
        journal.summary.misses,
        report.totals.iter().map(|c| c.misses).sum::<u64>()
    );
    assert_eq!(journal.summary.repartitions, report.repartition_count());
    for (je, re) in journal.epochs.iter().zip(&report.epochs) {
        assert_eq!(je.allocation, re.allocation, "epoch {}", re.epoch);
        let accesses: Vec<u64> = re.per_tenant.iter().map(|c| c.accesses).collect();
        let misses: Vec<u64> = re.per_tenant.iter().map(|c| c.misses).collect();
        assert_eq!(je.accesses, accesses, "epoch {}", re.epoch);
        assert_eq!(je.misses, misses, "epoch {}", re.epoch);
        assert!(je.backpressure.is_some(), "queued runs journal deltas");
    }

    // The Prometheus snapshot counted the same stream.
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
    assert!(
        prom.contains(&format!(
            "cps_engine_accesses_total {}",
            journal.summary.accesses
        )),
        "{prom}"
    );
    assert!(
        prom.contains("cps_engine_stage_solve_nanos_total"),
        "{prom}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Schema drift is a hard `cps inspect` failure, not a warning: a
/// truncated journal, tampered totals, and an unknown version must all
/// exit nonzero.
#[test]
fn inspect_rejects_truncated_tampered_and_future_journals() {
    let dir = tempdir("inspect-drift");
    stdout(&cps(
        &[
            "replay-online",
            "--workloads",
            "loop:40,zipf:200:0.8",
            "--units",
            "32",
            "--len",
            "8000",
            "--epoch",
            "4000",
            "--journal",
            "good.jsonl",
        ],
        &dir,
    ));
    stdout(&cps(&["inspect", "good.jsonl"], &dir));
    let good = std::fs::read_to_string(dir.join("good.jsonl")).unwrap();
    let lines: Vec<&str> = good.lines().collect();

    // Truncated: summary line missing.
    let truncated = lines[..lines.len() - 1].join("\n");
    std::fs::write(dir.join("truncated.jsonl"), truncated).unwrap();
    let out = cps(&["inspect", "truncated.jsonl"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("summary"));

    // Tampered: a miss count changed, so the totals no longer add up.
    let tampered = good.replacen("\"misses\":[", "\"misses\":[1000000,", 1);
    assert_ne!(tampered, good, "tamper must hit an epoch line");
    std::fs::write(dir.join("tampered.jsonl"), tampered).unwrap();
    let out = cps(&["inspect", "tampered.jsonl"], &dir);
    assert!(!out.status.success());

    // Future version: readers must refuse rather than guess.
    let future = good.replacen("\"v\":3", "\"v\":4", 1);
    assert_ne!(future, good, "version bump must hit the header");
    std::fs::write(dir.join("future.jsonl"), future).unwrap();
    let out = cps(&["inspect", "future.jsonl"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("version"));

    // Old schema: a version-1 journal (pre-objective, no epoch
    // `objective` field) is refused with a clear pointer, not guessed
    // at. Strip the newer fields so the line is a faithful v1 relic.
    let old = good
        .replace("\"v\":3", "\"v\":1")
        .replace(",\"objective\":\"miss-ratio\"", "");
    assert_ne!(old, good);
    std::fs::write(dir.join("old.jsonl"), old).unwrap();
    let out = cps(&["inspect", "old.jsonl"], &dir);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("journal version 1") && stderr.contains("speaks 3"),
        "v1 journals need a clear upgrade message:\n{stderr}"
    );

    // Garbage is a parse error, not a panic.
    std::fs::write(dir.join("junk.jsonl"), "not json at all\n").unwrap();
    let out = cps(&["inspect", "junk.jsonl"], &dir);
    assert!(!out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Kills the daemon if a test fails before it shuts down cleanly.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The serving loop end to end, against a real daemon on a real
/// ephemeral port: `cps bench-net` streams the standard 4-tenant mix
/// to `cps serve`, verifies report identity itself, and the journals —
/// the one the daemon writes, the one the client receives over the
/// wire, and the one `cps replay-online` writes for the same
/// trace/seed/config — all describe the identical run.
#[test]
fn serve_and_bench_net_round_trip_report_identically() {
    use cache_partition_sharing::prelude::*;

    let dir = tempdir("serve");
    let mut child = ChildGuard(
        Command::new(env!("CARGO_BIN_EXE_cps"))
            .args([
                "serve",
                "--tenants",
                "4",
                "--units",
                "32",
                "--bpu",
                "4",
                "--epoch",
                "2000",
                "--port",
                "auto",
                "--port-file",
                "port.txt",
                "--journal",
                "served.jsonl",
            ])
            .current_dir(&dir)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn cps serve"),
    );

    // The daemon publishes its bound address once the socket is live.
    let addr = {
        let path = dir.join("port.txt");
        let mut found = None;
        for _ in 0..200 {
            match std::fs::read_to_string(&path) {
                Ok(text) if text.trim().contains(':') => {
                    found = Some(text.trim().to_string());
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        }
        found.expect("cps serve never wrote --port-file")
    };
    let port = addr.rsplit(':').next().unwrap();

    let workloads = "loop:24,zipf:150:0.8,walk:300:30:500,uniform:400";
    let s = stdout(&cps(
        &[
            "bench-net",
            "--workloads",
            workloads,
            "--rates",
            "1.0,2.0,1.0,1.5",
            "--len",
            "20000",
            "--seed",
            "42",
            "--port",
            port,
            "--journal-out",
            "bench.jsonl",
        ],
        &dir,
    ));
    assert!(s.contains("report identity: OK"), "{s}");

    // SHUTDOWN tears the daemon down; it must exit cleanly on its own.
    let status = {
        let mut status = None;
        for _ in 0..200 {
            if let Some(st) = child.0.try_wait().expect("try_wait") {
                status = Some(st);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        status.expect("cps serve did not exit after SHUTDOWN")
    };
    assert!(status.success(), "cps serve exited nonzero");

    // The daemon's --journal file and the client's wire copy are the
    // same bytes.
    let served = std::fs::read_to_string(dir.join("served.jsonl")).unwrap();
    let benched = std::fs::read_to_string(dir.join("bench.jsonl")).unwrap();
    assert_eq!(served, benched, "wire journal differs from --journal file");

    // `cps inspect` cross-validates the served journal unchanged.
    let s = stdout(&cps(&["inspect", "served.jsonl"], &dir));
    assert!(s.contains("journal OK: single engine"), "{s}");
    assert!(s.contains("20000 accesses"), "{s}");

    // And the served run is report-identical to `cps replay-online` on
    // the same trace, seed, and engine config.
    stdout(&cps(
        &[
            "replay-online",
            "--workloads",
            workloads,
            "--rates",
            "1.0,2.0,1.0,1.5",
            "--len",
            "20000",
            "--seed",
            "42",
            "--units",
            "32",
            "--bpu",
            "4",
            "--epoch",
            "2000",
            "--journal",
            "replayed.jsonl",
        ],
        &dir,
    ));
    let replayed = std::fs::read_to_string(dir.join("replayed.jsonl")).unwrap();
    assert_eq!(
        identity_of_journal(&Journal::parse(&served).unwrap()),
        identity_of_journal(&Journal::parse(&replayed).unwrap()),
        "served run must be report-identical to replay-online"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_and_bench_net_reject_degenerate_flags_with_friendly_errors() {
    let dir = tempdir("serve-flags");
    let cases: &[(&[&str], &str)] = &[
        (
            &["serve", "--tenants", "0", "--units", "32", "--port", "auto"],
            "--tenants",
        ),
        (
            &["serve", "--tenants", "2", "--units", "0", "--port", "auto"],
            "--units",
        ),
        (
            &["serve", "--tenants", "2", "--units", "32", "--port", "0"],
            "auto",
        ),
        (
            &["serve", "--tenants", "2", "--units", "32", "--port", "nope"],
            "--port",
        ),
        (&["serve", "--tenants", "2", "--units", "32"], "--port"),
        (
            &[
                "serve",
                "--tenants",
                "2",
                "--units",
                "32",
                "--port",
                "auto",
                "--max-conns",
                "0",
            ],
            "--max-conns",
        ),
        (
            &[
                "serve",
                "--tenants",
                "2",
                "--units",
                "32",
                "--port",
                "auto",
                "--idle-timeout",
                "0",
            ],
            "--idle-timeout",
        ),
        (
            &[
                "serve",
                "--tenants",
                "2",
                "--units",
                "32",
                "--port",
                "auto",
                "--proto",
                "1",
            ],
            "protocol version",
        ),
        (
            &[
                "serve",
                "--tenants",
                "2",
                "--units",
                "32",
                "--port",
                "auto",
                "--shards",
                "0",
            ],
            "--shards",
        ),
        (
            &[
                "bench-net",
                "--workloads",
                "loop:4,loop:8",
                "--port",
                "1",
                "--batch",
                "0",
            ],
            "--batch",
        ),
        (
            &[
                "bench-net",
                "--workloads",
                "loop:4,loop:8",
                "--port",
                "1",
                "--len",
                "0",
            ],
            "--len",
        ),
        (&["bench-net", "--workloads", "loop:4,loop:8"], "--port"),
        (
            &[
                "bench-net",
                "--workloads",
                "loop:4,loop:8",
                "--port",
                "1",
                "--rates",
                "1.0",
            ],
            "rates",
        ),
    ];
    for (args, needle) in cases {
        let out = cps(args, &dir);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{args:?} should fail:\n{stderr}");
        assert!(
            stderr.contains("cps:"),
            "{args:?} should report through the CLI error path:\n{stderr}"
        );
        assert!(
            stderr.contains(needle),
            "{args:?} should mention `{needle}`:\n{stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{args:?} must not panic:\n{stderr}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The stdio satellites: `--metrics-out -` streams the snapshot to
/// stdout, and `cps inspect -` consumes a journal from stdin.
#[test]
fn metrics_stream_to_stdout_and_inspect_reads_stdin() {
    let dir = tempdir("stdio");
    let s = stdout(&cps(
        &[
            "replay-online",
            "--workloads",
            "loop:40,zipf:200:0.8",
            "--units",
            "32",
            "--len",
            "8000",
            "--epoch",
            "4000",
            "--journal",
            "run.jsonl",
            "--metrics-out",
            "-",
        ],
        &dir,
    ));
    assert!(
        s.contains("\"metric\":\"cps_engine_accesses_total\""),
        "stdout snapshots render as JSONL: {s}"
    );

    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_cps"))
        .args(["inspect", "-"])
        .current_dir(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn cps inspect -");
    let journal = std::fs::read_to_string(dir.join("run.jsonl")).unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(journal.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let s = stdout(&out);
    assert!(s.contains("journal OK"), "{s}");
    assert!(s.contains("stage time breakdown"), "{s}");

    // Garbage on stdin is a parse error naming <stdin>, not a panic.
    let mut child = Command::new(env!("CARGO_BIN_EXE_cps"))
        .args(["inspect", "-"])
        .current_dir(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn cps inspect -");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"not a journal\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("<stdin>"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_parser_accepts_hex_and_comments() {
    let dir = tempdir("parser");
    std::fs::write(dir.join("hex.trace"), "# comment\n0x10\n16\n\n0xFF\n255\n").unwrap();
    let s = stdout(&cps(
        &[
            "profile",
            "hex.trace",
            "--out",
            "hex.cpsp",
            "--max-blocks",
            "16",
        ],
        &dir,
    ));
    // 0x10 == 16 and 0xFF == 255: only 2 distinct blocks.
    assert!(s.contains("2 distinct blocks"), "{s}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The cluster loop end to end in local mode: a 2-node coordinator run
/// whose journal `cps inspect` validates unchanged under the flat
/// schema.
#[test]
fn cluster_local_mode_runs_and_inspects() {
    let dir = tempdir("cluster-local");
    let s = stdout(&cps(
        &[
            "cluster",
            "--workloads",
            "loop:24,zipf:150:0.8,walk:300:30:500,uniform:400",
            "--units",
            "32",
            "--bpu",
            "4",
            "--len",
            "30000",
            "--epoch",
            "3000",
            "--nodes",
            "2",
            "--node-capacity",
            "32",
            "--rates",
            "1.0,2.0,1.0,1.5",
            "--journal",
            "cluster.jsonl",
            "--metrics-out",
            "cluster-metrics.txt",
        ],
        &dir,
    ));
    assert!(s.contains("local (2 nodes)"), "{s}");
    assert!(s.contains("10 epochs"), "{s}");

    let s = stdout(&cps(&["inspect", "cluster.jsonl"], &dir));
    assert!(s.contains("journal OK: cluster engine"), "{s}");
    assert!(s.contains("2 shard(s)"), "one journal shard per node: {s}");

    let metrics = std::fs::read_to_string(dir.join("cluster-metrics.txt")).unwrap();
    assert!(
        metrics.contains("cps_cluster_epochs_total"),
        "cluster counters exported: {metrics}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Remote mode against live daemons: two `cps serve` processes on
/// ephemeral ports, externally clocked by `cps cluster --connect`.
/// Both daemons must exit cleanly after the coordinator's shutdown.
#[test]
fn cluster_remote_mode_drives_live_daemons() {
    let dir = tempdir("cluster-remote");
    let spawn_node = |port_file: &str| {
        ChildGuard(
            Command::new(env!("CARGO_BIN_EXE_cps"))
                .args([
                    "serve",
                    "--tenants",
                    "2",
                    "--units",
                    "16",
                    "--epoch",
                    "1000000000",
                    "--port",
                    "auto",
                    "--port-file",
                    port_file,
                ])
                .current_dir(&dir)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn cps serve"),
        )
    };
    let mut node0 = spawn_node("n0.txt");
    let mut node1 = spawn_node("n1.txt");
    let read_addr = |name: &str| {
        let path = dir.join(name);
        for _ in 0..200 {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if text.trim().contains(':') {
                    return text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!("daemon never wrote {name}");
    };
    let (a0, a1) = (read_addr("n0.txt"), read_addr("n1.txt"));

    let s = stdout(&cps(
        &[
            "cluster",
            "--workloads",
            "loop:6,uniform:48",
            "--units",
            "16",
            "--len",
            "10000",
            "--epoch",
            "2000",
            "--connect",
            &format!("{a0},{a1}"),
            "--journal",
            "remote.jsonl",
        ],
        &dir,
    ));
    assert!(s.contains("remote ("), "{s}");
    assert!(s.contains("5 epochs"), "{s}");

    let s = stdout(&cps(&["inspect", "remote.jsonl"], &dir));
    assert!(s.contains("journal OK: cluster engine"), "{s}");

    // The coordinator's finish shuts both daemons down.
    for (name, child) in [("node0", &mut node0), ("node1", &mut node1)] {
        let mut status = None;
        for _ in 0..200 {
            if let Some(st) = child.0.try_wait().expect("try_wait") {
                status = Some(st);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        let status = status.unwrap_or_else(|| panic!("{name} did not exit after shutdown"));
        assert!(status.success(), "{name} exited nonzero");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Degenerate cluster flags die with friendly one-line errors, never a
/// panic or a hung daemon connection.
#[test]
fn cluster_rejects_degenerate_flags_with_friendly_errors() {
    let dir = tempdir("cluster-flags");
    let fails = |args: &[&str], needle: &str| {
        let out = cps(args, &dir);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    };
    fn with(extra: &[&'static str]) -> Vec<&'static str> {
        let mut v = vec![
            "cluster",
            "--workloads",
            "loop:24,zipf:150:0.8",
            "--units",
            "32",
        ];
        v.extend_from_slice(extra);
        v
    }
    fails(&with(&["--nodes", "0"]), "--nodes must be at least 1");
    fails(
        &with(&["--nodes", "3"]),
        "empty nodes can never receive budget",
    );
    fails(
        &with(&["--nodes", "2", "--node-capacity", "8"]),
        "cannot host a 32-unit cluster",
    );
    fails(
        &with(&["--nodes", "2", "--node-capacity", "1"]),
        "below the 2-tenant count",
    );
    fails(
        &with(&["--connect", "127.0.0.1:7001,127.0.0.1:7001"]),
        "twice",
    );
    fails(
        &with(&["--connect", "127.0.0.1:7001", "--nodes", "2"]),
        "--nodes only applies to local mode",
    );
    fails(
        &with(&["--connect", "127.0.0.1:7001", "--node-capacity", "8"]),
        "--node-capacity only applies to local mode",
    );
    fails(
        &with(&["--migrate-threshold", "nope"]),
        "bad --migrate-threshold",
    );
    fails(&with(&["--placement", "random"]), "unknown --placement");
    fails(
        &["cluster", "--workloads", "loop:24", "--units", "32"],
        "at least two comma-separated workloads",
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The tournament round trip: `cps tournament --journal` writes a
/// tournament journal that `cps inspect` recognizes by its first-line
/// kind and renders back as the same comparison table.
#[test]
fn tournament_journals_round_trip_through_inspect() {
    let dir = tempdir("tournament");
    let out = cps(
        &[
            "tournament",
            "--objectives",
            "miss-ratio,utility,value-weighted:1,2,4",
            "--programs",
            "5",
            "--group-size",
            "3",
            "--len",
            "6000",
            "--units",
            "16",
            "--bpu",
            "8",
            "--journal",
            "t.jsonl",
        ],
        &dir,
    );
    let table = stdout(&out);
    // One row per objective × non-optimal scheme, every objective named.
    for objective in ["miss-ratio", "utility:0.5", "value-weighted:1,2,4"] {
        assert!(table.contains(objective), "{objective} missing:\n{table}");
    }
    for versus in [
        "Equal",
        "Natural",
        "STTW",
        "Equal baseline",
        "Natural baseline",
    ] {
        assert!(table.contains(versus), "{versus} missing:\n{table}");
    }
    assert!(
        table.contains("10 per objective"),
        "C(5,3) = 10 groups:\n{table}"
    );

    let inspected = stdout(&cps(&["inspect", "t.jsonl"], &dir));
    assert!(inspected.contains("tournament journal OK"), "{inspected}");
    // The rendered table is byte-identical to the producer's.
    assert_eq!(
        inspected.trim_start_matches("tournament journal OK\n"),
        table,
        "inspect must render the producer's table"
    );

    // A truncated journal (an announced objective with no rows) fails
    // validation, and version drift is refused like the epoch journal.
    let good = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
    let lines: Vec<&str> = good.lines().collect();
    std::fs::write(dir.join("cut.jsonl"), lines[..6].join("\n")).unwrap();
    let out = cps(&["inspect", "cut.jsonl"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no rows"));
    std::fs::write(dir.join("v1.jsonl"), good.replace("\"v\":3", "\"v\":1")).unwrap();
    let out = cps(&["inspect", "v1.jsonl"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("journal version 1"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Degenerate tournament and objective flags die with friendly
/// one-line errors: unknown objectives, bad weights, weight counts
/// that don't match the group, impossible group sizes.
#[test]
fn tournament_and_objective_flags_reject_degenerate_values() {
    let dir = tempdir("tournament-flags");
    let fails = |args: &[&str], needle: &str| {
        let out = cps(args, &dir);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    };
    fn with(extra: &[&'static str]) -> Vec<&'static str> {
        let mut v = vec!["tournament"];
        v.extend_from_slice(extra);
        v
    }
    fails(
        &with(&["--objectives", "latency"]),
        "bad --objectives: unknown objective",
    );
    fails(&with(&["--objectives", "utility:2.0"]), "bad --objectives");
    fails(
        &with(&["--objectives", "value-weighted:1,-2,3,4"]),
        "bad --objectives",
    );
    // Three weights for four-tenant groups: counted and said plainly.
    fails(
        &with(&["--objectives", "value-weighted:1,2,3"]),
        "3 weights",
    );
    fails(
        &with(&["--objectives", "miss-ratio,miss-ratio-sum"]),
        "listed twice",
    );
    fails(&with(&["--objectives", "miss-ratio,"]), "empty objective");
    fails(&with(&["--objectives", "2,miss-ratio"]), "stray number");
    fails(&with(&["--group-size", "0"]), "bad --group-size");
    fails(
        &with(&["--group-size", "7", "--programs", "5"]),
        "bad --group-size",
    );
    fails(&with(&["--programs", "9999"]), "bad --programs");
    fails(&with(&["--units", "0"]), "at least one block");

    // `--objective` on the single-run commands speaks the same grammar
    // and phrases failures as flag errors too.
    fails(
        &[
            "replay-online",
            "--workloads",
            "loop:24,zipf:150:0.8",
            "--units",
            "16",
            "--objective",
            "latency",
        ],
        "bad --objective: unknown objective",
    );
    fails(
        &[
            "replay-online",
            "--workloads",
            "loop:24,zipf:150:0.8",
            "--units",
            "16",
            "--objective",
            "value-weighted:1,2,3",
        ],
        "3 weights",
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The live telemetry plane, end to end against a real daemon:
/// `cps top --once` snapshots via SUBSCRIBE, `cps bench-net` rides an
/// observer and an HTTP scraper along the run without breaking report
/// identity, and the finished journal exports a Chrome trace.
#[test]
fn live_telemetry_smoke_top_observe_scrape_and_chrome_export() {
    let dir = tempdir("telemetry");
    let mut child = ChildGuard(
        Command::new(env!("CARGO_BIN_EXE_cps"))
            .args([
                "serve",
                "--tenants",
                "2",
                "--units",
                "16",
                "--epoch",
                "2000",
                "--port",
                "auto",
                "--port-file",
                "port.txt",
                "--telemetry-port",
                "auto",
                "--telemetry-port-file",
                "tport.txt",
                "--journal",
                "served.jsonl",
            ])
            .current_dir(&dir)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn cps serve"),
    );
    let wait_addr = |name: &str| {
        let path = dir.join(name);
        for _ in 0..200 {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if text.trim().contains(':') {
                    return text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!("cps serve never wrote {name}");
    };
    let addr = wait_addr("port.txt");
    let taddr = wait_addr("tport.txt");
    let port = addr.rsplit(':').next().unwrap();

    // A scriptable snapshot before any records: the subscribe ack and
    // the immediate full metrics frame are enough to render.
    let s = stdout(&cps(&["top", &addr, "--once", "true"], &dir));
    assert!(s.contains("single engine, 2 tenants"), "{s}");
    assert!(s.contains("waiting for the first epoch boundary"), "{s}");

    // The benchmark run with both telemetry riders attached.
    let s = stdout(&cps(
        &[
            "bench-net",
            "--workloads",
            "loop:12,zipf:100:0.8",
            "--len",
            "12000",
            "--port",
            port,
            "--observe",
            "true",
            "--scrape",
            &taddr,
        ],
        &dir,
    ));
    assert!(s.contains("report identity: OK"), "{s}");
    assert!(s.contains("epoch frames"), "{s}");
    assert!(s.contains("all 200 OK"), "{s}");

    for _ in 0..200 {
        if child.0.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // The journal the watched daemon wrote still inspects clean and
    // exports a Chrome trace.
    let s = stdout(&cps(
        &["inspect", "served.jsonl", "--chrome-trace", "trace.json"],
        &dir,
    ));
    assert!(s.contains("chrome trace:"), "{s}");
    let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    assert!(trace.contains("\"cat\":\"stage\""), "{trace}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `cps inspect --follow` tails a journal another process is still
/// writing: epochs print as they land and the summary line ends the
/// tail with a zero exit.
#[test]
fn inspect_follow_tails_a_growing_journal() {
    let dir = tempdir("follow");
    stdout(&cps(
        &[
            "replay-online",
            "--workloads",
            "loop:12,uniform:80",
            "--len",
            "12000",
            "--units",
            "16",
            "--epoch",
            "2000",
            "--journal",
            "full.jsonl",
        ],
        &dir,
    ));
    let full = std::fs::read_to_string(dir.join("full.jsonl")).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() >= 4, "need a few lines to tail");

    // Start the tail against a half-written copy...
    let half = lines.len() / 2;
    let growing = dir.join("growing.jsonl");
    std::fs::write(&growing, format!("{}\n", lines[..half].join("\n"))).unwrap();
    let tail = Command::new(env!("CARGO_BIN_EXE_cps"))
        .args(["inspect", "growing.jsonl", "--follow", "true"])
        .current_dir(&dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn follow");
    std::thread::sleep(std::time::Duration::from_millis(300));

    // ...then finish the file; the tail must notice, print the rest,
    // and exit on the summary.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&growing)
        .unwrap();
    writeln!(f, "{}", lines[half..].join("\n")).unwrap();
    drop(f);
    let out = tail.wait_with_output().expect("follow exits");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "follow failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(s.contains("following growing.jsonl"), "{s}");
    assert!(s.contains("run finished:"), "{s}");
    assert!(s.contains("12000 accesses"), "{s}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_flags_reject_degenerate_values() {
    let dir = tempdir("telemetry-flags");
    std::fs::write(
        dir.join("t.jsonl"),
        "{\"v\":3,\"kind\":\"tournament\",\"note\":\"sniff only\"}\n",
    )
    .unwrap();
    std::fs::write(dir.join("empty.jsonl"), "").unwrap();
    let cases: &[(&[&str], &str)] = &[
        (
            &[
                "serve",
                "--tenants",
                "2",
                "--units",
                "16",
                "--port",
                "auto",
                "--telemetry-port",
                "0",
            ],
            "--telemetry-port",
        ),
        (
            &[
                "serve",
                "--tenants",
                "2",
                "--units",
                "16",
                "--port",
                "auto",
                "--telemetry-port",
                "nope",
            ],
            "--telemetry-port",
        ),
        (
            &[
                "serve",
                "--tenants",
                "2",
                "--units",
                "16",
                "--port",
                "auto",
                "--telemetry-port-file",
                "t.txt",
            ],
            "--telemetry-port-file needs --telemetry-port",
        ),
        (&["top"], "usage: cps top"),
        (&["top", "127.0.0.1:1", "--refresh", "0"], "--refresh"),
        (&["top", "127.0.0.1:1", "--once", "maybe"], "--once"),
        (&["inspect", "empty.jsonl", "--follow", "maybe"], "--follow"),
        (
            &[
                "inspect",
                "empty.jsonl",
                "--follow",
                "true",
                "--chrome-trace",
                "out.json",
            ],
            "--chrome-trace",
        ),
        (
            &["inspect", "t.jsonl", "--chrome-trace", "out.json"],
            "tournament",
        ),
        (
            &[
                "bench-net",
                "--workloads",
                "loop:4,loop:8",
                "--port",
                "1",
                "--observe",
                "maybe",
            ],
            "--observe",
        ),
    ];
    for (args, needle) in cases {
        let out = cps(args, &dir);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{args:?} should fail:\n{stderr}");
        assert!(
            stderr.contains(needle),
            "{args:?} should mention `{needle}`:\n{stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{args:?} must not panic:\n{stderr}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
