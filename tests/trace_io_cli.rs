//! End-to-end tests of the real-trace front door: `cps trace
//! gen/convert/stat`, `--trace-file` replays through `cps
//! replay-online` and `cps bench-net`, and the canonical-journal
//! identity that ties them all together — a generator-driven run, a
//! binary trace file, its text and CSV conversions, and a run served
//! over a live daemon must all describe the identical engine run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cps(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cps"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn cps")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cps-trace-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Kills the daemon if a test fails before it shuts down cleanly.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

const WORKLOADS: &str = "loop:24,zipf:150:0.8,uniform:300";
const GEN_FLAGS: &[&str] = &["--len", "30000", "--seed", "9", "--rates", "1.0,2.0,1.0"];

fn canonical(dir: &Path, journal: &str) -> String {
    let out = format!("{journal}.canon");
    let s = stdout(&cps(&["inspect", journal, "--canonical", &out], dir));
    assert!(s.contains("canonical journal"), "{s}");
    std::fs::read_to_string(dir.join(&out)).unwrap()
}

/// The tentpole identity chain, in process: the generator-driven
/// `replay-online --workloads` run, the same stream written to a binary
/// trace file by `cps trace gen` and replayed via `--trace-file`, and
/// the text/CSV conversions of that file all produce canonically
/// identical journals.
#[test]
fn generator_file_and_converted_replays_are_identical() {
    let dir = tempdir("identity");
    let engine = ["--units", "48", "--bpu", "2", "--epoch", "3000"];

    let mut args = vec!["replay-online", "--workloads", WORKLOADS];
    args.extend_from_slice(GEN_FLAGS);
    args.extend_from_slice(&engine);
    args.extend_from_slice(&["--journal", "gen.jsonl"]);
    stdout(&cps(&args, &dir));

    let mut args = vec!["trace", "gen", "--workloads", WORKLOADS, "--out", "t.bin"];
    args.extend_from_slice(GEN_FLAGS);
    let s = stdout(&cps(&args, &dir));
    assert!(s.contains("30000"), "{s}");

    for (file, to, extra) in [
        ("t.bin", "", &[][..]),
        ("t.txt", "text", &["--block-bytes", "1"][..]),
        ("t.csv", "csv", &["--block-bytes", "1"][..]),
    ] {
        let tag = &file[2..];
        if !to.is_empty() {
            stdout(&cps(
                &["trace", "convert", "t.bin", "--out", file, "--to", to],
                &dir,
            ));
        }
        let journal = format!("{tag}.jsonl");
        let mut args = vec!["replay-online", "--trace-file", file, "--tenants", "3"];
        args.extend_from_slice(&engine);
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--journal", &journal]);
        let s = stdout(&cps(&args, &dir));
        assert!(s.contains("trace read: 30000 records"), "{tag}: {s}");
        assert_eq!(
            canonical(&dir, "gen.jsonl"),
            canonical(&dir, &journal),
            "{tag} replay diverged from the generator run"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The same trace file served over the wire: `cps bench-net
/// --trace-file` streams it to a live `cps serve` daemon across
/// sequenced connections and verifies report identity itself.
#[test]
fn trace_file_serves_identically_over_the_wire() {
    let dir = tempdir("served");

    let mut args = vec!["trace", "gen", "--workloads", WORKLOADS, "--out", "t.bin"];
    args.extend_from_slice(GEN_FLAGS);
    stdout(&cps(&args, &dir));

    let mut child = ChildGuard(
        Command::new(env!("CARGO_BIN_EXE_cps"))
            .args([
                "serve",
                "--tenants",
                "3",
                "--units",
                "48",
                "--bpu",
                "2",
                "--epoch",
                "3000",
                "--port",
                "auto",
                "--port-file",
                "port.txt",
            ])
            .current_dir(&dir)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn cps serve"),
    );

    let addr = {
        let path = dir.join("port.txt");
        let mut found = None;
        for _ in 0..200 {
            match std::fs::read_to_string(&path) {
                Ok(text) if text.trim().contains(':') => {
                    found = Some(text.trim().to_string());
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        }
        found.expect("cps serve never wrote --port-file")
    };
    let port = addr.rsplit(':').next().unwrap();

    let s = stdout(&cps(
        &[
            "bench-net",
            "--trace-file",
            "t.bin",
            "--port",
            port,
            "--connections",
            "2",
        ],
        &dir,
    ));
    assert!(s.contains("trace read: 30000 records"), "{s}");
    assert!(s.contains("report identity: OK"), "{s}");

    // SHUTDOWN tears the daemon down; it must exit cleanly on its own.
    let status = {
        let mut status = None;
        for _ in 0..200 {
            if let Some(st) = child.0.try_wait().expect("try_wait") {
                status = Some(st);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        status.expect("cps serve did not exit after SHUTDOWN")
    };
    assert!(status.success(), "cps serve exited nonzero");
    std::fs::remove_dir_all(&dir).ok();
}

/// `cps trace stat` reads any of the three formats and reports the
/// stream's shape in one bounded pass.
#[test]
fn trace_stat_reports_the_stream_shape() {
    let dir = tempdir("stat");
    let mut args = vec!["trace", "gen", "--workloads", WORKLOADS, "--out", "t.bin"];
    args.extend_from_slice(GEN_FLAGS);
    stdout(&cps(&args, &dir));

    let s = stdout(&cps(&["trace", "stat", "t.bin"], &dir));
    assert!(s.contains("binary format"), "{s}");
    assert!(s.contains("records: 30000"), "{s}");
    assert!(s.contains("tenants: 3"), "{s}");
    assert!(s.contains("distinct blocks:"), "{s}");
    assert!(s.contains("block range:"), "{s}");

    stdout(&cps(
        &["trace", "convert", "t.bin", "--out", "t.csv", "--to", "csv"],
        &dir,
    ));
    let s = stdout(&cps(
        &["trace", "stat", "t.csv", "--block-bytes", "1"],
        &dir,
    ));
    assert!(s.contains("csv format"), "{s}");
    assert!(s.contains("records: 30000"), "{s}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Malformed input is a friendly, typed, nonzero-exit error — with the
/// offending line and byte offset — never a panic; `--lenient true`
/// skips past it and reports the skips.
#[test]
fn malformed_traces_fail_politely_and_leniently_skip() {
    let dir = tempdir("malformed");
    std::fs::write(
        dir.join("bad.csv"),
        "addr,tenant\n0x10,0\nbanana,0\n0x20,1\n",
    )
    .unwrap();

    let out = cps(
        &[
            "replay-online",
            "--trace-file",
            "bad.csv",
            "--tenants",
            "2",
            "--units",
            "8",
        ],
        &dir,
    );
    assert!(!out.status.success(), "strict replay of bad input passed");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "{err}");
    assert!(err.contains("banana"), "{err}");
    assert!(!err.contains("panicked"), "{err}");

    let s = stdout(&cps(
        &["trace", "stat", "bad.csv", "--lenient", "true"],
        &dir,
    ));
    assert!(s.contains("records: 2"), "{s}");
    assert!(s.contains("malformed"), "{s}");

    // A missing file is an error message, not a panic or a zero exit.
    let out = cps(&["trace", "stat", "no-such-file.bin"], &dir);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no-such-file.bin"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
