//! End-to-end pipeline validation: synthetic trace → HOTL analysis →
//! miss-ratio curve, cross-checked against the exact Olken curve and
//! direct LRU simulation.
//!
//! This is the repo's version of the accuracy claims the paper inherits
//! from Xiang et al.: the HOTL-derived MRC tracks the true LRU MRC.

use cache_partition_sharing::prelude::*;

/// Workloads with qualitatively different MRC shapes.
fn workloads() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("loop", WorkloadSpec::SequentialLoop { working_set: 50 }),
        (
            "zipf",
            WorkloadSpec::Zipfian {
                region: 300,
                alpha: 0.8,
            },
        ),
        ("uniform", WorkloadSpec::UniformRandom { region: 150 }),
        ("chase", WorkloadSpec::PointerChase { region: 80 }),
        ("stencil", WorkloadSpec::Stencil { rows: 12, cols: 10 }),
        (
            "mixture",
            WorkloadSpec::Mixture {
                parts: vec![
                    (0.9, WorkloadSpec::SequentialLoop { working_set: 30 }),
                    (0.1, WorkloadSpec::UniformRandom { region: 400 }),
                ],
            },
        ),
    ]
}

#[test]
fn hotl_mrc_tracks_exact_lru_mrc() {
    let len = 120_000;
    let max_blocks = 256;
    for (name, spec) in workloads() {
        let trace = spec.generate(len, 42);
        let profile = SoloProfile::from_trace(name, &trace.blocks, 1.0, max_blocks);
        let exact = exact_miss_ratio_curve(&trace.blocks, max_blocks);
        // Compare at a spread of sizes. HOTL averages over all windows
        // (including cold-start), so allow a modest absolute tolerance,
        // looser right at working-set cliffs where a ±1-block phase
        // difference flips the value.
        let mut total_err = 0.0;
        let mut n = 0;
        for c in (8..=max_blocks).step_by(8) {
            let got = profile.mrc.at(c);
            let want = exact[c];
            total_err += (got - want).abs();
            n += 1;
            assert!(
                (got - want).abs() < 0.25,
                "{name}: mr({c}) = {got} vs exact {want}"
            );
        }
        let mean_err = total_err / n as f64;
        assert!(mean_err < 0.03, "{name}: mean |HOTL - exact| = {mean_err}");
    }
}

#[test]
fn footprint_boundary_identities_hold_for_all_workloads() {
    for (name, spec) in workloads() {
        let trace = spec.generate(30_000, 7);
        let fp = Footprint::from_trace(&trace.blocks);
        assert_eq!(fp.at(0), 0.0, "{name}: fp(0)");
        assert!((fp.at(1) - 1.0).abs() < 1e-9, "{name}: fp(1)");
        let m = trace.distinct() as f64;
        assert!(
            (fp.at(trace.len()) - m).abs() < 1e-6,
            "{name}: fp(n) = {} vs m = {m}",
            fp.at(trace.len())
        );
        assert!(fp.curve().is_non_decreasing(), "{name}: monotone");
    }
}

#[test]
fn mrc_is_monotone_and_bounded_for_all_workloads() {
    for (name, spec) in workloads() {
        let trace = spec.generate(30_000, 3);
        let p = SoloProfile::from_trace(name, &trace.blocks, 1.0, 200);
        let c = p.mrc.to_curve();
        assert!(c.is_non_increasing(), "{name}: inclusion property");
        assert!(
            p.mrc.samples().iter().all(|r| (0.0..=1.0).contains(r)),
            "{name}: range"
        );
        assert!((p.mrc.at(0) - 1.0).abs() < 1e-9, "{name}: mr(0) = 1");
    }
}

#[test]
fn average_footprint_matches_direct_window_average() {
    // Cross-crate oracle: cps-hotl's closed form vs cps-trace's
    // window_wss enumeration.
    let trace = WorkloadSpec::Zipfian {
        region: 40,
        alpha: 0.6,
    }
    .generate(400, 11);
    let fp = Footprint::from_trace(&trace.blocks);
    for w in [1usize, 2, 5, 17, 100, 399] {
        let direct: f64 = (0..=(trace.len() - w))
            .map(|s| trace.window_wss(s, w) as f64)
            .sum::<f64>()
            / (trace.len() - w + 1) as f64;
        assert!(
            (fp.at(w) - direct).abs() < 1e-9,
            "w={w}: closed form {} vs direct {direct}",
            fp.at(w)
        );
    }
}

#[test]
fn profile_scales_with_trace_length_not_shape() {
    // The MRC of a stationary workload is (nearly) invariant to trace
    // length — the profile measures the program, not the sample size.
    let spec = WorkloadSpec::Zipfian {
        region: 200,
        alpha: 0.9,
    };
    let short = SoloProfile::from_trace("s", &spec.generate(40_000, 5).blocks, 1.0, 128);
    let long = SoloProfile::from_trace("l", &spec.generate(160_000, 5).blocks, 1.0, 128);
    for c in (0..=128).step_by(16) {
        assert!(
            (short.mrc.at(c) - long.mrc.at(c)).abs() < 0.02,
            "mr({c}): short {} vs long {}",
            short.mrc.at(c),
            long.mrc.at(c)
        );
    }
}
