//! The objective-layer refactor's load-bearing promise: the default
//! [`Objective::MissRatioSum`] reproduces the pre-objective code paths
//! **bit-for-bit** — same cost-curve floats, same DP fold, same engine
//! trajectories.
//!
//! Three seams are pinned:
//!
//! 1. curve construction — [`build_cost_curves`] under the default
//!    objective routes through the original
//!    [`CostCurve::from_miss_ratio`] constructor, so every sampled cost
//!    is the identical f64;
//! 2. the DP fold — the solve's cost equals the legacy in-order
//!    `Iterator::sum` over the chosen allocation, to the bit;
//! 3. the engine — a default-constructed [`EngineConfig`] (which never
//!    names an objective) walks the same trajectory as one that spells
//!    out `MissRatioSum`: allocations, predicted-cost bits, realized
//!    counts, and cumulative miss ratio.
//!
//! The singleton-node **cluster** twin of guarantee 3 lives in
//! `crates/cluster/tests/identity.rs`, and the hierarchical-DP twin of
//! guarantee 2 in `crates/cluster/tests/two_level.rs`.

use cache_partition_sharing::core::build_cost_curves;
use cache_partition_sharing::prelude::*;
use proptest::prelude::*;

/// Arbitrary well-formed miss-ratio curves: non-increasing in `[0, 1]`,
/// assorted lengths so unit-to-block clamping gets exercised.
fn arb_mrcs() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(0u32..1_000, 2..40).prop_map(|drops| {
            let total: u64 = drops.iter().map(|&d| d as u64).sum::<u64>() + 1;
            let mut mr = 1.0;
            let mut out = vec![mr];
            for d in drops {
                mr -= d as f64 / total as f64;
                out.push(mr.max(0.0));
            }
            out
        }),
        1..5,
    )
}

fn arb_shares(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1u32..1_000, n).prop_map(|v| {
        let total: u64 = v.iter().map(|&x| x as u64).sum();
        v.into_iter().map(|x| x as f64 / total as f64).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Seam 1: the default objective's curve builder IS the legacy
    /// constructor — every sampled cost has the same bit pattern.
    #[test]
    fn default_cost_curves_are_bitwise_the_legacy_constructor(
        raw in arb_mrcs(),
        units in 1usize..24,
        bpu in 1usize..4,
    ) {
        let shares_strategy_inputs = raw.len();
        let shares: Vec<f64> = (1..=shares_strategy_inputs)
            .map(|i| i as f64 / (shares_strategy_inputs * (shares_strategy_inputs + 1) / 2) as f64)
            .collect();
        let mrcs: Vec<MissRatioCurve> = raw
            .iter()
            .map(|s| MissRatioCurve::from_samples(s.clone()))
            .collect();
        let refs: Vec<&MissRatioCurve> = mrcs.iter().collect();
        let config = CacheConfig::new(units, bpu);
        let built = build_cost_curves(&refs, &config, &shares, &Objective::MissRatioSum, None);
        for (i, curve) in built.iter().enumerate() {
            let legacy = CostCurve::from_miss_ratio(&mrcs[i], &config, shares[i]);
            prop_assert_eq!(curve, &legacy, "tenant {} curve drifted", i);
            for u in 0..=units {
                prop_assert_eq!(
                    curve.at(u).to_bits(),
                    legacy.at(u).to_bits(),
                    "tenant {} at {} units", i, u
                );
            }
        }
    }

    /// Seam 2: under the default objective, the DP's reported cost is
    /// the legacy in-order sum over its own allocation — bit-for-bit —
    /// and the allocation spends the whole cache.
    #[test]
    fn default_dp_cost_is_the_legacy_in_order_sum(
        raw in arb_mrcs(),
        units in 1usize..24,
        shares in arb_shares(4),
    ) {
        let mrcs: Vec<MissRatioCurve> = raw
            .iter()
            .map(|s| MissRatioCurve::from_samples(s.clone()))
            .collect();
        let refs: Vec<&MissRatioCurve> = mrcs.iter().collect();
        let config = CacheConfig::new(units, 1);
        let costs = build_cost_curves(
            &refs,
            &config,
            &shares[..refs.len()],
            &Objective::MissRatioSum,
            None,
        );
        let mut solver = DpSolver::new();
        let result = solver
            .solve(&costs, units, &Objective::MissRatioSum)
            .expect("finite curves solve");
        prop_assert_eq!(result.allocation.iter().sum::<usize>(), units);
        let legacy_sum: f64 = result
            .allocation
            .iter()
            .zip(&costs)
            .map(|(&u, c)| c.at(u))
            .sum();
        prop_assert_eq!(
            result.cost.to_bits(),
            legacy_sum.to_bits(),
            "DP fold {} != legacy sum {}", result.cost, legacy_sum
        );
    }
}

/// Interleaves `tenants` heterogeneous workloads into one stream.
fn cotrace(tenants: usize, len: usize, seed: u64) -> cache_partition_sharing::trace::CoTrace {
    let specs = [
        WorkloadSpec::SequentialLoop { working_set: 24 },
        WorkloadSpec::Zipfian {
            region: 150,
            alpha: 0.8,
        },
        WorkloadSpec::WorkingSetWalk {
            region: 300,
            window: 30,
            dwell: 400,
        },
        WorkloadSpec::SequentialLoop { working_set: 900 },
    ];
    let traces: Vec<Trace> = specs[..tenants]
        .iter()
        .enumerate()
        .map(|(i, s)| s.generate(len, seed + i as u64))
        .collect();
    let refs: Vec<&Trace> = traces.iter().collect();
    interleave_proportional(&refs, &vec![1.0; tenants], len)
}

/// Seam 3, flat engine: a config that never names an objective and one
/// that spells out the default walk identical trajectories.
#[test]
fn default_engine_trajectory_is_identical_to_explicit_miss_ratio_sum() {
    let mut cases = 0;
    for (tenants, epoch, seed) in [(2usize, 1_500usize, 7u64), (3, 2_000, 11), (4, 2_500, 13)] {
        let co = cotrace(tenants, 30_000, seed);
        let config = CacheConfig::new(48, 2);

        let implicit_cfg = EngineConfig::new(config, epoch).hysteresis(1);
        assert_eq!(
            implicit_cfg.objective.name(),
            "miss-ratio",
            "the default objective must still be miss-ratio-sum"
        );
        let explicit_cfg = EngineConfig::new(config, epoch)
            .hysteresis(1)
            .objective(Objective::MissRatioSum);

        let mut implicit = RepartitionEngine::new(implicit_cfg, tenants);
        implicit.run(co.tenant_accesses());
        let a = implicit.finish();

        let mut explicit = RepartitionEngine::new(explicit_cfg, tenants);
        explicit.run(co.tenant_accesses());
        let b = explicit.finish();

        assert_eq!(a.objective, "miss-ratio");
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.epochs.len(), b.epochs.len());
        assert!(a.epochs.len() >= 10, "want a real trajectory");
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(
                ea.allocation, eb.allocation,
                "epoch {} allocation",
                ea.epoch
            );
            assert_eq!(ea.per_tenant, eb.per_tenant, "epoch {} counts", ea.epoch);
            assert_eq!(
                ea.predicted_cost.map(f64::to_bits),
                eb.predicted_cost.map(f64::to_bits),
                "epoch {} predicted-cost bits",
                ea.epoch
            );
            assert_eq!(ea.repartitioned, eb.repartitioned);
            assert_eq!(ea.units_moved, eb.units_moved);
        }
        assert_eq!(a.totals, b.totals);
        assert_eq!(
            a.cumulative_miss_ratio().to_bits(),
            b.cumulative_miss_ratio().to_bits()
        );
        cases += 1;
    }
    assert_eq!(cases, 3);
}
