//! Acceptance test for the online repartitioning engine (ISSUE tentpole).
//!
//! Runs `cps replay-online`'s core loop in-process: four tenants with
//! heterogeneous locality (including a streaming scanner that thrashes a
//! shared LRU) are interleaved into one access stream; the epoch-driven
//! engine must complete at least 20 epochs and end with a cumulative
//! miss ratio no worse than a free-for-all shared cache of the same
//! total capacity.

use cache_partition_sharing::prelude::*;

const UNITS: usize = 128;
const LEN: usize = 120_000;
const EPOCH: usize = 5_000;

fn four_tenant_cotrace() -> cache_partition_sharing::trace::CoTrace {
    let specs = [
        // Small loop: near-zero misses once it owns its working set.
        WorkloadSpec::SequentialLoop { working_set: 24 },
        // Skewed heap: concave-ish MRC, benefits from a mid-size share.
        WorkloadSpec::Zipfian {
            region: 150,
            alpha: 0.8,
        },
        // Phase-changing working set: the reason re-solving online helps.
        WorkloadSpec::WorkingSetWalk {
            region: 300,
            window: 30,
            dwell: 500,
        },
        // Streaming scanner: thrashes any shared LRU it touches.
        WorkloadSpec::SequentialLoop { working_set: 2_000 },
    ];
    let traces: Vec<Trace> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| s.generate(LEN, 1 + i as u64))
        .collect();
    let refs: Vec<&Trace> = traces.iter().collect();
    interleave_proportional(&refs, &[1.0, 1.0, 1.0, 1.0], LEN)
}

#[test]
fn online_optimal_beats_free_for_all_over_twenty_epochs() {
    let co = four_tenant_cotrace();
    let config = CacheConfig::new(UNITS, 1);

    let mut engine =
        RepartitionEngine::new(EngineConfig::new(config, EPOCH).policy(Policy::Optimal), 4);
    engine.run(co.tenant_accesses());
    let report = engine.finish();

    // The ISSUE acceptance floor: at least 20 completed epochs.
    assert!(
        report.epochs.len() >= 20,
        "only {} epochs completed",
        report.epochs.len()
    );

    // Free-for-all: every tenant contends in one shared LRU of the same
    // total capacity.
    let mut shared = LruCache::new(config.blocks());
    let mut misses = 0u64;
    for (_, block) in co.tenant_accesses() {
        if !shared.access(block) {
            misses += 1;
        }
    }
    let shared_mr = misses as f64 / co.len() as f64;

    let online_mr = report.cumulative_miss_ratio();
    assert!(
        online_mr <= shared_mr,
        "online {online_mr:.4} worse than free-for-all {shared_mr:.4}"
    );
}

#[test]
fn engine_report_is_internally_consistent() {
    let co = four_tenant_cotrace();
    let config = CacheConfig::new(UNITS, 1);

    let mut engine = RepartitionEngine::new(EngineConfig::new(config, EPOCH), 4);
    engine.run(co.tenant_accesses());
    let report = engine.finish();

    // Every epoch's allocation is a full partition of the cache.
    for e in &report.epochs {
        assert_eq!(e.allocation.iter().sum::<usize>(), UNITS);
        assert_eq!(e.allocation.len(), 4);
    }

    // Epoch records account for the whole stream.
    let recorded: u64 = report.epochs.iter().map(|e| e.accesses()).sum();
    assert_eq!(recorded, co.len() as u64);

    // With four heterogeneous tenants the solver should move off the
    // equal split at least once, and every boundary solve is timed.
    assert!(
        report.repartition_count() >= 1,
        "engine never repartitioned"
    );
    assert!(report.total_solve_nanos() > 0);

    // Per-tenant ratios aggregate to the cumulative ratio.
    let total_acc: u64 = (0..4)
        .map(|t| {
            report
                .epochs
                .iter()
                .map(|e| e.per_tenant[t].accesses)
                .sum::<u64>()
        })
        .sum();
    assert_eq!(total_acc, co.len() as u64);
}

#[test]
fn baseline_policies_also_complete_and_stay_competitive() {
    let co = four_tenant_cotrace();
    let config = CacheConfig::new(UNITS, 1);

    for policy in [Policy::EqualBaseline, Policy::NaturalBaseline] {
        let mut engine = RepartitionEngine::new(EngineConfig::new(config, EPOCH).policy(policy), 4);
        engine.run(co.tenant_accesses());
        let report = engine.finish();
        assert!(report.epochs.len() >= 20, "{policy:?} stalled");
        // Baseline caps restrict the solution set but never break the
        // run; cumulative miss ratio stays a valid probability.
        let mr = report.cumulative_miss_ratio();
        assert!((0.0..=1.0).contains(&mr), "{policy:?} miss ratio {mr}");
    }
}
