//! The reduction theorem (Section V-A) as an executable property: under
//! block-quantized NPA evaluation, no partition-sharing configuration
//! beats the DP's optimal pure partition.

use cache_partition_sharing::core::sharing::{
    best_partition_sharing, best_partition_sharing_quantized, evaluate_sharing_quantized,
    SharingConfig,
};
use cache_partition_sharing::prelude::*;

fn profile(name: &str, spec: WorkloadSpec, rate: f64, blocks: usize, seed: u64) -> SoloProfile {
    let t = spec.generate(40_000, seed);
    SoloProfile::from_trace(name, &t.blocks, rate, blocks)
}

fn group(blocks: usize) -> Vec<SoloProfile> {
    vec![
        profile(
            "loop-a",
            WorkloadSpec::SequentialLoop { working_set: 40 },
            1.0,
            blocks,
            1,
        ),
        profile(
            "loop-b",
            WorkloadSpec::SequentialLoop { working_set: 25 },
            1.4,
            blocks,
            2,
        ),
        profile(
            "zipf-c",
            WorkloadSpec::Zipfian {
                region: 120,
                alpha: 0.8,
            },
            0.8,
            blocks,
            3,
        ),
    ]
}

#[test]
fn optimal_partitioning_upper_bounds_quantized_sharing() {
    let cfg = CacheConfig::new(16, 4); // 64 blocks, coarse walls
    let fine = CacheConfig::new(64, 1);
    let profiles = group(64);
    let members: Vec<&SoloProfile> = profiles.iter().collect();
    let search = best_partition_sharing_quantized(&members, &cfg);
    let total: f64 = members.iter().map(|m| m.access_rate).sum();
    let costs: Vec<CostCurve> = members
        .iter()
        .map(|m| CostCurve::from_miss_ratio(&m.mrc, &fine, m.access_rate / total))
        .collect();
    let dp = optimal_partition(&costs, fine.units, &Objective::MissRatioSum).unwrap();
    assert!(
        dp.cost <= search.group_miss_ratio + 1e-9,
        "DP {} must be <= best quantized sharing {}",
        dp.cost,
        search.group_miss_ratio
    );
}

#[test]
fn continuous_sharing_never_beats_dp_by_more_than_quantization() {
    // The continuous composition model can realize fractional blocks;
    // the gap to the block-granular DP is bounded by one block's worth
    // of miss-ratio change per program (loose bound: 5% relative here).
    let cfg = CacheConfig::new(16, 4);
    let fine = CacheConfig::new(64, 1);
    let profiles = group(64);
    let members: Vec<&SoloProfile> = profiles.iter().collect();
    let search = best_partition_sharing(&members, &cfg);
    let total: f64 = members.iter().map(|m| m.access_rate).sum();
    let costs: Vec<CostCurve> = members
        .iter()
        .map(|m| CostCurve::from_miss_ratio(&m.mrc, &fine, m.access_rate / total))
        .collect();
    let dp = optimal_partition(&costs, fine.units, &Objective::MissRatioSum).unwrap();
    assert!(
        dp.cost <= search.group_miss_ratio * 1.05 + 1e-6,
        "DP {} vs continuous sharing {}",
        dp.cost,
        search.group_miss_ratio
    );
}

#[test]
fn quantized_singleton_groups_equal_pure_partition_costs() {
    // A partitioning-shaped SharingConfig must evaluate exactly like the
    // per-program MRC lookups the DP uses.
    let cfg = CacheConfig::new(16, 4);
    let profiles = group(64);
    let members: Vec<&SoloProfile> = profiles.iter().collect();
    let sizes = vec![6usize, 5, 5];
    let sharing = SharingConfig::partitioning(sizes.clone());
    let (mrs, group_mr) = evaluate_sharing_quantized(&members, &cfg, &sharing);
    let total: f64 = members.iter().map(|m| m.access_rate).sum();
    let mut expect_group = 0.0;
    for (i, m) in members.iter().enumerate() {
        let expect = m.mrc.at(cfg.to_blocks(sizes[i]));
        assert!(
            (mrs[i] - expect).abs() < 1e-9,
            "member {i}: {} vs {expect}",
            mrs[i]
        );
        expect_group += m.access_rate / total * expect;
    }
    assert!((group_mr - expect_group).abs() < 1e-9);
}

#[test]
fn free_for_all_is_in_the_search_space() {
    let cfg = CacheConfig::new(12, 4);
    let profiles = group(48);
    let members: Vec<&SoloProfile> = profiles.iter().collect();
    let search = best_partition_sharing_quantized(&members, &cfg);
    let ffa =
        evaluate_sharing_quantized(&members, &cfg, &SharingConfig::free_for_all(3, cfg.units)).1;
    assert!(
        search.group_miss_ratio <= ffa + 1e-9,
        "best {} must be <= free-for-all {}",
        search.group_miss_ratio,
        ffa
    );
}
