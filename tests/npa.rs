//! The Natural Partition Assumption, measured (Section VII-C in
//! miniature): co-run miss ratios predicted by footprint composition vs
//! the exact shared-cache LRU simulator.

use cache_partition_sharing::prelude::*;

fn profile_and_trace(
    name: &str,
    spec: WorkloadSpec,
    rate: f64,
    len: usize,
    max_blocks: usize,
    seed: u64,
) -> (SoloProfile, Trace) {
    let t = spec.generate(len, seed);
    let p = SoloProfile::from_trace(name, &t.blocks, rate, max_blocks);
    (p, t)
}

/// Runs one pair co-run and returns (predicted, measured) member miss
/// ratios.
///
/// The merged length is capped so neither trace exhausts mid-run — an
/// exhausted co-runner would leave the other alone in the cache and
/// change the mix the prediction assumes.
fn pair_prediction(
    a: (SoloProfile, Trace),
    b: (SoloProfile, Trace),
    cache: usize,
) -> (Vec<f64>, Vec<f64>) {
    let rates = [a.0.access_rate, b.0.access_rate];
    let share_sum = rates[0] + rates[1];
    let limit = f64::min(
        a.1.len() as f64 * share_sum / rates[0],
        b.1.len() as f64 * share_sum / rates[1],
    ) as usize;
    let co = interleave_proportional(&[&a.1, &b.1], &rates, limit);
    let warm = co.len() / 3;
    let sim = simulate_shared_warm(&co, cache, 2, warm);
    let model = CoRunModel::new(vec![&a.0, &b.0]);
    let predicted = model.member_shared_miss_ratios(cache as f64);
    let measured = sim.per_program.iter().map(|c| c.miss_ratio()).collect();
    (predicted, measured)
}

#[test]
fn composition_predicts_zipf_pair_corun() {
    let len = 150_000;
    let cache = 200;
    let a = profile_and_trace(
        "zipf-a",
        WorkloadSpec::Zipfian {
            region: 400,
            alpha: 0.9,
        },
        1.0,
        len,
        cache,
        1,
    );
    let b = profile_and_trace(
        "zipf-b",
        WorkloadSpec::Zipfian {
            region: 250,
            alpha: 0.7,
        },
        1.5,
        len,
        cache,
        2,
    );
    let (pred, meas) = pair_prediction(a, b, cache);
    for i in 0..2 {
        assert!(
            (pred[i] - meas[i]).abs() < 0.02,
            "member {i}: predicted {} vs measured {}",
            pred[i],
            meas[i]
        );
    }
}

#[test]
fn composition_predicts_asymmetric_rate_corun() {
    let len = 150_000;
    let cache = 120;
    let a = profile_and_trace(
        "fast-uniform",
        WorkloadSpec::UniformRandom { region: 150 },
        3.0,
        len,
        cache,
        3,
    );
    let b = profile_and_trace(
        "slow-uniform",
        WorkloadSpec::UniformRandom { region: 150 },
        1.0,
        len,
        cache,
        4,
    );
    let (pred, meas) = pair_prediction(a, b, cache);
    for i in 0..2 {
        assert!(
            (pred[i] - meas[i]).abs() < 0.03,
            "member {i}: predicted {} vs measured {}",
            pred[i],
            meas[i]
        );
    }
    // The fast program misses more per access? No — same region, so the
    // fast one holds more of the cache and misses *less* per access.
    assert!(meas[0] < meas[1] + 0.01, "measured {meas:?}");
}

#[test]
fn natural_occupancies_match_simulated_residency() {
    // Steady-state residency in the simulator should match the natural
    // partition prediction. Two same-rate uniform programs over
    // different regions: the bigger region holds more of the cache.
    let len = 200_000;
    let cache = 150usize;
    let a = profile_and_trace(
        "uni-300",
        WorkloadSpec::UniformRandom { region: 300 },
        1.0,
        len,
        cache,
        5,
    );
    let b = profile_and_trace(
        "uni-100",
        WorkloadSpec::UniformRandom { region: 100 },
        1.0,
        len,
        cache,
        6,
    );
    let model = CoRunModel::new(vec![&a.0, &b.0]);
    let np = model.natural_partition(cache as f64);
    // Run the shared simulation and measure final residency per program.
    let co = interleave_proportional(&[&a.1, &b.1], &[1.0, 1.0], len * 2);
    let mut cache_sim = LruCache::new(cache);
    for acc in &co.accesses {
        cache_sim.access(acc.block);
    }
    let resident = cache_sim.resident_mru_order();
    let a_res = resident.iter().filter(|&&blk| blk >> 48 == 0).count() as f64;
    let b_res = resident.len() as f64 - a_res;
    assert!(
        (np.occupancy[0] - a_res).abs() < 0.12 * cache as f64,
        "program A: predicted occupancy {} vs simulated {a_res}",
        np.occupancy[0]
    );
    assert!(
        (np.occupancy[1] - b_res).abs() < 0.12 * cache as f64,
        "program B: predicted occupancy {} vs simulated {b_res}",
        np.occupancy[1]
    );
    assert!(
        np.occupancy[0] > np.occupancy[1],
        "bigger region holds more"
    );
}

#[test]
fn synchronized_phases_have_no_equivalent_static_partition() {
    // The documented failure mode (Section VIII, "Random Phase
    // Interaction"): with anti-phase working sets, "the natural
    // partition does not exist since no cache partition can give the
    // performance of cache sharing". Concretely: simulate sharing and
    // simulate the static natural partition — sharing wins big, because
    // each program borrows the space while the other's working set is
    // small.
    let len = 60_000;
    let cache = 150usize;
    let phase = 2_000u64;
    let big = WorkloadSpec::SequentialLoop { working_set: 120 };
    let small = WorkloadSpec::SequentialLoop { working_set: 4 };
    let a = profile_and_trace(
        "phase-a",
        WorkloadSpec::Phased {
            phases: vec![(big.clone(), phase), (small.clone(), phase)],
        },
        1.0,
        len,
        cache,
        7,
    );
    let b = profile_and_trace(
        "phase-b",
        WorkloadSpec::Phased {
            phases: vec![(small, phase), (big, phase)],
        },
        1.0,
        len,
        cache,
        8,
    );
    // Shared-cache simulation.
    let co = interleave_proportional(&[&a.1, &b.1], &[1.0, 1.0], len * 2);
    let shared = simulate_shared_warm(&co, cache, 2, len / 2);
    // Static partition at the model's natural occupancies.
    let model = CoRunModel::new(vec![&a.0, &b.0]);
    let np = model.natural_partition(cache as f64);
    let sizes = [np.occupancy[0] as usize, cache - np.occupancy[0] as usize];
    let part_a = cache_partition_sharing::cachesim::simulate_solo(&a.1.blocks, sizes[0]);
    let part_b = cache_partition_sharing::cachesim::simulate_solo(&b.1.blocks, sizes[1]);
    let partitioned_mr =
        (part_a.misses + part_b.misses) as f64 / (part_a.accesses + part_b.accesses) as f64;
    assert!(
        shared.group_miss_ratio() < partitioned_mr - 0.05,
        "sharing {} should clearly beat the static natural partition {} \
         (occupancies {:?})",
        shared.group_miss_ratio(),
        partitioned_mr,
        np.occupancy
    );
}
