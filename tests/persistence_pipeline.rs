//! The profile-once / optimize-many workflow through the persistence
//! layer: results computed from reloaded profiles must match results
//! from the originals.

use cache_partition_sharing::hotl::persist::{read_profile, write_profile};
use cache_partition_sharing::prelude::*;

fn build_profiles(blocks: usize) -> Vec<SoloProfile> {
    let specs = [
        WorkloadSpec::SequentialLoop { working_set: 70 },
        WorkloadSpec::Zipfian {
            region: 250,
            alpha: 0.8,
        },
        WorkloadSpec::Mixture {
            parts: vec![
                (0.95, WorkloadSpec::SequentialLoop { working_set: 40 }),
                (0.05, WorkloadSpec::UniformRandom { region: 500 }),
            ],
        },
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let t = w.generate(40_000, i as u64 + 1);
            SoloProfile::from_trace(format!("p{i}"), &t.blocks, 1.0 + i as f64 / 2.0, blocks)
        })
        .collect()
}

fn round_trip(p: &SoloProfile) -> SoloProfile {
    let mut buf = Vec::new();
    write_profile(&mut buf, p).expect("write");
    read_profile(&mut buf.as_slice()).expect("read")
}

#[test]
fn evaluation_is_identical_after_round_trip() {
    let cfg = CacheConfig::new(128, 2);
    let originals = build_profiles(cfg.blocks());
    let reloaded: Vec<SoloProfile> = originals.iter().map(round_trip).collect();

    let orig_refs: Vec<&SoloProfile> = originals.iter().collect();
    let rel_refs: Vec<&SoloProfile> = reloaded.iter().collect();
    let a = evaluate_group(&orig_refs, &cfg);
    let b = evaluate_group(&rel_refs, &cfg);
    for s in Scheme::ALL {
        assert_eq!(
            a.get(s).allocation,
            b.get(s).allocation,
            "{}: allocation changed across persistence",
            s.name()
        );
        assert_eq!(
            a.get(s).group_miss_ratio,
            b.get(s).group_miss_ratio,
            "{}: miss ratio changed across persistence",
            s.name()
        );
    }
}

#[test]
fn natural_partition_identical_after_round_trip() {
    let cfg = CacheConfig::new(200, 1);
    let originals = build_profiles(cfg.blocks());
    let reloaded: Vec<SoloProfile> = originals.iter().map(round_trip).collect();
    let a = CoRunModel::new(originals.iter().collect());
    let b = CoRunModel::new(reloaded.iter().collect());
    let (na, nb) = (
        a.natural_partition(cfg.blocks() as f64),
        b.natural_partition(cfg.blocks() as f64),
    );
    // 40k-access traces exceed MAX_FP_SAMPLES, so the stored footprint
    // is strided (stride 2) and re-interpolated on load — occupancies
    // agree to interpolation accuracy, not bit-exactly.
    for (x, y) in na.occupancy.iter().zip(&nb.occupancy) {
        assert!((x - y).abs() < 1e-2, "occupancy {x} vs {y}");
    }
}

#[test]
fn study_build_is_deterministic() {
    use cache_partition_sharing::core::sweep::sweep_groups;
    use cache_partition_sharing::trace::spec_like::study_programs_scaled;
    let cfg = CacheConfig::new(64, 4);
    let a = Study::build(&study_programs_scaled(20_000), cfg);
    let b = Study::build(&study_programs_scaled(20_000), cfg);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.profiles.iter().zip(&b.profiles) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.mrc.samples(), y.mrc.samples());
    }
    // And two independent sweeps agree bit-for-bit.
    let ra = sweep_groups(&a, 2);
    let rb = sweep_groups(&b, 2);
    for (x, y) in ra.iter().zip(&rb) {
        assert_eq!(x.indices, y.indices);
        for s in Scheme::ALL {
            assert_eq!(
                x.evaluation.get(s).group_miss_ratio,
                y.evaluation.get(s).group_miss_ratio
            );
        }
    }
}
